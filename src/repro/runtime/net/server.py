"""The network front-end: an asyncio TCP server over worker processes.

:class:`NetServer` is the process boundary the runtime stack stops at
after PR 4.  The parent process owns the listening socket and the
connection protocol only — **no model math runs here**.  It spawns
``workers`` worker processes (:mod:`repro.runtime.net.worker`), each of
which loads the compiled ``.npz`` artifact and runs its own
micro-batching :class:`repro.runtime.Server`; requests are routed to a
worker by a **stable hash of the session id**, so a named stream's
carried recurrent state stays worker-local for its whole life — across
pushes, connections, and reconnects.

Two framings share every connection (PR 7): NDJSON v1 for all control
traffic and for v1 clients, and the length-prefixed binary v2 frames for
``push``/``push_many`` payloads once a client negotiates ``protocol: 2``
in its ``open`` handshake.  Payloads cross the process boundary through
a per-worker ``multiprocessing.shared_memory`` ring
(:mod:`repro.runtime.net.ring`) instead of pickled pipes — doorbells are
coalesced queue messages, slots seqlock-checked — with
``transport="pipe"`` retained as the fallback (and as the bench
baseline).

Flow control is explicit: each connection may have at most
``queue_limit`` requests in flight; one more gets an immediate ``busy``
frame instead of unbounded buffering (the client resends after backoff —
a busy'd frame was *not* applied).  A full request ring or a worker with
every response slot spoken for answers ``busy`` the same way.
``close()`` — and SIGTERM via :meth:`serve_forever` — drains: the
listener stops, in-flight frames complete and their replies flush, then
workers shut down their micro-batching servers (which drain their own
queues in turn).

>>> with NetServer(compiled, workers=2) as server:
...     client = Client(*server.address)
...     logits = client.session("stream-7").push(frame)
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import itertools
import json
import signal
import struct
import sys
import tempfile
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from queue import Empty
from typing import Any

from repro.errors import ConfigError
from repro.runtime.net.faults import coerce_faults
from repro.runtime.net.protocol import (
    BIN_PREFIX,
    BIN_MAGIC,
    BIN_PUSH,
    BIN_PUSH_MANY,
    BIN_RESULT,
    BIN_RESULT_MANY,
    BIN_SCORE,
    BIN_SCORE_RESULT,
    MAX_BIN_NDIM,
    MAX_BIN_SESSION,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    MAX_PROTOCOL,
    OPS,
    PROTOCOL_VERSION,
    SESSION_OPS,
    NetError,
    build_binary_frame,
    check_binary_header,
    dump_line,
    error_reply,
    frame_payload_bytes,
    parse_line,
    token_payload_bytes,
)
from repro.runtime.net.ring import (
    OP_CLOSE,
    OP_EVICT,
    OP_GENERATE,
    OP_OPEN,
    OP_PUSH,
    OP_PUSH_MANY,
    OP_RESET,
    OP_SCORE,
    RingError,
    RingPair,
)

__all__ = ["NetServer", "route_session"]

#: Longest accepted session id — routing keys, not payloads.
_MAX_SESSION_ID = 256

#: Wire op name → worker ring op code.
_WIRE_OPS = {"open": OP_OPEN, "push": OP_PUSH, "push_many": OP_PUSH_MANY,
             "generate": OP_GENERATE, "score": OP_SCORE,
             "reset": OP_RESET, "close": OP_CLOSE, "evict": OP_EVICT}

#: The parent-side fan-out ops (one reply aggregated from every worker).
_FANOUT_OPS = frozenset({"stats", "sessions"})

#: The ops carrying a float64 frame payload in the request.
_PUSH_OPS = frozenset({"push", "push_many"})

#: The ops whose replies occupy a worker response-ring slot (``score``
#: results are payload arrays and ride the ring like push results;
#: ``generate`` replies are small JSON dicts on the queue).
_RING_RESULT_OPS = frozenset({"push", "push_many", "score"})


def route_session(session: str, workers: int) -> int:
    """Worker index for a session id: stable across processes and runs.

    ``hash()`` is salted per process (PYTHONHASHSEED), so it would route
    the same session differently after a restart; a truncated SHA-256 is
    stable everywhere, which is what lets a reconnecting client find its
    carried state again.
    """
    digest = hashlib.sha256(session.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


class _LineTooLong(Exception):
    """An NDJSON line overran ``MAX_LINE_BYTES``; the stream is resynced."""


class _FrameReader:
    """Buffered reads over a StreamReader for the dual-framing protocol.

    asyncio's own ``readline`` raises on an oversized line *after
    garbling its buffer*, which is why PR 5 had to hang up on oversized
    requests.  This reader owns the buffer: an oversized line is
    discarded through its terminating newline, so the caller can send
    the promised structured error and keep the connection.
    """

    __slots__ = ("_reader", "_buf", "_eof")

    def __init__(self, reader: asyncio.StreamReader):
        self._reader = reader
        self._buf = bytearray()
        self._eof = False

    async def _fill(self) -> bool:
        if self._eof:
            return False
        chunk = await self._reader.read(65536)
        if not chunk:
            self._eof = True
            return False
        self._buf += chunk
        return True

    async def peek_byte(self) -> int | None:
        """First buffered byte without consuming it; None at EOF."""
        while not self._buf:
            if not await self._fill():
                return None
        return self._buf[0]

    async def read_exactly(self, count: int) -> bytes | None:
        """``count`` bytes, or None if the peer hung up first."""
        while len(self._buf) < count:
            if not await self._fill():
                return None
        taken = bytes(self._buf[:count])
        del self._buf[:count]
        return taken

    async def read_line(self, limit: int) -> bytes | None:
        """One newline-terminated line of at most ``limit`` bytes.

        Raises :class:`_LineTooLong` — after consuming the whole
        oversized line, so the stream stays in sync — when the cap is
        exceeded.  Returns None at EOF.
        """
        overflow = False
        while True:
            index = self._buf.find(b"\n")
            if index != -1:
                line = bytes(self._buf[: index + 1])
                del self._buf[: index + 1]
                if overflow or index > limit:
                    raise _LineTooLong()
                return line
            if len(self._buf) > limit:
                # Bound memory while discarding toward the newline.
                overflow = True
                self._buf.clear()
            if not await self._fill():
                if not overflow and self._buf:
                    line = bytes(self._buf)  # unterminated trailing line
                    self._buf.clear()
                    return line
                return None


class _Conn:
    """Per-connection state; touched only on the event-loop thread."""

    __slots__ = ("id", "writer", "pending", "protocol")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.id = conn_id
        self.writer = writer
        self.pending = 0
        self.protocol = PROTOCOL_VERSION  # raised to 2 by negotiation


class NetServer:
    """Serve one compiled model over TCP, sharded across worker processes.

    ``compiled`` is a :class:`repro.runtime.CompiledModel` (saved to a
    temporary artifact for the workers) or pass ``artifact_path`` to an
    existing ``.npz``.  ``port=0`` binds an ephemeral port — read
    :attr:`address` after :meth:`start`.  ``queue_limit`` bounds each
    connection's in-flight requests (the ``busy`` threshold).

    ``transport`` selects the parent↔worker payload path: ``"shm"``
    (default) uses the shared-memory rings, ``"pipe"`` the pickled
    queues; when shared memory cannot be created the server falls back
    to ``"pipe"`` with a warning.  ``max_protocol=1`` disables v2
    negotiation entirely (a v1-only server, for compatibility testing).
    ``inline_rows=False`` makes workers route every row through their
    micro-batch dispatcher even when only one session is busy — the
    seed scheduling behaviour, kept for the bench baseline.

    Supervision (PR 8): the parent watches every worker (process
    sentinel + heartbeat probes answered on the reply queue).  A worker
    that dies — or stalls past ``heartbeat_timeout_s``, or corrupts a
    response-ring slot — has its in-flight requests failed with
    structured **retryable** error frames, and is respawned from the
    compiled artifact on a fresh shared-memory segment with its
    ``emit_seq`` holdback resynced.  ``restart_budget`` restarts per
    ``restart_window_s`` (per worker) bound the crash-loop: past the
    budget the worker degrades and its shard answers non-retryable
    ``unavailable`` errors instead.  The blast radius is exactly the
    dead worker's sessions; every other worker's streams never notice.
    ``spawn_timeout_s`` caps both the initial spawn and each respawn.

    Session lifecycle: ``session_ttl_s`` evicts sessions idle past the
    TTL (periodic sweeps), ``session_cap`` bounds each worker's table
    with LRU shedding on open.  ``faults`` arms deterministic fault
    injection (see :mod:`repro.runtime.net.faults`) and ``fault_log``
    appends every supervision event to a JSONL file.
    """

    def __init__(
        self,
        compiled: Any = None,
        *,
        artifact_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_batch: int = 16,
        max_delay_s: float = 0.002,
        queue_limit: int = 32,
        drain_timeout_s: float = 10.0,
        transport: str = "shm",
        max_protocol: int = MAX_PROTOCOL,
        ring_slots: int = 128,
        slot_bytes: int = 32768,
        inline_rows: bool = True,
        spawn_timeout_s: float = 120.0,
        restart_budget: int = 3,
        restart_window_s: float = 60.0,
        heartbeat_timeout_s: float | None = 10.0,
        session_ttl_s: float | None = None,
        session_cap: int | None = None,
        faults: Any = None,
        fault_log: str | Path | None = None,
    ):
        if compiled is None and artifact_path is None:
            raise ConfigError("NetServer needs a compiled model or artifact_path")
        if workers < 1:
            raise ConfigError(f"workers must be positive, got {workers}")
        if queue_limit < 1:
            raise ConfigError(f"queue_limit must be positive, got {queue_limit}")
        if transport not in ("shm", "pipe"):
            raise ConfigError(
                f"transport must be 'shm' or 'pipe', got {transport!r}"
            )
        if not PROTOCOL_VERSION <= max_protocol <= MAX_PROTOCOL:
            raise ConfigError(
                f"max_protocol must be {PROTOCOL_VERSION}.."
                f"{MAX_PROTOCOL}, got {max_protocol}"
            )
        if ring_slots < 2:
            raise ConfigError(f"ring_slots must be >= 2, got {ring_slots}")
        if slot_bytes < 1024:
            raise ConfigError(f"slot_bytes must be >= 1024, got {slot_bytes}")
        if spawn_timeout_s <= 0:
            raise ConfigError(
                f"spawn_timeout_s must be positive, got {spawn_timeout_s}"
            )
        if restart_budget < 0:
            raise ConfigError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        if restart_window_s <= 0:
            raise ConfigError(
                f"restart_window_s must be positive, got {restart_window_s}"
            )
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ConfigError(
                "heartbeat_timeout_s must be positive or None, got "
                f"{heartbeat_timeout_s}"
            )
        if session_ttl_s is not None and session_ttl_s <= 0:
            raise ConfigError(
                f"session_ttl_s must be positive or None, got {session_ttl_s}"
            )
        if session_cap is not None and session_cap < 1:
            raise ConfigError(
                f"session_cap must be >= 1 or None, got {session_cap}"
            )
        if artifact_path is not None and compiled is None:
            from repro.runtime.model import CompiledModel

            compiled = CompiledModel.load(artifact_path)
        self._compiled = compiled
        self._artifact_path = Path(artifact_path) if artifact_path else None
        self._host = host
        self._port = port
        self.workers = workers
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.queue_limit = queue_limit
        self.drain_timeout_s = drain_timeout_s
        self.transport = transport
        self.max_protocol = max_protocol
        self.ring_slots = ring_slots
        self.slot_bytes = slot_bytes
        self.inline_rows = inline_rows
        self.spawn_timeout_s = spawn_timeout_s
        self.restart_budget = restart_budget
        self.restart_window_s = restart_window_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.session_ttl_s = session_ttl_s
        self.session_cap = session_cap
        self.faults = coerce_faults(faults)
        self._fault_log = Path(fault_log) if fault_log else None

        # Supervision state.  The per-worker arrays live on the event
        # loop thread once serving; generations invalidate stale pump
        # callbacks after a restart.  _events is the supervision journal
        # (also mirrored to fault_log as JSON lines when configured).
        self._gen: list[int] = []
        self._worker_state: list[str] = []  # up|down|restarting|degraded
        self._restarts: list[int] = []
        self._restart_times: list[deque] = []
        self._started_at: list[float] = []
        self._last_hb: list[float] = []
        self._last_hb_sent = 0.0
        self._last_sweep = 0.0
        self._restart_threads: list[threading.Thread] = []
        self._events: list[dict] = []  # guarded-by: _events_lock
        self._events_lock = threading.Lock()
        self._closing = False
        self.retryable_errors_total = 0

        self._stop_serving = threading.Event()
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._procs: list[Any] = []
        self._worker_queues: list[Any] = []
        # One reply queue (and pump thread) PER worker, never shared: a
        # worker killed between its queue-feeder's pipe write and lock
        # release would poison a shared queue's write lock and silently
        # hang every *surviving* worker's replies.  Isolated queues bound
        # the blast radius to the dead worker's own (already lost) replies.
        self._reply_queues: list[Any] = []
        # Ring slots may hold None after a respawn falls back to pipes;
        # the list stays empty under transport="pipe".
        self._rings: list[RingPair | None] = []
        # (worker index, generation, thread) — the generation lets
        # shutdown skip pumps whose queue a dead worker may have poisoned.
        self._pumps: list[tuple[int, int, threading.Thread]] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._stop_async: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._lifecycle = threading.Lock()
        self._state = "new"  # guarded-by: _lifecycle (new -> started -> closed)

        # Event-loop-thread state.
        self._conns: dict[int, _Conn] = {}
        self._conn_ids = itertools.count(1)
        self._tasks: set[asyncio.Task] = set()
        # Stats fan-out tracking.  Keyed by a server-generated token (an
        # unguessable per-server prefix + counter), NOT the client-chosen
        # request id: a client reusing one id for a push and a stats
        # request must not be able to collide a push reply into a stats
        # aggregate and corrupt the admission accounting.
        self._stats_prefix = f"stats:{uuid.uuid4().hex}:"
        self._stats_seq = itertools.count(1)
        # token -> (op, conn_id, rid, parts) for stats/sessions fan-outs.
        self._aggregates: dict[str, tuple[str, int, Any, list[dict]]] = {}
        self._stats_owed: dict[str, set[int]] = {}
        # Session-op dispatch: every in-flight request gets a compact
        # parent-side ticket (the worker echoes it; payload routing never
        # carries the client-chosen rid).  _by_rid backs duplicate-id
        # rejection and reaper accounting.
        self._ticket_seq = itertools.count(1)
        self._inflight_reqs: dict[int, tuple] = {}
        self._by_rid: dict[tuple[int, Any], int] = {}
        # Per-worker response-slot budget and emission-order restore.
        self._ring_results: list[int] = []
        self._emit_expected: list[int] = []
        self._emit_holdback: list[dict[int, tuple]] = []
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._host, self._port

    @property
    def port(self) -> int:
        return self._port

    def _workload_hello(self) -> dict:
        """Workload metadata advertised in the hello frame.

        ASR servers keep their pre-workload hello byte-identical; a
        token-input server announces its workload (and vocabulary when
        the artifact carries one) so clients can validate token ids and
        decode generated text without a side channel.
        """
        workload = getattr(self._compiled, "workload", "asr")
        if workload == "asr":
            return {}
        extra: dict[str, Any] = {"workload": workload}
        try:
            extra["vocab"] = list(self._compiled.vocab().chars)
        except (ConfigError, AttributeError):
            pass  # token workload without a saved vocabulary
        return extra

    @property
    def events(self) -> list[dict]:
        """Snapshot of the supervision journal (restarts, faults, ...)."""
        with self._events_lock:
            return list(self._events)

    def _log_event(self, event: str, worker: int | None = None,
                   **detail: Any) -> None:
        """Record one supervision event (any thread)."""
        entry: dict[str, Any] = {"ts": round(time.time(), 3), "event": event}
        if worker is not None:
            entry["worker"] = worker
        entry.update(detail)
        with self._events_lock:
            self._events.append(entry)
        tail = " ".join(f"{k}={v}" for k, v in detail.items())
        where = f" worker={worker}" if worker is not None else ""
        print(f"repro.net: {event}{where}" + (f" {tail}" if tail else ""),
              file=sys.stderr)
        if self._fault_log is not None:
            try:
                with open(self._fault_log, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            except OSError:
                # Journaling must never take the data path down with it.
                self._fault_log = None

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def start(self) -> "NetServer":
        """Spawn workers, bind the socket, begin serving.  Returns self."""
        with self._lifecycle:
            if self._state == "started":
                return self
            if self._state == "closed":
                raise ConfigError("NetServer cannot be restarted after close()")
            self._spawn_workers()
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._run_loop, name="repro-net-server", daemon=True
            )
            self._loop_thread.start()
            self._started.wait(timeout=30)
            if self._startup_error is not None:
                self._shutdown_workers()
                raise ConfigError(
                    f"net server failed to start: {self._startup_error}"
                )
            if not self._started.is_set():
                self._shutdown_workers()
                raise ConfigError("net server did not start within 30s")
            self._pumps = [
                (index, 0, threading.Thread(
                    target=self._pump_replies,
                    args=(index, 0, queue),
                    name=f"repro-net-pump-{index}",
                    daemon=True,
                ))
                for index, queue in enumerate(self._reply_queues)
            ]
            for _index, _gen, pump in self._pumps:
                pump.start()
            self._state = "started"
            return self

    def close(self) -> None:
        """Drain in-flight frames, shut workers down, release the port.

        Idempotent and safe under concurrent calls; every caller returns
        only after the teardown is complete.
        """
        self._stop_serving.set()  # release any serve_forever() caller
        with self._lifecycle:
            if self._state != "started":
                self._state = "closed"
                return
            self._state = "closed"
            self._closing = True  # restart threads abort their respawns
            loop, stop = self._loop, self._stop_async
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass  # loop already dead
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=self.drain_timeout_s + 30)
            for thread in self._restart_threads:
                thread.join(timeout=15)
            self._shutdown_workers()
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
                self._tmpdir = None

    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until SIGTERM/SIGINT — or ``close()`` from another
        thread — then drain and shut down (CLI mode)."""
        self.start()
        previous = {}
        if install_signals:
            def handler(signum: int, frame: Any) -> None:
                self._stop_serving.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(signum, handler)
                except ValueError:
                    pass  # not the main thread; close() can still stop us
        try:
            self._stop_serving.wait()
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
            self.close()

    # ------------------------------------------------------------------
    # Worker lifecycle (caller threads).
    # ------------------------------------------------------------------
    def _spawn_workers(self) -> None:
        import multiprocessing as mp

        from repro.runtime.net.worker import worker_main

        if self._artifact_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-net-")
            self._artifact_path = (
                Path(self._tmpdir.name) / f"{self._compiled.fingerprint}.npz"
            )
            self._compiled.save(self._artifact_path)

        if self.transport == "shm":
            try:
                self._rings = [
                    RingPair.create(self.ring_slots, self.slot_bytes)
                    for _ in range(self.workers)
                ]
            except Exception as error:  # repro: ignore[REP005] no usable /dev/shm is an environment, not a caller, problem; the pipe path serves identically
                for rings in self._rings:
                    rings.close()
                    rings.unlink()
                self._rings = []
                self.transport = "pipe"
                print(
                    f"repro.net: shared memory unavailable ({error}); "
                    "falling back to transport='pipe'",
                    file=sys.stderr,
                )
        self._ring_results = [0] * self.workers
        self._emit_expected = [0] * self.workers
        self._emit_holdback = [dict() for _ in range(self.workers)]
        now = time.monotonic()
        self._gen = [0] * self.workers
        self._worker_state = ["up"] * self.workers
        self._restarts = [0] * self.workers
        self._restart_times = [deque() for _ in range(self.workers)]
        self._started_at = [now] * self.workers
        self._last_hb = [now] * self.workers

        # "spawn" everywhere: the parent runs an event loop plus threads,
        # which fork() would duplicate into undefined territory.
        ctx = mp.get_context("spawn")
        self._reply_queues = [ctx.Queue() for _ in range(self.workers)]
        self._worker_queues = [ctx.Queue() for _ in range(self.workers)]
        for queue in self._reply_queues + self._worker_queues:
            # Never let interpreter exit join our feeder threads: a
            # worker killed while holding a queue's write lock leaves
            # that feeder blocked forever, and multiprocessing's atexit
            # finalizer would join it WITHOUT a timeout, hanging the
            # whole process at shutdown.  Everything that must arrive is
            # confirmed out-of-band (worker joins / ready handshakes), so
            # dropping unflushed bytes at exit is safe.
            queue.cancel_join_thread()
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    index,
                    str(self._artifact_path),
                    self._worker_queues[index],
                    self._reply_queues[index],
                    self.max_batch,
                    self.max_delay_s,
                    self._rings[index].name if self._rings else None,
                    self.ring_slots,
                    self.slot_bytes,
                    self.inline_rows,
                    self.session_cap,
                    self.faults or None,
                ),
                name=f"repro-net-worker-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        deadline = time.monotonic() + self.spawn_timeout_s
        for index, proc in enumerate(self._procs):
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._shutdown_workers()
                    raise ConfigError(
                        f"worker {index} not ready after "
                        f"{self.spawn_timeout_s:g}s (spawn_timeout_s)"
                    )
                try:
                    message = self._reply_queues[index].get(
                        timeout=min(remaining, 1.0)
                    )
                except (Empty, OSError, ValueError):
                    if not proc.is_alive() and proc.exitcode not in (0, None):
                        self._shutdown_workers()
                        raise ConfigError(
                            f"worker process {proc.name} died during startup"
                        )
                    continue
                if message[0] == "ready":
                    break
                if message[0] == "fatal":
                    self._shutdown_workers()
                    raise ConfigError(message[2])

    def _shutdown_workers(self) -> None:
        for q in self._worker_queues:
            try:
                q.put(("shutdown",))
            except (ValueError, OSError):
                # The queue was closed, or its pipe broken by a dead
                # worker; the join/terminate below still reaps the
                # process (worker death is a supervised event, not a
                # surprise).
                pass
        for proc in self._procs:
            proc.join(timeout=15)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for index, queue in enumerate(self._reply_queues):
            try:
                queue.put(None)  # stop that worker's pump
            except (ValueError, OSError):
                # A dead worker may have broken the queue; its pump
                # stays a daemon thread by design.
                pass
        for index, gen, pump in self._pumps:
            # Join only pumps of the CURRENT generation whose worker
            # exited cleanly: a worker that died uncleanly (or an old
            # generation's queue) may have poisoned its reply queue's
            # locks, and that pump can stay blocked (daemon thread)
            # rather than stall close() waiting for a join that cannot
            # succeed.
            proc = self._procs[index] if index < len(self._procs) else None
            current = index < len(self._gen) and gen == self._gen[index]
            if current and (proc is None or proc.exitcode == 0):
                pump.join(timeout=10)
        for rings in self._rings:
            # Workers have exited (or been terminated): the parent owns
            # the segment's end of life.  Restarted-into-pipe slots hold
            # None.
            if rings is not None:
                rings.close()
                rings.unlink()
        self._rings = []
        self._pumps = []
        self._procs = []
        self._worker_queues = []
        self._reply_queues = []

    def _pump_replies(self, index: int, gen: int, replies: Any) -> None:
        """Move one worker's replies onto the event loop (which owns conns).

        Each pump serves exactly one worker *generation*; after a
        restart the event-loop handlers drop anything tagged with a
        stale generation, so a late reply from a replaced worker can
        never corrupt the new one's emission order.
        """
        while True:
            message = replies.get()
            if message is None:
                return
            kind = message[0]
            try:
                if kind == "ring":
                    self._loop.call_soon_threadsafe(
                        self._drain_responses, index, gen
                    )
                elif kind == "res":
                    _, key, emit_seq, payload = message
                    self._loop.call_soon_threadsafe(
                        self._deliver_queued, index, gen, key, emit_seq,
                        payload,
                    )
                elif kind == "hb":
                    self._loop.call_soon_threadsafe(
                        self._note_heartbeat, index, gen
                    )
                elif kind == "fatal":
                    self._loop.call_soon_threadsafe(
                        self._on_worker_fatal, index, gen, message[2]
                    )
            except RuntimeError:
                return  # loop closed mid-drain; workers are next

    # ------------------------------------------------------------------
    # Event-loop side.
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve_main())
        except BaseException as error:  # noqa: BLE001 — surfaced by start()
            self._startup_error = error
            self._started.set()
        finally:
            loop.close()

    async def _serve_main(self) -> None:
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn,
            self._host,
            self._port,
        )
        self._port = server.sockets[0].getsockname()[1]
        reaper = asyncio.ensure_future(self._reap_loop())
        self._started.set()
        await self._stop_async.wait()
        reaper.cancel()

        # Drain: stop accepting and refuse new work (readers stay alive so
        # in-flight replies still reach their clients), wait for every
        # dispatched frame's reply to flush, then tear the readers down.
        self._draining = True
        server.close()
        await server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            # Requests owed by a dead worker can never drain; fail them
            # now rather than waiting out the whole timeout.  (No
            # respawns during drain — _on_worker_down checks _draining.)
            self._supervise_tick()
            await asyncio.sleep(0.005)
        readers = list(self._tasks)
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        for conn in list(self._conns.values()):
            # Replies were only written into the transport buffer; the
            # drain promise means actually flushing them to the socket
            # before the loop (and its pending writes) is torn down.  A
            # client too slow to read within the remaining budget forfeits
            # its tail.
            try:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    await asyncio.wait_for(conn.writer.drain(), remaining)
            except (OSError, asyncio.TimeoutError):
                # Drain is best-effort: a slow or dead client forfeits
                # its reply tail by contract.
                pass
            try:
                conn.writer.close()
                await asyncio.wait_for(conn.writer.wait_closed(), 1.0)
            except (OSError, asyncio.TimeoutError):
                # Socket already reset by the peer; loop teardown
                # follows either way.
                pass
        self._conns.clear()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(next(self._conn_ids), writer)
        self._conns[conn.id] = conn
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._write(conn, {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "max_protocol": self.max_protocol,
            "backend": self._compiled.backend,
            "input_size": self._compiled.input_size,
            "num_classes": self._compiled.num_classes,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            **self._workload_hello(),
        })
        frames = _FrameReader(reader)
        try:
            while True:
                first = await frames.peek_byte()
                if first is None:
                    break
                if first == BIN_MAGIC:
                    if not await self._read_binary(conn, frames):
                        break
                else:
                    try:
                        line = await frames.read_line(MAX_LINE_BYTES)
                    except _LineTooLong:
                        # The stream is resynced past the newline: one
                        # structured error, connection stays usable.
                        self._write(conn, error_reply(
                            None,
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ))
                        await writer.drain()
                        continue
                    if line is None:
                        break
                    self._handle_request(conn, line)
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self._conns.pop(conn.id, None)
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
            except Exception:  # repro: ignore[REP005] reader already failed; closing a broken transport must not mask that
                pass

    async def _read_binary(self, conn: _Conn, frames: _FrameReader) -> bool:
        """Consume one v2 binary frame.  False tears the connection down.

        The frame is length-prefixed and read in full before validation,
        so every *semantic* defect (bad version/op/dtype, shape vs
        payload mismatch) costs one structured JSON error and the
        connection stays usable; only untrustworthy length fields force
        a close (there is nothing left to resynchronize on).
        """
        prefix = await frames.read_exactly(BIN_PREFIX.size)
        if prefix is None:
            return False
        (_, version, opcode, dtype_code, rid, _seq,
         slen, ndim, _pad) = BIN_PREFIX.unpack(prefix)
        if ndim > MAX_BIN_NDIM or slen > MAX_BIN_SESSION:
            self._write(conn, error_reply(rid, (
                f"binary header lengths out of range (ndim {ndim}, session "
                f"{slen} bytes); the frame cannot be skipped — closing"
            )))
            return False
        rest = await frames.read_exactly(4 * ndim + 4)
        if rest is None:
            return False
        *dims, nbytes = struct.unpack(f"<{ndim}II", rest)
        if nbytes > MAX_FRAME_BYTES:
            self._write(conn, error_reply(rid, (
                f"binary payload of {nbytes} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap; closing"
            )))
            return False
        body = await frames.read_exactly(slen + nbytes)
        if body is None:
            return False
        try:
            check_binary_header(
                version, opcode, dtype_code, tuple(dims), nbytes,
                expect_request=True,
            )
            session = body[:slen].decode("utf-8")
        except NetError as error:
            self._write(conn, error_reply(rid, error))
            return True
        except UnicodeDecodeError:
            self._write(conn, error_reply(rid, "session id is not UTF-8"))
            return True
        if conn.protocol < 2:
            self._write(conn, error_reply(rid, (
                "binary framing was not negotiated on this connection; "
                "send an open request with \"protocol\": 2 first"
            )))
            return True
        if self._draining:
            self._write(conn, error_reply(
                rid, "server is draining for shutdown; no new work accepted"
            ))
            return True
        op = {BIN_PUSH: "push", BIN_PUSH_MANY: "push_many",
              BIN_SCORE: "score"}[opcode]
        self._dispatch(
            conn, rid, op, session, body[slen:], tuple(dims), binary=True
        )
        return True

    def _handle_request(self, conn: _Conn, line: bytes) -> None:
        try:
            message = parse_line(line)
        except NetError as error:
            self._write(conn, error_reply(None, error))
            return
        rid = message.get("id")
        if isinstance(rid, (dict, list)):
            self._write(conn, error_reply(
                None, "request id must be a JSON scalar"
            ))
            return
        op = message.get("op")
        if not isinstance(op, str):
            # A non-string op must fail as "unknown", not crash the
            # frozenset membership tests below with an unhashable type.
            self._write(conn, error_reply(
                rid, f"op must be a string naming one of {', '.join(OPS)}"
            ))
            return
        if op == "ping":
            self._write(conn, {"id": rid, "ok": True, "type": "pong"})
            return
        if op == "health":
            # Parent-only: no worker round trip, so it answers even while
            # every worker is down, restarting, or the server is draining.
            self._write(conn, {"id": rid, "ok": True, "type": "health",
                               **self._health_snapshot()})
            return
        if self._draining:
            self._write(conn, error_reply(
                rid, "server is draining for shutdown; no new work accepted"
            ))
            return
        if op in _FANOUT_OPS:
            if not self._admit(conn, rid):
                return
            token = self._stats_prefix + str(next(self._stats_seq))
            parts: list[dict] = []
            owed: set[int] = set()
            for index in range(self.workers):
                if self._worker_state[index] == "up":
                    owed.add(index)
                else:
                    # A worker that cannot answer contributes a synthetic
                    # part instead of wedging the whole aggregate.
                    parts.append({
                        "worker": index, "ok": False,
                        "error": f"worker {index} is "
                                 f"{self._worker_state[index]}",
                    })
            self._aggregates[token] = (op, conn.id, rid, parts)
            self._stats_owed[token] = owed
            for index in sorted(owed):
                try:
                    self._worker_queues[index].put((op, token))
                except (ValueError, OSError):
                    # Broken queue: the supervisor is about to declare the
                    # worker down, and _fill_owed substitutes its part.
                    pass
            self._maybe_finish_aggregate(token)  # all-degraded fleet
            return
        if op in SESSION_OPS:
            session = message.get("session")
            payload = shape = None
            merge = None
            if op in _PUSH_OPS:
                field = "frame" if op == "push" else "frames"
                try:
                    payload, shape = frame_payload_bytes(message.get(field))
                except NetError as error:
                    self._write(conn, error_reply(rid, error))
                    return
            elif op == "score":
                try:
                    payload, shape = token_payload_bytes(
                        message.get("tokens")
                    )
                except NetError as error:
                    self._write(conn, error_reply(rid, error))
                    return
            elif op == "generate":
                # The op parameters travel to the worker as JSON bytes in
                # a payload-shaped slot (shape ()); the worker's driver
                # construction is the validator, so a malformed request
                # fails there with nothing applied.
                params = {
                    key: message[key]
                    for key in ("prompt", "steps", "temperature", "top_k",
                                "seed")
                    if key in message
                }
                try:
                    payload = json.dumps(
                        params, separators=(",", ":"), allow_nan=False
                    ).encode("utf-8")
                except (TypeError, ValueError) as error:
                    self._write(conn, error_reply(
                        rid, f"unencodable generate parameters: {error}"
                    ))
                    return
            elif op == "open":
                # v2 negotiation rides the open handshake: the grant is
                # effective immediately (binary frames may follow before
                # the open reply returns) and acknowledged with
                # "protocol": 2 in the reply.
                want = message.get("protocol")
                if (
                    isinstance(want, int)
                    and want >= 2
                    and self.max_protocol >= 2
                ):
                    conn.protocol = 2
                    merge = {"protocol": 2}
            self._dispatch(
                conn, rid, op, session, payload,
                tuple(shape) if shape else (), merge=merge,
            )
            return
        self._write(conn, error_reply(
            rid, f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        ))

    def _dispatch(
        self,
        conn: _Conn,
        rid: Any,
        op: str,
        session: Any,
        payload: bytes | None,
        shape: tuple[int, ...],
        *,
        binary: bool = False,
        merge: dict | None = None,
    ) -> None:
        """Admission + transport for one session op (event-loop thread)."""
        if not isinstance(session, str) or not session:
            self._write(conn, error_reply(
                rid, f"op {op!r} needs a non-empty string session id"
            ))
            return
        session_bytes = session.encode("utf-8")
        if len(session) > _MAX_SESSION_ID or len(session_bytes) > _MAX_SESSION_ID:
            self._write(conn, error_reply(
                rid, f"session id exceeds {_MAX_SESSION_ID} characters"
            ))
            return
        if len(shape) > MAX_BIN_NDIM:
            self._write(conn, error_reply(
                rid, f"frame shape {list(shape)} has more than "
                f"{MAX_BIN_NDIM} dims"
            ))
            return
        worker = route_session(session, self.workers)
        state = self._worker_state[worker]
        if state == "up" and not self._procs[worker].is_alive():
            # The next supervisor tick would notice anyway; noticing now
            # turns a doomed dispatch into the same retryable error every
            # in-flight request gets.
            self._on_worker_down(
                worker,
                f"process died (exitcode {self._procs[worker].exitcode})",
            )
            state = self._worker_state[worker]
        if state == "degraded":
            self._write(conn, error_reply(rid, (
                f"worker {worker} exceeded its restart budget "
                f"({self.restart_budget} per {self.restart_window_s:g}s) "
                f"and is degraded; session {session!r} is unavailable"
            )))
            return
        if state != "up":
            self.retryable_errors_total += 1
            self._write(conn, error_reply(rid, (
                f"worker process {worker} died and is being restarted; "
                f"session {session!r} and its carried state are lost — "
                "reopen and replay to recover"
            ), retryable=True))
            return
        if (conn.id, rid) in self._by_rid:
            # Reply matching is by id: a duplicate in-flight id would
            # overwrite the tracking entry and leak an admission slot
            # when its reply is mistaken for a reaped duplicate.
            self._write(conn, error_reply(
                rid, f"request id {rid!r} is already in flight on "
                "this connection; ids must be unique until answered"
            ))
            return
        rings = self._rings[worker] if self._rings else None
        if rings is not None and (
            rings.requests.free_slots() < 1
            or (op in _RING_RESULT_OPS
                and self._ring_results[worker] >= rings.nslots)
        ):
            # The worker's ring is saturated: same contract as the
            # per-connection cap — the frame was NOT applied, resend.
            self._write(conn, {
                "id": rid, "ok": False, "type": "busy",
                "limit": self.queue_limit,
            })
            return
        if not self._admit(conn, rid):
            return
        ticket = next(self._ticket_seq)
        self._inflight_reqs[ticket] = (conn.id, rid, worker, binary, merge, op)
        self._by_rid[(conn.id, rid)] = ticket
        if rings is not None and op in _RING_RESULT_OPS:
            self._ring_results[worker] += 1
        opcode = _WIRE_OPS[op]
        if rings is not None:
            external = (
                payload is not None
                and len(payload) > rings.requests.payload_capacity
            )
            if external:
                # Payload first, ring entry second: by the time the
                # worker sees the flagged entry the bytes are already in
                # (or ahead in) its queue — order within the session is
                # the ring's.
                self._worker_queues[worker].put(("payload", payload))
            rings.requests.try_push(
                opcode, ticket, shape, None if external else payload,
                session=session_bytes, external=external,
            )
            if rings.ring_kick(responses=False):
                self._worker_queues[worker].put(("kick",))
        else:
            self._worker_queues[worker].put(
                ("req", ticket, opcode, session, payload,
                 list(shape) if shape else None)
            )

    def _admit(self, conn: _Conn, rid: Any) -> bool:
        """Bounded per-connection admission: full queue means ``busy``."""
        if conn.pending >= self.queue_limit:
            self._write(conn, {
                "id": rid,
                "ok": False,
                "type": "busy",
                "limit": self.queue_limit,
            })
            return False
        conn.pending += 1
        self._inflight += 1
        return True

    async def _reap_loop(self) -> None:
        """The supervisor's clock: liveness, heartbeats, TTL sweeps."""
        try:
            while True:
                await asyncio.sleep(0.2)
                self._supervise_tick()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Supervision (event-loop thread unless noted).
    # ------------------------------------------------------------------
    def _supervise_tick(self) -> None:
        """One supervisor pass: detect dead/stalled workers, probe, sweep."""
        now = time.monotonic()
        for index in range(self.workers):
            if (index >= len(self._worker_state)
                    or self._worker_state[index] != "up"):
                continue
            proc = self._procs[index] if index < len(self._procs) else None
            if proc is None or not proc.is_alive():
                exitcode = proc.exitcode if proc is not None else None
                self._on_worker_down(
                    index, f"process died (exitcode {exitcode})"
                )
                continue
            timeout = self.heartbeat_timeout_s
            age = now - self._last_hb[index]
            if timeout and age > timeout:
                # Alive but unresponsive (stalled consumer, wedged
                # compute): from a client's perspective that IS death,
                # so make it one and let the restart path recover.
                self._log_event("heartbeat_timeout", worker=index,
                                age_s=round(age, 3))
                proc.kill()
                self._on_worker_down(
                    index, f"heartbeat unanswered for {age:.1f}s"
                )
        if self._draining or self._closing:
            return
        timeout = self.heartbeat_timeout_s
        if timeout and now - self._last_hb_sent >= max(0.2, timeout / 5):
            self._last_hb_sent = now
            self._probe_workers(("hb", now))
        ttl = self.session_ttl_s
        if ttl and now - self._last_sweep >= max(0.2, min(1.0, ttl / 4)):
            self._last_sweep = now
            self._probe_workers(("sweep", ttl))

    def _probe_workers(self, message: tuple) -> None:
        for index in range(self.workers):
            if self._worker_state[index] != "up":
                continue
            try:
                self._worker_queues[index].put(message)
            except (ValueError, OSError):
                pass  # queue broken: the liveness check is about to see it

    def _note_heartbeat(self, index: int, gen: int) -> None:
        if index < len(self._gen) and gen == self._gen[index]:
            self._last_hb[index] = time.monotonic()

    def _on_worker_fatal(self, index: int, gen: int, message: str) -> None:
        """The worker announced its own death (unhandled consumer error)."""
        if index >= len(self._gen) or gen != self._gen[index]:
            return
        self._log_event("worker_fatal", worker=index, message=message)
        proc = self._procs[index]
        if proc.is_alive():
            proc.terminate()
        self._on_worker_down(index, f"worker reported fatal: {message}")

    def _on_worker_down(self, index: int, reason: str) -> None:
        """One worker is gone: fail its in-flight work, plan its return.

        The blast radius is exactly this worker's sessions — every
        in-flight request routed to it gets a structured *retryable*
        error frame, its emission-order state is voided, and (budget
        permitting) a fresh process is spawned from the same artifact.
        Other workers' streams never notice.
        """
        if self._worker_state[index] != "up":
            return  # already being handled
        self._worker_state[index] = "down"
        self._gen[index] += 1  # invalidates the dead generation's pump
        self._log_event("worker_down", worker=index, reason=reason,
                        restarts=self._restarts[index])
        # Fail in-flight requests BEFORE resetting ring accounting:
        # _settle decrements _ring_results per push op.
        self._fail_worker_inflight(index, reason)
        self._fill_owed(index)
        self._emit_holdback[index].clear()
        self._emit_expected[index] = 0
        self._ring_results[index] = 0
        if self._rings:
            old = self._rings[index]
            if old is not None:
                old.close()
                old.unlink()
                self._rings[index] = None
        try:
            # Wake the dead generation's pump so it exits (best-effort:
            # a poisoned queue leaves it a blocked daemon thread).
            self._reply_queues[index].put(None)
        except (ValueError, OSError):
            pass
        self._schedule_restart(index)

    def _fail_worker_inflight(self, index: int, reason: str) -> None:
        for ticket, info in list(self._inflight_reqs.items()):
            if info[2] != index:
                continue
            self._inflight_reqs.pop(ticket, None)
            conn = self._settle(info)
            self.retryable_errors_total += 1
            if conn is not None:
                self._write(conn, error_reply(info[1], (
                    f"worker process {index} died with the request in "
                    f"flight ({reason}); its sessions' carried state is "
                    "lost — reopen and replay to recover"
                ), retryable=True))

    def _fill_owed(self, index: int) -> None:
        """Substitute a synthetic part for a dead worker's owed fan-outs."""
        for token, owed in list(self._stats_owed.items()):
            if index not in owed:
                continue
            owed.discard(index)
            aggregate = self._aggregates.get(token)
            if aggregate is not None:
                aggregate[3].append({
                    "worker": index, "ok": False,
                    "error": f"worker {index} died during aggregation",
                })
            self._maybe_finish_aggregate(token)

    def _schedule_restart(self, index: int) -> None:
        """Budget check, then respawn on a thread (never the event loop)."""
        if self._draining or self._closing:
            return  # shutting down; _shutdown_workers owns the rest
        times = self._restart_times[index]
        now = time.monotonic()
        while times and now - times[0] > self.restart_window_s:
            times.popleft()
        if len(times) >= self.restart_budget:
            self._worker_state[index] = "degraded"
            self._log_event(
                "worker_degraded", worker=index,
                restarts_in_window=len(times),
                window_s=self.restart_window_s,
            )
            return
        times.append(now)
        self._restarts[index] += 1
        self._worker_state[index] = "restarting"
        gen = self._gen[index]
        thread = threading.Thread(
            target=self._restart_worker,
            args=(index, gen),
            name=f"repro-net-restart-{index}g{gen}",
            daemon=True,
        )
        self._restart_threads.append(thread)
        thread.start()

    def _restart_worker(self, index: int, gen: int) -> None:
        """Respawn one worker from the artifact (restart thread).

        The spawn and ready-wait take whole seconds (interpreter +
        numpy + artifact load), far too long for the event loop; only
        the final installation hop is marshalled back onto it.  Faults
        arm the initial generation only — respawns come up clean.
        """
        import multiprocessing as mp

        from repro.runtime.net.worker import worker_main

        began = time.monotonic()
        rings = None
        proc = None
        requests = replies = None
        try:
            if self.transport == "shm" and self._rings:
                try:
                    rings = RingPair.create(self.ring_slots, self.slot_bytes)
                except (OSError, ValueError, RingError) as error:
                    print(
                        f"repro.net: worker {index} respawn: shared memory "
                        f"unavailable ({error}); using the pipe path",
                        file=sys.stderr,
                    )
                    rings = None
            ctx = mp.get_context("spawn")
            requests, replies = ctx.Queue(), ctx.Queue()
            requests.cancel_join_thread()
            replies.cancel_join_thread()
            proc = ctx.Process(
                target=worker_main,
                args=(
                    index, str(self._artifact_path), requests, replies,
                    self.max_batch, self.max_delay_s,
                    rings.name if rings is not None else None,
                    self.ring_slots, self.slot_bytes, self.inline_rows,
                    self.session_cap, None,
                ),
                name=f"repro-net-worker-{index}g{gen}",
                daemon=True,
            )
            proc.start()
            deadline = time.monotonic() + self.spawn_timeout_s
            ready = False
            while time.monotonic() < deadline and not self._closing:
                try:
                    message = replies.get(timeout=0.2)
                except (Empty, OSError, ValueError):
                    if not proc.is_alive() and proc.exitcode not in (0, None):
                        raise ConfigError(
                            f"worker {index} died during respawn"
                        ) from None
                    continue
                if message[0] == "ready":
                    ready = True
                    break
                if message[0] == "fatal":
                    raise ConfigError(message[2])
            if self._closing:
                raise ConfigError("server is closing")
            if not ready:
                raise ConfigError(
                    f"worker {index} respawn not ready after "
                    f"{self.spawn_timeout_s:g}s (spawn_timeout_s)"
                )
            box = {"installed": False}
            done = threading.Event()

            def install() -> None:
                try:
                    box["installed"] = self._install_worker(
                        index, gen, proc, requests, replies, rings, began
                    )
                finally:
                    done.set()

            self._loop.call_soon_threadsafe(install)
            if not done.wait(timeout=15) or not box["installed"]:
                raise ConfigError(
                    f"worker {index} respawn could not be installed"
                )
        except (ConfigError, OSError, ValueError, RuntimeError) as error:
            if proc is not None and proc.is_alive():
                proc.terminate()
            if rings is not None:
                rings.close()
                rings.unlink()
            try:
                self._loop.call_soon_threadsafe(
                    self._on_restart_failed, index, gen, str(error)
                )
            except RuntimeError:
                pass  # loop gone; close() owns the cleanup from here

    def _install_worker(self, index: int, gen: int, proc: Any,
                        requests: Any, replies: Any, rings: Any,
                        began: float) -> bool:
        """Adopt a respawned worker (event loop).  False rejects it."""
        if (
            self._closing
            or self._draining
            or index >= len(self._gen)
            or gen != self._gen[index]
            or self._worker_state[index] != "restarting"
        ):
            return False
        self._procs[index] = proc
        self._worker_queues[index] = requests
        self._reply_queues[index] = replies
        if self._rings:
            self._rings[index] = rings
        now = time.monotonic()
        self._worker_state[index] = "up"
        self._started_at[index] = now
        self._last_hb[index] = now
        self._emit_expected[index] = 0
        self._emit_holdback[index].clear()
        self._ring_results[index] = 0
        pump = threading.Thread(
            target=self._pump_replies,
            args=(index, gen, replies),
            name=f"repro-net-pump-{index}g{gen}",
            daemon=True,
        )
        self._pumps.append((index, gen, pump))
        pump.start()
        self._log_event(
            "worker_restarted", worker=index, generation=gen,
            took_ms=round((now - began) * 1000, 1),
        )
        return True

    def _on_restart_failed(self, index: int, gen: int, reason: str) -> None:
        """A respawn attempt died; the budget decides retry vs degrade."""
        if (
            index >= len(self._gen)
            or gen != self._gen[index]
            or self._worker_state[index] != "restarting"
        ):
            return
        self._log_event("worker_restart_failed", worker=index, reason=reason)
        self._worker_state[index] = "down"
        self._schedule_restart(index)

    def _worker_health(self, index: int) -> dict:
        now = time.monotonic()
        state = self._worker_state[index]
        return {
            "state": state,
            "restarts": self._restarts[index],
            "uptime_s": (
                round(now - self._started_at[index], 3)
                if state == "up" else 0.0
            ),
        }

    def _supervisor_summary(self) -> dict:
        return {
            "restarts_total": sum(self._restarts),
            "retryable_errors_total": self.retryable_errors_total,
            "degraded": [
                index for index, state in enumerate(self._worker_state)
                if state == "degraded"
            ],
        }

    def _health_snapshot(self) -> dict:
        """The parent-only ``health`` reply: no worker round trip, so it
        answers even while every worker is down or restarting."""
        now = time.monotonic()
        entries = []
        for index in range(self.workers):
            proc = self._procs[index] if index < len(self._procs) else None
            entries.append({
                "worker": index,
                "state": self._worker_state[index],
                "alive": bool(proc is not None and proc.is_alive()),
                "generation": self._gen[index],
                "restarts": self._restarts[index],
                "uptime_s": round(now - self._started_at[index], 3),
                "heartbeat_age_s": round(now - self._last_hb[index], 3),
            })
        return {
            "workers": entries,
            "draining": self._draining,
            **self._supervisor_summary(),
        }

    # -- worker reply paths (event-loop thread) ------------------------
    def _drain_responses(self, worker: int, gen: int) -> None:
        """A response-ring doorbell fired: clear the kick, drain the ring."""
        if worker >= len(self._gen) or gen != self._gen[worker]:
            return  # a replaced generation's doorbell; its ring is gone
        rings = self._rings[worker] if worker < len(self._rings) else None
        if rings is None:
            return
        rings.clear_kick(responses=True)
        ring = rings.responses
        while True:
            try:
                entry = ring.peek()
            except RingError as error:
                # A torn slot means the worker died mid-publish or the
                # segment is corrupt; either way nothing it publishes can
                # be trusted again — replace the worker.  Drop the prior
                # iteration's entry first: its payload view would keep
                # the doomed segment mapped through the close below.
                entry = None  # noqa: F841
                proc = self._procs[worker]
                if proc.is_alive():
                    proc.kill()
                self._on_worker_down(
                    worker,
                    f"response ring failed its seqlock check: {error}",
                )
                return
            if entry is None:
                return
            item = ("ring", entry.op, entry.seq_no,
                    bytes(entry.payload), entry.shape, entry.ticket)
            ring.advance()
            self._deliver_ordered(worker, entry.emit_seq, item)

    def _deliver_queued(self, worker: int, gen: int, key: Any,
                        emit_seq: Any, payload: dict) -> None:
        """A queue reply arrived (fan-out token or ticketed dict)."""
        if worker >= len(self._gen) or gen != self._gen[worker]:
            return  # late reply from a replaced worker; already failed
        if isinstance(key, str):
            self._deliver_fanout_part(key, payload)
            return
        if emit_seq is None:
            self._deliver_item(("dict", key, payload))
            return
        self._deliver_ordered(worker, emit_seq, ("dict", key, payload))

    def _deliver_ordered(self, worker: int, emit_seq: int,
                         item: tuple) -> None:
        """Restore the worker's emission order across ring + queue paths."""
        holdback = self._emit_holdback[worker]
        holdback[emit_seq] = item
        while self._emit_expected[worker] in holdback:
            next_item = holdback.pop(self._emit_expected[worker])
            self._emit_expected[worker] += 1
            self._deliver_item(next_item)

    def _deliver_item(self, item: tuple) -> None:
        if item[0] == "ring":
            _, opcode, seq_no, payload, shape, ticket = item
            info = self._inflight_reqs.pop(ticket, None)
            if info is None:
                return  # reaped: the client already has its error
            conn = self._settle(info)
            if conn is None:
                return
            self._write_result(conn, info, seq_no, payload, list(shape))
            return
        _, ticket, payload = item
        info = self._inflight_reqs.pop(ticket, None)
        if info is None:
            return
        conn = self._settle(info)
        if conn is None:
            return
        raw = payload.pop("raw", None)
        if raw is not None:
            self._write_result(conn, info, payload.get("seq", 0), *raw)
            return
        merge = info[4]
        if merge:
            payload = {**payload, **merge}
        self._write(conn, {"id": info[1], **payload})

    def _write_result(self, conn: _Conn, info: tuple, seq_no: int,
                      payload: bytes, shape: list[int]) -> None:
        """One push/push_many/score result, framed to mirror its request."""
        _conn_id, rid, _worker, binary, _merge, op = info
        if binary:
            opcode = {"push": BIN_RESULT, "push_many": BIN_RESULT_MANY,
                      "score": BIN_SCORE_RESULT}[op]
            try:
                conn.writer.write(build_binary_frame(
                    opcode, rid, shape, payload, seq=seq_no
                ))
            except Exception:  # repro: ignore[REP005] connection torn down mid-write; the reader path cleans up
                pass
            return
        key = "logprobs" if op == "score" else "logits"
        self._write(conn, {
            "id": rid, "ok": True, "type": op, "seq": seq_no,
            key: {
                "dtype": "<f8",
                "shape": shape,
                "b64": base64.b64encode(payload).decode("ascii"),
            },
        })

    def _deliver_fanout_part(self, token: str, payload: dict) -> None:
        """One worker's contribution to a stats/sessions aggregate."""
        aggregate = self._aggregates.get(token)
        if aggregate is None:
            return  # already answered (synthetic fill or failure)
        owed = self._stats_owed.get(token)
        if owed is not None:
            owed.discard(payload.get("worker"))
        aggregate[3].append(payload)
        self._maybe_finish_aggregate(token)

    def _maybe_finish_aggregate(self, token: str) -> None:
        """Answer a fan-out once no worker owes it a part."""
        owed = self._stats_owed.get(token)
        if owed is None or owed:
            return
        del self._stats_owed[token]
        aggregate = self._aggregates.pop(token, None)
        if aggregate is None:
            return
        kind, conn_id, rid, parts = aggregate
        parts.sort(key=lambda part: part.get("worker", 0))
        if kind == "sessions":
            sessions: list[dict] = []
            for part in parts:
                sessions.extend(part.get("sessions", ()))
            self._finish(conn_id, rid, {
                "ok": True, "type": "sessions",
                "sessions": sessions, "workers": parts,
            })
            return
        self._finish(conn_id, rid, {
            "ok": True, "type": "stats", "workers": parts,
            "supervisor": self._supervisor_summary(),
        })

    def _settle(self, info: tuple) -> _Conn | None:
        """Release one ticketed request's accounting; None if conn gone."""
        conn_id, rid, worker, _binary, _merge, op = info
        self._by_rid.pop((conn_id, rid), None)
        if (
            op in _RING_RESULT_OPS
            and worker < len(self._rings)
            and self._rings[worker] is not None
        ):
            self._ring_results[worker] -= 1
        self._inflight -= 1
        conn = self._conns.get(conn_id)
        if conn is None:
            return None  # client went away; the frame still ran
        conn.pending -= 1
        return conn

    def _finish(self, conn_id: int, rid: Any, payload: dict) -> None:
        """Settle one stats-style request: accounting, then the reply."""
        self._inflight -= 1
        conn = self._conns.get(conn_id)
        if conn is None:
            return  # client went away
        conn.pending -= 1
        self._write(conn, {"id": rid, **payload})

    def _write(self, conn: _Conn, message: dict) -> None:
        try:
            conn.writer.write(dump_line(message))
        except Exception:  # repro: ignore[REP005] connection torn down mid-write; the reader path cleans up
            pass
