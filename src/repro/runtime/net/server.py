"""The network front-end: an asyncio NDJSON TCP server over worker processes.

:class:`NetServer` is the process boundary the runtime stack stops at
after PR 4.  The parent process owns the listening socket and the
connection protocol only — **no model math runs here**.  It spawns
``workers`` worker processes (:mod:`repro.runtime.net.worker`), each of
which loads the compiled ``.npz`` artifact and runs its own
micro-batching :class:`repro.runtime.Server`; requests are routed to a
worker by a **stable hash of the session id**, so a named stream's
carried recurrent state stays worker-local for its whole life — across
pushes, connections, and reconnects.

Flow control is explicit: each connection may have at most
``queue_limit`` requests in flight; one more gets an immediate ``busy``
frame instead of unbounded buffering (the client resends after backoff —
a busy'd frame was *not* applied).  ``close()`` — and SIGTERM via
:meth:`serve_forever` — drains: the listener stops, in-flight frames
complete and their replies flush, then workers shut down their
micro-batching servers (which drain their own queues in turn).

>>> with NetServer(compiled, workers=2) as server:
...     client = Client(*server.address)
...     logits = client.session("stream-7").push(frame)
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import signal
import tempfile
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.runtime.net.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    SESSION_OPS,
    NetError,
    dump_line,
    error_reply,
    frame_payload_bytes,
    parse_line,
)

__all__ = ["NetServer", "route_session"]

#: Longest accepted session id — routing keys, not payloads.
_MAX_SESSION_ID = 256


def _net_error(message: str) -> dict:
    """An id-less error payload (the caller supplies the id)."""
    return {"ok": False, "type": "error", "kind": "NetError",
            "error": message}


def route_session(session: str, workers: int) -> int:
    """Worker index for a session id: stable across processes and runs.

    ``hash()`` is salted per process (PYTHONHASHSEED), so it would route
    the same session differently after a restart; a truncated SHA-256 is
    stable everywhere, which is what lets a reconnecting client find its
    carried state again.
    """
    digest = hashlib.sha256(session.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


class _Conn:
    """Per-connection state; touched only on the event-loop thread."""

    __slots__ = ("id", "writer", "pending")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.id = conn_id
        self.writer = writer
        self.pending = 0


class NetServer:
    """Serve one compiled model over TCP, sharded across worker processes.

    ``compiled`` is a :class:`repro.runtime.CompiledModel` (saved to a
    temporary artifact for the workers) or pass ``artifact_path`` to an
    existing ``.npz``.  ``port=0`` binds an ephemeral port — read
    :attr:`address` after :meth:`start`.  ``queue_limit`` bounds each
    connection's in-flight requests (the ``busy`` threshold).
    """

    def __init__(
        self,
        compiled: Any = None,
        *,
        artifact_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_batch: int = 16,
        max_delay_s: float = 0.002,
        queue_limit: int = 32,
        drain_timeout_s: float = 10.0,
    ):
        if compiled is None and artifact_path is None:
            raise ConfigError("NetServer needs a compiled model or artifact_path")
        if workers < 1:
            raise ConfigError(f"workers must be positive, got {workers}")
        if queue_limit < 1:
            raise ConfigError(f"queue_limit must be positive, got {queue_limit}")
        if artifact_path is not None and compiled is None:
            from repro.runtime.model import CompiledModel

            compiled = CompiledModel.load(artifact_path)
        self._compiled = compiled
        self._artifact_path = Path(artifact_path) if artifact_path else None
        self._host = host
        self._port = port
        self.workers = workers
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.queue_limit = queue_limit
        self.drain_timeout_s = drain_timeout_s

        self._stop_serving = threading.Event()
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._procs: list[Any] = []
        self._worker_queues: list[Any] = []
        # One reply queue (and pump thread) PER worker, never shared: a
        # worker killed between its queue-feeder's pipe write and lock
        # release would poison a shared queue's write lock and silently
        # hang every *surviving* worker's replies.  Isolated queues bound
        # the blast radius to the dead worker's own (already lost) replies.
        self._reply_queues: list[Any] = []
        self._pumps: list[threading.Thread] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._stop_async: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._lifecycle = threading.Lock()
        self._state = "new"  # guarded-by: _lifecycle (new -> started -> closed)

        # Event-loop-thread state.
        self._conns: dict[int, _Conn] = {}
        self._conn_ids = itertools.count(1)
        self._tasks: set[asyncio.Task] = set()
        # Stats fan-out tracking.  Keyed by a server-generated token (an
        # unguessable per-server prefix + counter), NOT the client-chosen
        # request id: a client reusing one id for a push and a stats
        # request must not be able to collide a push reply into a stats
        # aggregate and corrupt the admission accounting.
        self._stats_prefix = f"stats:{uuid.uuid4().hex}:"
        self._stats_seq = itertools.count(1)
        self._aggregates: dict[str, tuple[int, Any, list[dict]]] = {}
        # Every dispatched, unanswered request: (conn_id, rid) -> worker
        # index for session ops, stats token -> set of pending workers.
        # The reaper sweeps entries whose worker died (their replies will
        # never come) so admission slots and the drain can't leak.
        self._dispatched: dict[Any, Any] = {}
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._host, self._port

    @property
    def port(self) -> int:
        return self._port

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def start(self) -> "NetServer":
        """Spawn workers, bind the socket, begin serving.  Returns self."""
        with self._lifecycle:
            if self._state == "started":
                return self
            if self._state == "closed":
                raise ConfigError("NetServer cannot be restarted after close()")
            self._spawn_workers()
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._run_loop, name="repro-net-server", daemon=True
            )
            self._loop_thread.start()
            self._started.wait(timeout=30)
            if self._startup_error is not None:
                self._shutdown_workers()
                raise ConfigError(
                    f"net server failed to start: {self._startup_error}"
                )
            if not self._started.is_set():
                self._shutdown_workers()
                raise ConfigError("net server did not start within 30s")
            self._pumps = [
                threading.Thread(
                    target=self._pump_replies,
                    args=(queue,),
                    name=f"repro-net-pump-{index}",
                    daemon=True,
                )
                for index, queue in enumerate(self._reply_queues)
            ]
            for pump in self._pumps:
                pump.start()
            self._state = "started"
            return self

    def close(self) -> None:
        """Drain in-flight frames, shut workers down, release the port.

        Idempotent and safe under concurrent calls; every caller returns
        only after the teardown is complete.
        """
        self._stop_serving.set()  # release any serve_forever() caller
        with self._lifecycle:
            if self._state != "started":
                self._state = "closed"
                return
            self._state = "closed"
            loop, stop = self._loop, self._stop_async
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass  # loop already dead
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=self.drain_timeout_s + 30)
            self._shutdown_workers()
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
                self._tmpdir = None

    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until SIGTERM/SIGINT — or ``close()`` from another
        thread — then drain and shut down (CLI mode)."""
        self.start()
        previous = {}
        if install_signals:
            def handler(signum: int, frame: Any) -> None:
                self._stop_serving.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(signum, handler)
                except ValueError:
                    pass  # not the main thread; close() can still stop us
        try:
            self._stop_serving.wait()
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
            self.close()

    # ------------------------------------------------------------------
    # Worker lifecycle (caller threads).
    # ------------------------------------------------------------------
    def _spawn_workers(self) -> None:
        import multiprocessing as mp

        from repro.runtime.net.worker import worker_main

        if self._artifact_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-net-")
            self._artifact_path = (
                Path(self._tmpdir.name) / f"{self._compiled.fingerprint}.npz"
            )
            self._compiled.save(self._artifact_path)

        # "spawn" everywhere: the parent runs an event loop plus threads,
        # which fork() would duplicate into undefined territory.
        ctx = mp.get_context("spawn")
        self._reply_queues = [ctx.Queue() for _ in range(self.workers)]
        self._worker_queues = [ctx.Queue() for _ in range(self.workers)]
        for queue in self._reply_queues + self._worker_queues:
            # Never let interpreter exit join our feeder threads: a
            # worker killed while holding a queue's write lock leaves
            # that feeder blocked forever, and multiprocessing's atexit
            # finalizer would join it WITHOUT a timeout, hanging the
            # whole process at shutdown.  Everything that must arrive is
            # confirmed out-of-band (worker joins / ready handshakes), so
            # dropping unflushed bytes at exit is safe.
            queue.cancel_join_thread()
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    index,
                    str(self._artifact_path),
                    self._worker_queues[index],
                    self._reply_queues[index],
                    self.max_batch,
                    self.max_delay_s,
                ),
                name=f"repro-net-worker-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        deadline = time.monotonic() + 120
        for index, proc in enumerate(self._procs):
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._shutdown_workers()
                    raise ConfigError(
                        f"worker {index} not ready after 120s"
                    )
                try:
                    message = self._reply_queues[index].get(
                        timeout=min(remaining, 1.0)
                    )
                except Exception:
                    if not proc.is_alive() and proc.exitcode not in (0, None):
                        self._shutdown_workers()
                        raise ConfigError(
                            f"worker process {proc.name} died during startup"
                        )
                    continue
                if message[0] == "ready":
                    break
                if message[0] == "fatal":
                    self._shutdown_workers()
                    raise ConfigError(message[2])

    def _shutdown_workers(self) -> None:
        for q in self._worker_queues:
            try:
                q.put(("shutdown",))
            except Exception:  # repro: ignore[REP005] queue torn down by a dead worker; join/terminate below still reaps it
                pass
        for proc in self._procs:
            proc.join(timeout=15)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for index, queue in enumerate(self._reply_queues):
            try:
                queue.put(None)  # stop that worker's pump
            except Exception:  # repro: ignore[REP005] best-effort pump stop; unjoinable pumps stay daemon threads by design
                pass
        for index, pump in enumerate(self._pumps):
            # A worker that died uncleanly may have poisoned its reply
            # queue's locks; its pump can stay blocked (daemon thread)
            # rather than stall close() waiting for a join that cannot
            # succeed.
            proc = self._procs[index] if index < len(self._procs) else None
            if proc is None or proc.exitcode == 0:
                pump.join(timeout=10)
        self._pumps = []
        self._procs = []
        self._worker_queues = []
        self._reply_queues = []

    def _pump_replies(self, replies: Any) -> None:
        """Move one worker's replies onto the event loop (which owns conns)."""
        while True:
            message = replies.get()
            if message is None:
                return
            kind = message[0]
            if kind == "res":
                _, conn_id, rid, payload = message
                try:
                    self._loop.call_soon_threadsafe(
                        self._deliver, conn_id, rid, payload
                    )
                except RuntimeError:
                    return  # loop closed mid-drain; workers are next
            # "ready" duplicates and "fatal" after startup are
            # informational — _handle_request checks process liveness
            # before dispatching, so a dead worker surfaces as an error
            # reply on the next request routed to it.  (Requests already
            # queued to a worker when it dies are lost; the drain loop
            # caps the wait at drain_timeout_s.  Supervision/restart is
            # ROADMAP work.)

    # ------------------------------------------------------------------
    # Event-loop side.
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve_main())
        except BaseException as error:  # noqa: BLE001 — surfaced by start()
            self._startup_error = error
            self._started.set()
        finally:
            loop.close()

    async def _serve_main(self) -> None:
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES + 1024,
        )
        self._port = server.sockets[0].getsockname()[1]
        reaper = asyncio.ensure_future(self._reap_loop())
        self._started.set()
        await self._stop_async.wait()
        reaper.cancel()

        # Drain: stop accepting and refuse new work (readers stay alive so
        # in-flight replies still reach their clients), wait for every
        # dispatched frame's reply to flush, then tear the readers down.
        self._draining = True
        server.close()
        await server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            # Requests owed by a dead worker can never drain; fail them
            # now rather than waiting out the whole timeout.
            self._reap_dead_workers()
            await asyncio.sleep(0.005)
        readers = list(self._tasks)
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        for conn in list(self._conns.values()):
            # _finish only wrote replies into the transport buffer; the
            # drain promise means actually flushing them to the socket
            # before the loop (and its pending writes) is torn down.  A
            # client too slow to read within the remaining budget forfeits
            # its tail.
            try:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    await asyncio.wait_for(conn.writer.drain(), remaining)
            except Exception:  # repro: ignore[REP005] drain is best-effort: a slow/dead client forfeits its tail by contract
                pass
            try:
                conn.writer.close()
                await asyncio.wait_for(conn.writer.wait_closed(), 1.0)
            except Exception:  # repro: ignore[REP005] socket already reset by the peer; loop teardown follows either way
                pass
        self._conns.clear()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(next(self._conn_ids), writer)
        self._conns[conn.id] = conn
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._write(conn, {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "backend": self._compiled.backend,
            "input_size": self._compiled.input_size,
            "num_classes": self._compiled.num_classes,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
        })
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._write(conn, error_reply(
                        None, f"request line exceeds {MAX_LINE_BYTES} bytes"
                    ))
                    break
                if not line:
                    break
                self._handle_request(conn, line)
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self._conns.pop(conn.id, None)
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
            except Exception:  # repro: ignore[REP005] reader already failed; closing a broken transport must not mask that
                pass

    def _handle_request(self, conn: _Conn, line: bytes) -> None:
        try:
            message = parse_line(line)
        except NetError as error:
            self._write(conn, error_reply(None, error))
            return
        rid = message.get("id")
        if isinstance(rid, (dict, list)):
            self._write(conn, error_reply(
                None, "request id must be a JSON scalar"
            ))
            return
        op = message.get("op")
        if op == "ping":
            self._write(conn, {"id": rid, "ok": True, "type": "pong"})
            return
        if self._draining:
            self._write(conn, error_reply(
                rid, "server is draining for shutdown; no new work accepted"
            ))
            return
        if op == "stats":
            dead = self._dead_workers()
            if dead:
                self._write(conn, error_reply(
                    rid, f"worker process(es) {dead} died; stats cannot "
                    "aggregate every worker"
                ))
                return
            if not self._admit(conn, rid):
                return
            token = self._stats_prefix + str(next(self._stats_seq))
            self._aggregates[token] = (conn.id, rid, [])
            self._dispatched[token] = set(range(self.workers))
            for q in self._worker_queues:
                q.put(("stats", conn.id, token))
            return
        if op in SESSION_OPS:
            session = message.get("session")
            if not isinstance(session, str) or not session:
                self._write(conn, error_reply(
                    rid, f"op {op!r} needs a non-empty string session id"
                ))
                return
            if len(session) > _MAX_SESSION_ID:
                self._write(conn, error_reply(
                    rid, f"session id exceeds {_MAX_SESSION_ID} characters"
                ))
                return
            frame_bytes = shape = None
            if op == "push":
                try:
                    # Canonical b64 frames pass their raw bytes straight
                    # through to the worker — no numpy round trip on the
                    # one thread every connection shares.
                    frame_bytes, shape = frame_payload_bytes(
                        message.get("frame")
                    )
                except NetError as error:
                    self._write(conn, error_reply(rid, error))
                    return
            worker = route_session(session, self.workers)
            if not self._procs[worker].is_alive():
                self._write(conn, error_reply(
                    rid, f"worker process {worker} died; session "
                    f"{session!r} and its carried state are lost"
                ))
                return
            if (conn.id, rid) in self._dispatched:
                # Reply matching is by id: a duplicate in-flight id would
                # overwrite the tracking entry and leak an admission slot
                # when its reply is mistaken for a reaped duplicate.
                self._write(conn, error_reply(
                    rid, f"request id {rid!r} is already in flight on "
                    "this connection; ids must be unique until answered"
                ))
                return
            if not self._admit(conn, rid):
                return
            self._dispatched[(conn.id, rid)] = worker
            self._worker_queues[worker].put(
                ("req", conn.id, rid, op, session, frame_bytes, shape)
            )
            return
        self._write(conn, error_reply(
            rid, f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        ))

    def _admit(self, conn: _Conn, rid: Any) -> bool:
        """Bounded per-connection admission: full queue means ``busy``."""
        if conn.pending >= self.queue_limit:
            self._write(conn, {
                "id": rid,
                "ok": False,
                "type": "busy",
                "limit": self.queue_limit,
            })
            return False
        conn.pending += 1
        self._inflight += 1
        return True

    def _dead_workers(self) -> list[int]:
        return [
            index for index, proc in enumerate(self._procs)
            if not proc.is_alive()
        ]

    async def _reap_loop(self) -> None:
        """Periodically fail requests owed by workers that died."""
        try:
            while True:
                await asyncio.sleep(0.5)
                self._reap_dead_workers()
        except asyncio.CancelledError:
            pass

    def _reap_dead_workers(self) -> None:
        """Resolve dispatched requests whose worker can no longer reply.

        Without this, a worker crash after dispatch would leak the
        connection's admission slot and ``_inflight`` forever — busy
        frames for the rest of the connection's life and a full
        ``drain_timeout_s`` stall on every close.
        """
        dead = set(self._dead_workers())
        if not dead:
            return
        for key, owed in list(self._dispatched.items()):
            if isinstance(key, str):  # stats token: owed = pending workers
                if not (owed & dead):
                    continue
                self._dispatched.pop(key, None)
                aggregate = self._aggregates.pop(key, None)
                if aggregate is None:
                    continue
                conn_id, rid, _parts = aggregate
                self._finish(conn_id, rid, _net_error(
                    f"worker process(es) {sorted(owed & dead)} died during "
                    "stats aggregation"
                ))
            elif owed in dead:
                self._dispatched.pop(key, None)
                conn_id, rid = key
                self._finish(conn_id, rid, _net_error(
                    f"worker process {owed} died with the request in "
                    "flight; its sessions' carried state is lost"
                ))

    def _deliver(self, conn_id: int, rid: Any, payload: dict) -> None:
        """A worker reply arrived (event-loop thread): match and write.

        ``rid`` is either the client's request id (session ops, echoed
        verbatim through the worker) or a server-internal stats token.
        """
        if isinstance(rid, str) and rid in self._aggregates:
            conn_id0, real_rid, parts = self._aggregates[rid]
            owed = self._dispatched.get(rid)
            if owed is not None:
                owed.discard(payload.get("worker"))
            parts.append(payload)
            if len(parts) < self.workers:
                return
            del self._aggregates[rid]
            self._dispatched.pop(rid, None)
            parts.sort(key=lambda part: part.get("worker", 0))
            payload = {"ok": True, "type": "stats", "workers": parts}
            conn_id, rid = conn_id0, real_rid
        elif self._dispatched.pop((conn_id, rid), None) is None:
            # Already resolved by the reaper (the worker died and a
            # buffered reply limped in afterwards) — the client has its
            # answer; dropping the duplicate keeps accounting exact.
            return
        self._finish(conn_id, rid, payload)

    def _finish(self, conn_id: int, rid: Any, payload: dict) -> None:
        """Settle one admitted request: accounting, then the reply."""
        self._inflight -= 1
        conn = self._conns.get(conn_id)
        if conn is None:
            return  # client went away; the frame still ran (state advanced)
        conn.pending -= 1
        self._write(conn, {"id": rid, **payload})

    def _write(self, conn: _Conn, message: dict) -> None:
        try:
            conn.writer.write(dump_line(message))
        except Exception:  # repro: ignore[REP005] connection torn down mid-write; the reader path cleans up
            pass
