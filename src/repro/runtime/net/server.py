"""The network front-end: an asyncio TCP server over worker processes.

:class:`NetServer` is the process boundary the runtime stack stops at
after PR 4.  The parent process owns the listening socket and the
connection protocol only — **no model math runs here**.  It spawns
``workers`` worker processes (:mod:`repro.runtime.net.worker`), each of
which loads the compiled ``.npz`` artifact and runs its own
micro-batching :class:`repro.runtime.Server`; requests are routed to a
worker by a **stable hash of the session id**, so a named stream's
carried recurrent state stays worker-local for its whole life — across
pushes, connections, and reconnects.

Two framings share every connection (PR 7): NDJSON v1 for all control
traffic and for v1 clients, and the length-prefixed binary v2 frames for
``push``/``push_many`` payloads once a client negotiates ``protocol: 2``
in its ``open`` handshake.  Payloads cross the process boundary through
a per-worker ``multiprocessing.shared_memory`` ring
(:mod:`repro.runtime.net.ring`) instead of pickled pipes — doorbells are
coalesced queue messages, slots seqlock-checked — with
``transport="pipe"`` retained as the fallback (and as the bench
baseline).

Flow control is explicit: each connection may have at most
``queue_limit`` requests in flight; one more gets an immediate ``busy``
frame instead of unbounded buffering (the client resends after backoff —
a busy'd frame was *not* applied).  A full request ring or a worker with
every response slot spoken for answers ``busy`` the same way.
``close()`` — and SIGTERM via :meth:`serve_forever` — drains: the
listener stops, in-flight frames complete and their replies flush, then
workers shut down their micro-batching servers (which drain their own
queues in turn).

>>> with NetServer(compiled, workers=2) as server:
...     client = Client(*server.address)
...     logits = client.session("stream-7").push(frame)
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import itertools
import signal
import struct
import sys
import tempfile
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.runtime.net.protocol import (
    BIN_PREFIX,
    BIN_MAGIC,
    BIN_PUSH,
    BIN_PUSH_MANY,
    BIN_RESULT,
    BIN_RESULT_MANY,
    MAX_BIN_NDIM,
    MAX_BIN_SESSION,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    MAX_PROTOCOL,
    OPS,
    PROTOCOL_VERSION,
    SESSION_OPS,
    NetError,
    build_binary_frame,
    check_binary_header,
    dump_line,
    error_reply,
    frame_payload_bytes,
    parse_line,
)
from repro.runtime.net.ring import (
    OP_CLOSE,
    OP_OPEN,
    OP_PUSH,
    OP_PUSH_MANY,
    OP_RESET,
    RingError,
    RingPair,
)

__all__ = ["NetServer", "route_session"]

#: Longest accepted session id — routing keys, not payloads.
_MAX_SESSION_ID = 256

#: Wire op name → worker ring op code.
_WIRE_OPS = {"open": OP_OPEN, "push": OP_PUSH, "push_many": OP_PUSH_MANY,
             "reset": OP_RESET, "close": OP_CLOSE}

#: The ops whose replies occupy a worker response-ring slot.
_PUSH_OPS = frozenset({"push", "push_many"})


def _net_error(message: str) -> dict:
    """An id-less error payload (the caller supplies the id)."""
    return {"ok": False, "type": "error", "kind": "NetError",
            "error": message}


def route_session(session: str, workers: int) -> int:
    """Worker index for a session id: stable across processes and runs.

    ``hash()`` is salted per process (PYTHONHASHSEED), so it would route
    the same session differently after a restart; a truncated SHA-256 is
    stable everywhere, which is what lets a reconnecting client find its
    carried state again.
    """
    digest = hashlib.sha256(session.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


class _LineTooLong(Exception):
    """An NDJSON line overran ``MAX_LINE_BYTES``; the stream is resynced."""


class _FrameReader:
    """Buffered reads over a StreamReader for the dual-framing protocol.

    asyncio's own ``readline`` raises on an oversized line *after
    garbling its buffer*, which is why PR 5 had to hang up on oversized
    requests.  This reader owns the buffer: an oversized line is
    discarded through its terminating newline, so the caller can send
    the promised structured error and keep the connection.
    """

    __slots__ = ("_reader", "_buf", "_eof")

    def __init__(self, reader: asyncio.StreamReader):
        self._reader = reader
        self._buf = bytearray()
        self._eof = False

    async def _fill(self) -> bool:
        if self._eof:
            return False
        chunk = await self._reader.read(65536)
        if not chunk:
            self._eof = True
            return False
        self._buf += chunk
        return True

    async def peek_byte(self) -> int | None:
        """First buffered byte without consuming it; None at EOF."""
        while not self._buf:
            if not await self._fill():
                return None
        return self._buf[0]

    async def read_exactly(self, count: int) -> bytes | None:
        """``count`` bytes, or None if the peer hung up first."""
        while len(self._buf) < count:
            if not await self._fill():
                return None
        taken = bytes(self._buf[:count])
        del self._buf[:count]
        return taken

    async def read_line(self, limit: int) -> bytes | None:
        """One newline-terminated line of at most ``limit`` bytes.

        Raises :class:`_LineTooLong` — after consuming the whole
        oversized line, so the stream stays in sync — when the cap is
        exceeded.  Returns None at EOF.
        """
        overflow = False
        while True:
            index = self._buf.find(b"\n")
            if index != -1:
                line = bytes(self._buf[: index + 1])
                del self._buf[: index + 1]
                if overflow or index > limit:
                    raise _LineTooLong()
                return line
            if len(self._buf) > limit:
                # Bound memory while discarding toward the newline.
                overflow = True
                self._buf.clear()
            if not await self._fill():
                if not overflow and self._buf:
                    line = bytes(self._buf)  # unterminated trailing line
                    self._buf.clear()
                    return line
                return None


class _Conn:
    """Per-connection state; touched only on the event-loop thread."""

    __slots__ = ("id", "writer", "pending", "protocol")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.id = conn_id
        self.writer = writer
        self.pending = 0
        self.protocol = PROTOCOL_VERSION  # raised to 2 by negotiation


class NetServer:
    """Serve one compiled model over TCP, sharded across worker processes.

    ``compiled`` is a :class:`repro.runtime.CompiledModel` (saved to a
    temporary artifact for the workers) or pass ``artifact_path`` to an
    existing ``.npz``.  ``port=0`` binds an ephemeral port — read
    :attr:`address` after :meth:`start`.  ``queue_limit`` bounds each
    connection's in-flight requests (the ``busy`` threshold).

    ``transport`` selects the parent↔worker payload path: ``"shm"``
    (default) uses the shared-memory rings, ``"pipe"`` the pickled
    queues; when shared memory cannot be created the server falls back
    to ``"pipe"`` with a warning.  ``max_protocol=1`` disables v2
    negotiation entirely (a v1-only server, for compatibility testing).
    ``inline_rows=False`` makes workers route every row through their
    micro-batch dispatcher even when only one session is busy — the
    seed scheduling behaviour, kept for the bench baseline.
    """

    def __init__(
        self,
        compiled: Any = None,
        *,
        artifact_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_batch: int = 16,
        max_delay_s: float = 0.002,
        queue_limit: int = 32,
        drain_timeout_s: float = 10.0,
        transport: str = "shm",
        max_protocol: int = MAX_PROTOCOL,
        ring_slots: int = 128,
        slot_bytes: int = 32768,
        inline_rows: bool = True,
    ):
        if compiled is None and artifact_path is None:
            raise ConfigError("NetServer needs a compiled model or artifact_path")
        if workers < 1:
            raise ConfigError(f"workers must be positive, got {workers}")
        if queue_limit < 1:
            raise ConfigError(f"queue_limit must be positive, got {queue_limit}")
        if transport not in ("shm", "pipe"):
            raise ConfigError(
                f"transport must be 'shm' or 'pipe', got {transport!r}"
            )
        if not PROTOCOL_VERSION <= max_protocol <= MAX_PROTOCOL:
            raise ConfigError(
                f"max_protocol must be {PROTOCOL_VERSION}.."
                f"{MAX_PROTOCOL}, got {max_protocol}"
            )
        if ring_slots < 2:
            raise ConfigError(f"ring_slots must be >= 2, got {ring_slots}")
        if slot_bytes < 1024:
            raise ConfigError(f"slot_bytes must be >= 1024, got {slot_bytes}")
        if artifact_path is not None and compiled is None:
            from repro.runtime.model import CompiledModel

            compiled = CompiledModel.load(artifact_path)
        self._compiled = compiled
        self._artifact_path = Path(artifact_path) if artifact_path else None
        self._host = host
        self._port = port
        self.workers = workers
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.queue_limit = queue_limit
        self.drain_timeout_s = drain_timeout_s
        self.transport = transport
        self.max_protocol = max_protocol
        self.ring_slots = ring_slots
        self.slot_bytes = slot_bytes
        self.inline_rows = inline_rows

        self._stop_serving = threading.Event()
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._procs: list[Any] = []
        self._worker_queues: list[Any] = []
        # One reply queue (and pump thread) PER worker, never shared: a
        # worker killed between its queue-feeder's pipe write and lock
        # release would poison a shared queue's write lock and silently
        # hang every *surviving* worker's replies.  Isolated queues bound
        # the blast radius to the dead worker's own (already lost) replies.
        self._reply_queues: list[Any] = []
        self._rings: list[RingPair] = []  # empty under transport="pipe"
        self._pumps: list[threading.Thread] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._stop_async: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._lifecycle = threading.Lock()
        self._state = "new"  # guarded-by: _lifecycle (new -> started -> closed)

        # Event-loop-thread state.
        self._conns: dict[int, _Conn] = {}
        self._conn_ids = itertools.count(1)
        self._tasks: set[asyncio.Task] = set()
        # Stats fan-out tracking.  Keyed by a server-generated token (an
        # unguessable per-server prefix + counter), NOT the client-chosen
        # request id: a client reusing one id for a push and a stats
        # request must not be able to collide a push reply into a stats
        # aggregate and corrupt the admission accounting.
        self._stats_prefix = f"stats:{uuid.uuid4().hex}:"
        self._stats_seq = itertools.count(1)
        self._aggregates: dict[str, tuple[int, Any, list[dict]]] = {}
        self._stats_owed: dict[str, set[int]] = {}
        # Session-op dispatch: every in-flight request gets a compact
        # parent-side ticket (the worker echoes it; payload routing never
        # carries the client-chosen rid).  _by_rid backs duplicate-id
        # rejection and reaper accounting.
        self._ticket_seq = itertools.count(1)
        self._inflight_reqs: dict[int, tuple] = {}
        self._by_rid: dict[tuple[int, Any], int] = {}
        # Per-worker response-slot budget and emission-order restore.
        self._ring_results: list[int] = []
        self._emit_expected: list[int] = []
        self._emit_holdback: list[dict[int, tuple]] = []
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._host, self._port

    @property
    def port(self) -> int:
        return self._port

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def start(self) -> "NetServer":
        """Spawn workers, bind the socket, begin serving.  Returns self."""
        with self._lifecycle:
            if self._state == "started":
                return self
            if self._state == "closed":
                raise ConfigError("NetServer cannot be restarted after close()")
            self._spawn_workers()
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._run_loop, name="repro-net-server", daemon=True
            )
            self._loop_thread.start()
            self._started.wait(timeout=30)
            if self._startup_error is not None:
                self._shutdown_workers()
                raise ConfigError(
                    f"net server failed to start: {self._startup_error}"
                )
            if not self._started.is_set():
                self._shutdown_workers()
                raise ConfigError("net server did not start within 30s")
            self._pumps = [
                threading.Thread(
                    target=self._pump_replies,
                    args=(index, queue),
                    name=f"repro-net-pump-{index}",
                    daemon=True,
                )
                for index, queue in enumerate(self._reply_queues)
            ]
            for pump in self._pumps:
                pump.start()
            self._state = "started"
            return self

    def close(self) -> None:
        """Drain in-flight frames, shut workers down, release the port.

        Idempotent and safe under concurrent calls; every caller returns
        only after the teardown is complete.
        """
        self._stop_serving.set()  # release any serve_forever() caller
        with self._lifecycle:
            if self._state != "started":
                self._state = "closed"
                return
            self._state = "closed"
            loop, stop = self._loop, self._stop_async
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass  # loop already dead
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=self.drain_timeout_s + 30)
            self._shutdown_workers()
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
                self._tmpdir = None

    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until SIGTERM/SIGINT — or ``close()`` from another
        thread — then drain and shut down (CLI mode)."""
        self.start()
        previous = {}
        if install_signals:
            def handler(signum: int, frame: Any) -> None:
                self._stop_serving.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(signum, handler)
                except ValueError:
                    pass  # not the main thread; close() can still stop us
        try:
            self._stop_serving.wait()
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
            self.close()

    # ------------------------------------------------------------------
    # Worker lifecycle (caller threads).
    # ------------------------------------------------------------------
    def _spawn_workers(self) -> None:
        import multiprocessing as mp

        from repro.runtime.net.worker import worker_main

        if self._artifact_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-net-")
            self._artifact_path = (
                Path(self._tmpdir.name) / f"{self._compiled.fingerprint}.npz"
            )
            self._compiled.save(self._artifact_path)

        if self.transport == "shm":
            try:
                self._rings = [
                    RingPair.create(self.ring_slots, self.slot_bytes)
                    for _ in range(self.workers)
                ]
            except Exception as error:  # repro: ignore[REP005] no usable /dev/shm is an environment, not a caller, problem; the pipe path serves identically
                for rings in self._rings:
                    rings.close()
                    rings.unlink()
                self._rings = []
                self.transport = "pipe"
                print(
                    f"repro.net: shared memory unavailable ({error}); "
                    "falling back to transport='pipe'",
                    file=sys.stderr,
                )
        self._ring_results = [0] * self.workers
        self._emit_expected = [0] * self.workers
        self._emit_holdback = [dict() for _ in range(self.workers)]

        # "spawn" everywhere: the parent runs an event loop plus threads,
        # which fork() would duplicate into undefined territory.
        ctx = mp.get_context("spawn")
        self._reply_queues = [ctx.Queue() for _ in range(self.workers)]
        self._worker_queues = [ctx.Queue() for _ in range(self.workers)]
        for queue in self._reply_queues + self._worker_queues:
            # Never let interpreter exit join our feeder threads: a
            # worker killed while holding a queue's write lock leaves
            # that feeder blocked forever, and multiprocessing's atexit
            # finalizer would join it WITHOUT a timeout, hanging the
            # whole process at shutdown.  Everything that must arrive is
            # confirmed out-of-band (worker joins / ready handshakes), so
            # dropping unflushed bytes at exit is safe.
            queue.cancel_join_thread()
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    index,
                    str(self._artifact_path),
                    self._worker_queues[index],
                    self._reply_queues[index],
                    self.max_batch,
                    self.max_delay_s,
                    self._rings[index].name if self._rings else None,
                    self.ring_slots,
                    self.slot_bytes,
                    self.inline_rows,
                ),
                name=f"repro-net-worker-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        deadline = time.monotonic() + 120
        for index, proc in enumerate(self._procs):
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._shutdown_workers()
                    raise ConfigError(
                        f"worker {index} not ready after 120s"
                    )
                try:
                    message = self._reply_queues[index].get(
                        timeout=min(remaining, 1.0)
                    )
                except Exception:
                    if not proc.is_alive() and proc.exitcode not in (0, None):
                        self._shutdown_workers()
                        raise ConfigError(
                            f"worker process {proc.name} died during startup"
                        )
                    continue
                if message[0] == "ready":
                    break
                if message[0] == "fatal":
                    self._shutdown_workers()
                    raise ConfigError(message[2])

    def _shutdown_workers(self) -> None:
        for q in self._worker_queues:
            try:
                q.put(("shutdown",))
            except Exception:  # repro: ignore[REP005] queue torn down by a dead worker; join/terminate below still reaps it
                pass
        for proc in self._procs:
            proc.join(timeout=15)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for index, queue in enumerate(self._reply_queues):
            try:
                queue.put(None)  # stop that worker's pump
            except Exception:  # repro: ignore[REP005] best-effort pump stop; unjoinable pumps stay daemon threads by design
                pass
        for index, pump in enumerate(self._pumps):
            # A worker that died uncleanly may have poisoned its reply
            # queue's locks; its pump can stay blocked (daemon thread)
            # rather than stall close() waiting for a join that cannot
            # succeed.
            proc = self._procs[index] if index < len(self._procs) else None
            if proc is None or proc.exitcode == 0:
                pump.join(timeout=10)
        for rings in self._rings:
            # Workers have exited (or been terminated): the parent owns
            # the segment's end of life.
            rings.close()
            rings.unlink()
        self._rings = []
        self._pumps = []
        self._procs = []
        self._worker_queues = []
        self._reply_queues = []

    def _pump_replies(self, index: int, replies: Any) -> None:
        """Move one worker's replies onto the event loop (which owns conns)."""
        while True:
            message = replies.get()
            if message is None:
                return
            kind = message[0]
            try:
                if kind == "ring":
                    self._loop.call_soon_threadsafe(
                        self._drain_responses, index
                    )
                elif kind == "res":
                    _, key, emit_seq, payload = message
                    self._loop.call_soon_threadsafe(
                        self._deliver_queued, index, key, emit_seq, payload
                    )
            except RuntimeError:
                return  # loop closed mid-drain; workers are next
            # "ready" duplicates and "fatal" after startup are
            # informational — _dispatch checks process liveness before
            # dispatching, so a dead worker surfaces as an error reply on
            # the next request routed to it.  (Requests already queued to
            # a worker when it dies are reaped; the drain loop caps the
            # wait at drain_timeout_s.  Supervision/restart is ROADMAP
            # work.)

    # ------------------------------------------------------------------
    # Event-loop side.
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve_main())
        except BaseException as error:  # noqa: BLE001 — surfaced by start()
            self._startup_error = error
            self._started.set()
        finally:
            loop.close()

    async def _serve_main(self) -> None:
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn,
            self._host,
            self._port,
        )
        self._port = server.sockets[0].getsockname()[1]
        reaper = asyncio.ensure_future(self._reap_loop())
        self._started.set()
        await self._stop_async.wait()
        reaper.cancel()

        # Drain: stop accepting and refuse new work (readers stay alive so
        # in-flight replies still reach their clients), wait for every
        # dispatched frame's reply to flush, then tear the readers down.
        self._draining = True
        server.close()
        await server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            # Requests owed by a dead worker can never drain; fail them
            # now rather than waiting out the whole timeout.
            self._reap_dead_workers()
            await asyncio.sleep(0.005)
        readers = list(self._tasks)
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        for conn in list(self._conns.values()):
            # Replies were only written into the transport buffer; the
            # drain promise means actually flushing them to the socket
            # before the loop (and its pending writes) is torn down.  A
            # client too slow to read within the remaining budget forfeits
            # its tail.
            try:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    await asyncio.wait_for(conn.writer.drain(), remaining)
            except Exception:  # repro: ignore[REP005] drain is best-effort: a slow/dead client forfeits its tail by contract
                pass
            try:
                conn.writer.close()
                await asyncio.wait_for(conn.writer.wait_closed(), 1.0)
            except Exception:  # repro: ignore[REP005] socket already reset by the peer; loop teardown follows either way
                pass
        self._conns.clear()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(next(self._conn_ids), writer)
        self._conns[conn.id] = conn
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._write(conn, {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "max_protocol": self.max_protocol,
            "backend": self._compiled.backend,
            "input_size": self._compiled.input_size,
            "num_classes": self._compiled.num_classes,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
        })
        frames = _FrameReader(reader)
        try:
            while True:
                first = await frames.peek_byte()
                if first is None:
                    break
                if first == BIN_MAGIC:
                    if not await self._read_binary(conn, frames):
                        break
                else:
                    try:
                        line = await frames.read_line(MAX_LINE_BYTES)
                    except _LineTooLong:
                        # The stream is resynced past the newline: one
                        # structured error, connection stays usable.
                        self._write(conn, error_reply(
                            None,
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ))
                        await writer.drain()
                        continue
                    if line is None:
                        break
                    self._handle_request(conn, line)
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self._conns.pop(conn.id, None)
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
            except Exception:  # repro: ignore[REP005] reader already failed; closing a broken transport must not mask that
                pass

    async def _read_binary(self, conn: _Conn, frames: _FrameReader) -> bool:
        """Consume one v2 binary frame.  False tears the connection down.

        The frame is length-prefixed and read in full before validation,
        so every *semantic* defect (bad version/op/dtype, shape vs
        payload mismatch) costs one structured JSON error and the
        connection stays usable; only untrustworthy length fields force
        a close (there is nothing left to resynchronize on).
        """
        prefix = await frames.read_exactly(BIN_PREFIX.size)
        if prefix is None:
            return False
        (_, version, opcode, dtype_code, rid, _seq,
         slen, ndim, _pad) = BIN_PREFIX.unpack(prefix)
        if ndim > MAX_BIN_NDIM or slen > MAX_BIN_SESSION:
            self._write(conn, error_reply(rid, (
                f"binary header lengths out of range (ndim {ndim}, session "
                f"{slen} bytes); the frame cannot be skipped — closing"
            )))
            return False
        rest = await frames.read_exactly(4 * ndim + 4)
        if rest is None:
            return False
        *dims, nbytes = struct.unpack(f"<{ndim}II", rest)
        if nbytes > MAX_FRAME_BYTES:
            self._write(conn, error_reply(rid, (
                f"binary payload of {nbytes} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap; closing"
            )))
            return False
        body = await frames.read_exactly(slen + nbytes)
        if body is None:
            return False
        try:
            check_binary_header(
                version, opcode, dtype_code, tuple(dims), nbytes,
                expect_request=True,
            )
            session = body[:slen].decode("utf-8")
        except NetError as error:
            self._write(conn, error_reply(rid, error))
            return True
        except UnicodeDecodeError:
            self._write(conn, error_reply(rid, "session id is not UTF-8"))
            return True
        if conn.protocol < 2:
            self._write(conn, error_reply(rid, (
                "binary framing was not negotiated on this connection; "
                "send an open request with \"protocol\": 2 first"
            )))
            return True
        if self._draining:
            self._write(conn, error_reply(
                rid, "server is draining for shutdown; no new work accepted"
            ))
            return True
        op = {BIN_PUSH: "push", BIN_PUSH_MANY: "push_many"}[opcode]
        self._dispatch(
            conn, rid, op, session, body[slen:], tuple(dims), binary=True
        )
        return True

    def _handle_request(self, conn: _Conn, line: bytes) -> None:
        try:
            message = parse_line(line)
        except NetError as error:
            self._write(conn, error_reply(None, error))
            return
        rid = message.get("id")
        if isinstance(rid, (dict, list)):
            self._write(conn, error_reply(
                None, "request id must be a JSON scalar"
            ))
            return
        op = message.get("op")
        if op == "ping":
            self._write(conn, {"id": rid, "ok": True, "type": "pong"})
            return
        if self._draining:
            self._write(conn, error_reply(
                rid, "server is draining for shutdown; no new work accepted"
            ))
            return
        if op == "stats":
            dead = self._dead_workers()
            if dead:
                self._write(conn, error_reply(
                    rid, f"worker process(es) {dead} died; stats cannot "
                    "aggregate every worker"
                ))
                return
            if not self._admit(conn, rid):
                return
            token = self._stats_prefix + str(next(self._stats_seq))
            self._aggregates[token] = (conn.id, rid, [])
            self._stats_owed[token] = set(range(self.workers))
            for q in self._worker_queues:
                q.put(("stats", token))
            return
        if op in SESSION_OPS:
            session = message.get("session")
            payload = shape = None
            merge = None
            if op in _PUSH_OPS:
                field = "frame" if op == "push" else "frames"
                try:
                    payload, shape = frame_payload_bytes(message.get(field))
                except NetError as error:
                    self._write(conn, error_reply(rid, error))
                    return
            elif op == "open":
                # v2 negotiation rides the open handshake: the grant is
                # effective immediately (binary frames may follow before
                # the open reply returns) and acknowledged with
                # "protocol": 2 in the reply.
                want = message.get("protocol")
                if (
                    isinstance(want, int)
                    and want >= 2
                    and self.max_protocol >= 2
                ):
                    conn.protocol = 2
                    merge = {"protocol": 2}
            self._dispatch(
                conn, rid, op, session, payload,
                tuple(shape) if shape else (), merge=merge,
            )
            return
        self._write(conn, error_reply(
            rid, f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        ))

    def _dispatch(
        self,
        conn: _Conn,
        rid: Any,
        op: str,
        session: Any,
        payload: bytes | None,
        shape: tuple[int, ...],
        *,
        binary: bool = False,
        merge: dict | None = None,
    ) -> None:
        """Admission + transport for one session op (event-loop thread)."""
        if not isinstance(session, str) or not session:
            self._write(conn, error_reply(
                rid, f"op {op!r} needs a non-empty string session id"
            ))
            return
        session_bytes = session.encode("utf-8")
        if len(session) > _MAX_SESSION_ID or len(session_bytes) > _MAX_SESSION_ID:
            self._write(conn, error_reply(
                rid, f"session id exceeds {_MAX_SESSION_ID} characters"
            ))
            return
        if len(shape) > MAX_BIN_NDIM:
            self._write(conn, error_reply(
                rid, f"frame shape {list(shape)} has more than "
                f"{MAX_BIN_NDIM} dims"
            ))
            return
        worker = route_session(session, self.workers)
        if not self._procs[worker].is_alive():
            self._write(conn, error_reply(
                rid, f"worker process {worker} died; session "
                f"{session!r} and its carried state are lost"
            ))
            return
        if (conn.id, rid) in self._by_rid:
            # Reply matching is by id: a duplicate in-flight id would
            # overwrite the tracking entry and leak an admission slot
            # when its reply is mistaken for a reaped duplicate.
            self._write(conn, error_reply(
                rid, f"request id {rid!r} is already in flight on "
                "this connection; ids must be unique until answered"
            ))
            return
        rings = self._rings[worker] if self._rings else None
        if rings is not None and (
            rings.requests.free_slots() < 1
            or (op in _PUSH_OPS
                and self._ring_results[worker] >= rings.nslots)
        ):
            # The worker's ring is saturated: same contract as the
            # per-connection cap — the frame was NOT applied, resend.
            self._write(conn, {
                "id": rid, "ok": False, "type": "busy",
                "limit": self.queue_limit,
            })
            return
        if not self._admit(conn, rid):
            return
        ticket = next(self._ticket_seq)
        self._inflight_reqs[ticket] = (conn.id, rid, worker, binary, merge, op)
        self._by_rid[(conn.id, rid)] = ticket
        if rings is not None and op in _PUSH_OPS:
            self._ring_results[worker] += 1
        opcode = _WIRE_OPS[op]
        if rings is not None:
            external = (
                payload is not None
                and len(payload) > rings.requests.payload_capacity
            )
            if external:
                # Payload first, ring entry second: by the time the
                # worker sees the flagged entry the bytes are already in
                # (or ahead in) its queue — order within the session is
                # the ring's.
                self._worker_queues[worker].put(("payload", payload))
            rings.requests.try_push(
                opcode, ticket, shape, None if external else payload,
                session=session_bytes, external=external,
            )
            if rings.ring_kick(responses=False):
                self._worker_queues[worker].put(("kick",))
        else:
            self._worker_queues[worker].put(
                ("req", ticket, opcode, session, payload,
                 list(shape) if shape else None)
            )

    def _admit(self, conn: _Conn, rid: Any) -> bool:
        """Bounded per-connection admission: full queue means ``busy``."""
        if conn.pending >= self.queue_limit:
            self._write(conn, {
                "id": rid,
                "ok": False,
                "type": "busy",
                "limit": self.queue_limit,
            })
            return False
        conn.pending += 1
        self._inflight += 1
        return True

    def _dead_workers(self) -> list[int]:
        return [
            index for index, proc in enumerate(self._procs)
            if not proc.is_alive()
        ]

    async def _reap_loop(self) -> None:
        """Periodically fail requests owed by workers that died."""
        try:
            while True:
                await asyncio.sleep(0.5)
                self._reap_dead_workers()
        except asyncio.CancelledError:
            pass

    def _reap_dead_workers(self) -> None:
        """Resolve dispatched requests whose worker can no longer reply.

        Without this, a worker crash after dispatch would leak the
        connection's admission slot and ``_inflight`` forever — busy
        frames for the rest of the connection's life and a full
        ``drain_timeout_s`` stall on every close.
        """
        dead = set(self._dead_workers())
        if not dead:
            return
        for token, owed in list(self._stats_owed.items()):
            if not (owed & dead):
                continue
            self._stats_owed.pop(token, None)
            aggregate = self._aggregates.pop(token, None)
            if aggregate is None:
                continue
            conn_id, rid, _parts = aggregate
            self._finish(conn_id, rid, _net_error(
                f"worker process(es) {sorted(owed & dead)} died during "
                "stats aggregation"
            ))
        for ticket, info in list(self._inflight_reqs.items()):
            if info[2] not in dead:
                continue
            self._inflight_reqs.pop(ticket, None)
            conn = self._settle(info)
            if conn is not None:
                self._write(conn, {"id": info[1], **_net_error(
                    f"worker process {info[2]} died with the request in "
                    "flight; its sessions' carried state is lost"
                )})
        # A dead worker emits nothing further: whatever its holdback
        # gap was waiting on will never arrive, and every late reply
        # maps to an already-reaped ticket.  Drop the buffer.
        for index in dead:
            if index < len(self._emit_holdback):
                self._emit_holdback[index].clear()

    # -- worker reply paths (event-loop thread) ------------------------
    def _drain_responses(self, worker: int) -> None:
        """A response-ring doorbell fired: clear the kick, drain the ring."""
        rings = self._rings[worker] if worker < len(self._rings) else None
        if rings is None:
            return
        rings.clear_kick(responses=True)
        ring = rings.responses
        while True:
            try:
                entry = ring.peek()
            except RingError as error:
                # A torn slot means the worker died mid-publish (or the
                # segment is corrupt); stop trusting this ring — the
                # reaper fails the affected requests.
                print(f"repro.net: worker {worker}: {error}", file=sys.stderr)
                return
            if entry is None:
                return
            item = ("ring", entry.op, entry.seq_no,
                    bytes(entry.payload), entry.shape, entry.ticket)
            ring.advance()
            self._deliver_ordered(worker, entry.emit_seq, item)

    def _deliver_queued(self, worker: int, key: Any, emit_seq: Any,
                        payload: dict) -> None:
        """A queue reply arrived (stats token or ticketed dict)."""
        if isinstance(key, str):
            self._deliver_stats(key, payload)
            return
        if emit_seq is None:
            self._deliver_item(("dict", key, payload))
            return
        self._deliver_ordered(worker, emit_seq, ("dict", key, payload))

    def _deliver_ordered(self, worker: int, emit_seq: int,
                         item: tuple) -> None:
        """Restore the worker's emission order across ring + queue paths."""
        holdback = self._emit_holdback[worker]
        holdback[emit_seq] = item
        while self._emit_expected[worker] in holdback:
            next_item = holdback.pop(self._emit_expected[worker])
            self._emit_expected[worker] += 1
            self._deliver_item(next_item)

    def _deliver_item(self, item: tuple) -> None:
        if item[0] == "ring":
            _, opcode, seq_no, payload, shape, ticket = item
            info = self._inflight_reqs.pop(ticket, None)
            if info is None:
                return  # reaped: the client already has its error
            conn = self._settle(info)
            if conn is None:
                return
            self._write_result(conn, info, seq_no, payload, list(shape))
            return
        _, ticket, payload = item
        info = self._inflight_reqs.pop(ticket, None)
        if info is None:
            return
        conn = self._settle(info)
        if conn is None:
            return
        raw = payload.pop("raw", None)
        if raw is not None:
            self._write_result(conn, info, payload.get("seq", 0), *raw)
            return
        merge = info[4]
        if merge:
            payload = {**payload, **merge}
        self._write(conn, {"id": info[1], **payload})

    def _write_result(self, conn: _Conn, info: tuple, seq_no: int,
                      payload: bytes, shape: list[int]) -> None:
        """One push/push_many result, framed to mirror its request."""
        _conn_id, rid, _worker, binary, _merge, op = info
        if binary:
            opcode = BIN_RESULT if op == "push" else BIN_RESULT_MANY
            try:
                conn.writer.write(build_binary_frame(
                    opcode, rid, shape, payload, seq=seq_no
                ))
            except Exception:  # repro: ignore[REP005] connection torn down mid-write; the reader path cleans up
                pass
            return
        self._write(conn, {
            "id": rid, "ok": True, "type": op, "seq": seq_no,
            "logits": {
                "dtype": "<f8",
                "shape": shape,
                "b64": base64.b64encode(payload).decode("ascii"),
            },
        })

    def _deliver_stats(self, token: str, payload: dict) -> None:
        aggregate = self._aggregates.get(token)
        if aggregate is None:
            return  # already failed by the reaper
        conn_id, rid, parts = aggregate
        owed = self._stats_owed.get(token)
        if owed is not None:
            owed.discard(payload.get("worker"))
        parts.append(payload)
        if len(parts) < self.workers:
            return
        del self._aggregates[token]
        self._stats_owed.pop(token, None)
        parts.sort(key=lambda part: part.get("worker", 0))
        self._finish(conn_id, rid,
                     {"ok": True, "type": "stats", "workers": parts})

    def _settle(self, info: tuple) -> _Conn | None:
        """Release one ticketed request's accounting; None if conn gone."""
        conn_id, rid, worker, _binary, _merge, op = info
        self._by_rid.pop((conn_id, rid), None)
        if self._rings and op in _PUSH_OPS and worker < len(self._ring_results):
            self._ring_results[worker] -= 1
        self._inflight -= 1
        conn = self._conns.get(conn_id)
        if conn is None:
            return None  # client went away; the frame still ran
        conn.pending -= 1
        return conn

    def _finish(self, conn_id: int, rid: Any, payload: dict) -> None:
        """Settle one stats-style request: accounting, then the reply."""
        self._inflight -= 1
        conn = self._conns.get(conn_id)
        if conn is None:
            return  # client went away
        conn.pending -= 1
        self._write(conn, {"id": rid, **payload})

    def _write(self, conn: _Conn, message: dict) -> None:
        try:
            conn.writer.write(dump_line(message))
        except Exception:  # repro: ignore[REP005] connection torn down mid-write; the reader path cleans up
            pass
