"""``repro.runtime.net`` — serving over the wire, sharded across cores.

The network front-end over the PR-4 runtime stack: a stdlib-asyncio,
newline-delimited-JSON TCP server (:class:`NetServer`) whose parent
process owns only the protocol, with all model math in ``--workers N``
worker processes — each loads the compiled ``.npz`` artifact and runs
its own micro-batching :class:`repro.runtime.Server`.  Named streaming
sessions route to a worker by stable hash of the session id, so carried
recurrent state stays worker-local across pushes, connections and
reconnects.  A matching blocking stdlib client (:class:`Client` /
:class:`NetSession`) completes the loop.

Since PR 7 the hot payload path can negotiate **protocol v2** per
connection: ``push``/``push_many`` payloads travel as length-prefixed
binary frames instead of base64 JSON, and parent↔worker payloads ride
per-worker shared-memory slot rings instead of pickled pipes
(``transport="shm"``).  Control traffic — and every v1 client — stays
NDJSON, byte-for-byte unchanged.

The invariant carries through from the in-process layers: logits served
over the wire are **byte-identical** to a standalone
:class:`repro.runtime.Session` on the same stream, for both backends —
enforced by ``tests/runtime/test_netserver.py``, the ``netserver`` bench
suite, and ``repro serve --port ... --selftest``.

PR 8 makes the server self-healing: the parent supervises its workers
(process sentinels + heartbeats), fails a dead worker's in-flight
requests with structured **retryable** error frames, and respawns the
worker from the artifact under a restart budget; sessions gain an
idle TTL, a per-worker cap with LRU shedding, and ``sessions`` /
``evict`` / ``health`` admin ops.  :class:`NetSession` auto-reattaches
through worker deaths and dropped connections by replaying its journal
— byte-identical output, or exactly one structured retryable error.
Deterministic fault injection lives in :mod:`repro.runtime.net.faults`.

See ``docs/runtime.md`` ("Serving over the network" and "Failure model
& supervision") for the wire protocol specification and operational
notes.
"""

from repro.runtime.net.client import Client, NetSession
from repro.runtime.net.faults import FaultInjector, FaultSpec, parse_fault
from repro.runtime.net.protocol import (
    MAX_PROTOCOL,
    PROTOCOL_VERSION,
    BusyError,
    ConnectionLostError,
    NetError,
    RetryableError,
    UnknownSessionError,
    decode_array,
    encode_array,
)
from repro.runtime.net.server import NetServer, route_session

__all__ = [
    "NetServer",
    "Client",
    "NetSession",
    "NetError",
    "BusyError",
    "RetryableError",
    "ConnectionLostError",
    "UnknownSessionError",
    "FaultSpec",
    "FaultInjector",
    "parse_fault",
    "PROTOCOL_VERSION",
    "MAX_PROTOCOL",
    "route_session",
    "encode_array",
    "decode_array",
]
