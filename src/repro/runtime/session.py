"""Stateful frame-by-frame streaming over a compiled model.

A :class:`Session` carries the recurrent hidden/cell state between frames,
which is what per-frame deployment (the paper's latency numbers are
per-frame) actually looks like: features arrive one frame at a time and
posteriors must come back before the next frame.

The defining invariant — enforced by ``tests/runtime`` — is that pushing
``T`` frames one by one produces *byte-identical* logits to the one-shot
batched :meth:`repro.runtime.CompiledModel.run` on the same ``(T, B, D)``
stack.  Batch width is fixed at session creation because the fixed-point
backend fits its data-dependent formats per frame *across* the batch
(hardware semantics): a width-4 stream is one stream of width-4 frames,
not four independent streams.  Independent streams multiplex through
:class:`repro.runtime.Server` instead.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.runtime.coerce import coerce_frame, coerce_stream
from repro.runtime.workloads import WORKLOAD_REGISTRY, run_driver

__all__ = ["Session"]


class Session:
    """A streaming handle: ``push(frame) -> logits`` with carried state.

    Sessions are cheap (state only — weights live on the shared executor)
    and single-threaded: use one session per caller; concurrent callers
    each open their own (or go through a :class:`~repro.runtime.Server`).

    The op surface beyond ``push`` is owned by the compiled model's
    *workload* (:mod:`repro.runtime.workloads`): an ``lm`` artifact adds
    :meth:`generate` and :meth:`score`, which drive the same executor
    ``step`` path as ``push`` — one one-hot row per token.
    """

    def __init__(self, compiled: Any, batch_size: int = 1):
        if batch_size < 1:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        self._compiled = compiled
        self._executor = compiled.executor()
        # getattr with the asr default keeps duck-typed compiled stand-ins
        # (tests, custom wrappers) working: frame scoring needs no info.
        self._workload = getattr(compiled, "workload_info", None) or (
            WORKLOAD_REGISTRY.get("asr")
        )
        self._batch = batch_size
        self._state = self._executor.initial_state(batch_size)
        self._frames = 0

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self._batch

    @property
    def frames_pushed(self) -> int:
        """Frames consumed since creation or the last :meth:`reset`."""
        return self._frames

    @property
    def compiled(self) -> Any:
        return self._compiled

    # ------------------------------------------------------------------
    def push(self, frame: np.ndarray) -> np.ndarray:
        """Advance one frame; returns that frame's logits.

        ``frame`` is ``(B, D)`` — or, for width-1 sessions, a bare ``(D,)``
        vector, in which case a ``(C,)`` vector comes back.  The returned
        logits are byte-identical to row ``t`` of ``run()`` over the full
        stream (the streaming ≡ batched invariant).
        """
        frame, squeeze = coerce_frame(
            frame, self._batch, self._executor.input_size
        )
        logits, self._state = self._executor.step(frame, self._state)
        self._frames += 1
        return logits[0] if squeeze else logits

    def run(self, frames: np.ndarray) -> np.ndarray:
        """Push a ``(T, B, D)`` stack through the session, frame by frame.

        Unlike :meth:`CompiledModel.run` this *advances the session*: it is
        literally ``T`` pushes, returned stacked — handy for feeding a
        stream in chunks.
        """
        frames = coerce_stream(frames, self._executor.input_size)
        out = np.empty(
            (frames.shape[0], self._batch, self._executor.num_classes)
        )
        for t in range(frames.shape[0]):
            out[t] = self.push(frames[t])
        return out

    # ------------------------------------------------------------------
    # Workload ops (token-based sessions).
    # ------------------------------------------------------------------
    def _step_row(self, row: np.ndarray) -> np.ndarray:
        logits, self._state = self._executor.step(row[None, :], self._state)
        self._frames += 1
        return logits[0]

    def _run_op(self, op: str, params: dict) -> dict:
        if self._batch != 1:
            raise ConfigError(
                f"{op} drives this session's own row stream and needs a "
                f"batch_size=1 session, not width {self._batch}"
            )
        driver = self._workload.make_driver(
            op, vocab_size=self._executor.input_size, params=params
        )
        return run_driver(driver, self._step_row)

    def generate(
        self,
        prompt,
        steps: int = 32,
        *,
        temperature: float = 1.0,
        top_k: int = 0,
        seed: int = 0,
    ) -> list[int]:
        """Sample ``steps`` tokens autoregressively after ``prompt``.

        Deterministic: the same compiled model, prompt, and sampling knobs
        yield the same tokens on every backend, transport, and process —
        the served byte-gate of :mod:`repro.lm.sampling`.  Advances the
        session by ``len(prompt) + steps - 1`` rows (the final sampled
        token is returned but not fed), so generation composes: a
        follow-up call with ``prompt=[tokens[-1]]`` continues the stream.
        """
        return self._run_op(
            "generate",
            {
                "prompt": prompt,
                "steps": steps,
                "temperature": temperature,
                "top_k": top_k,
                "seed": seed,
            },
        )["tokens"]

    def score(self, tokens) -> np.ndarray:
        """Per-token log-probs: ``(K-1,)`` float64 for ``tokens[1:]``.

        Feeds ``tokens[:-1]`` (advancing the session by ``K-1`` rows); to
        score a long text in chunks, overlap consecutive chunks by one
        token.
        """
        return self._run_op("score", {"tokens": tokens})["logprobs"]

    def reset(self) -> "Session":
        """Zero the carried state, as between utterances.  Returns self."""
        self._state = self._executor.initial_state(self._batch)
        self._frames = 0
        return self
