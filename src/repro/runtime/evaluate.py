"""Dataset-level evaluation through the unified runtime.

The accuracy metrics (corpus PER, framewise accuracy) used to live on a
private forward loop inside :mod:`repro.asr.pipeline` that only the float
nn graph could serve.  Routing them through :class:`CompiledModel` keeps
one forward implementation for *every* backend: the same call measures the
float model or the fixed-point CU emulation (``backend="fixed"``), which is
how the paper's Sec. VII-D quantization-degradation numbers are meant to be
read — the PER of the hardware computation, not of a float stand-in.

Byte-compatibility: for a raw :class:`~repro.nn.rnn.StackedRNNClassifier`
the float backend replays the exact op sequence of ``model(features)``, so
every PER and trial log produced through here matches the legacy pipeline
path bit for bit (test-enforced).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "as_compiled",
    "evaluate_per",
    "evaluate_frame_accuracy",
    "evaluate_perplexity",
]


def as_compiled(model: Any, backend: str = "float", **options: Any) -> Any:
    """Coerce a model (or pass through a :class:`CompiledModel`) for eval.

    Raw models are compiled *uncached*: experiment sweeps evaluate many
    throwaway models (Phase-I trials, per-bit-width quantized copies), and
    pinning each one's full weight snapshot in the process-wide engine LRU
    would trade real memory for warmth nothing comes back for.  Callers
    that evaluate the same weights repeatedly should compile once and pass
    the :class:`CompiledModel` — the artifact amortizes across calls.
    """
    from repro.runtime.model import CompiledModel, compile

    if isinstance(model, CompiledModel):
        return model
    options.setdefault("cache", False)
    return compile(model, backend=backend, **options)


def _iter_eval_batches(dataset: Any, batch_size: int):
    """Deterministic evaluation batching (length-bucketed, unshuffled)."""
    from repro.nn.data import iterate_batches

    yield from iterate_batches(
        dataset.features,
        dataset.frame_labels,
        batch_size,
        rng=None,
        bucket_by_length=True,
    )


def _score_batch(
    compiled: Any, decoder: Any, phone_set: Any, batch: Any
) -> tuple[list[list[str]], list[list[str]]]:
    """Forward + decode one batch → (hypotheses, references).

    Runs through ``CompiledModel.run`` — stateless per batch and
    thread-safe, so the worker pool needs no grad-mode bookkeeping.
    """
    from repro.asr.decoder import collapse_repeats

    logits = compiled.run(batch.features)
    hypotheses = decoder.decode_batch(logits, batch.lengths)
    references = []
    for b, length in enumerate(batch.lengths):
        frame_refs = batch.labels[:length, b]
        tokens = collapse_repeats(list(frame_refs))
        phones = phone_set.decode(tokens)
        references.append(decoder.reference(phones))
    return hypotheses, references


def _score_batch_net(
    client: Any, decoder: Any, phone_set: Any, batch: Any, passes: Any
) -> tuple[list[list[str]], list[list[str]]]:
    """Forward one batch utterance-by-utterance over the wire + decode.

    Each utterance streams through its own width-1 net session
    (``push_many`` of its frames), because the served wire path *is*
    width-1: a fixed-backend :class:`CompiledModel` couples quantization
    format fitting to the batch it sees, so width-B batched logits are
    legitimately different bytes from the same utterance served alone.
    Scoring the transport therefore compares against the in-process
    ``batch_size=1`` path — that equality is exact and test-pinned.
    """
    import numpy as np

    from repro.asr.decoder import collapse_repeats

    hypotheses = []
    references = []
    for b, length in enumerate(batch.lengths):
        features = np.ascontiguousarray(batch.features[:length, b, :])
        session = client.session(f"per-eval-{next(passes)}", reattach=True)
        try:
            logits = session.push_many(features)
        finally:
            session.close()
        hypotheses.extend(
            decoder.decode_batch(logits[:, None, :], [length])
        )
        frame_refs = batch.labels[:length, b]
        tokens = collapse_repeats(list(frame_refs))
        phones = phone_set.decode(tokens)
        references.append(decoder.reference(phones))
    return hypotheses, references


def evaluate_per(
    model: Any,
    dataset: Any,
    decoder: Any = None,
    batch_size: int = 8,
    workers: int | None = None,
    transport: str = "inprocess",
    address: tuple[str, int] | None = None,
) -> float:
    """Corpus phone error rate (percent) — the paper's accuracy metric.

    ``model`` is a :class:`~repro.runtime.CompiledModel` or a raw
    :class:`~repro.nn.rnn.StackedRNNClassifier` (compiled to the float
    backend on the fly).  Iteration order is deterministic
    (length-bucketed, no shuffling), and the hypothesis/reference pairing
    is re-derived from each decoded batch's frame labels, so PER is exact
    regardless of bucketing.

    ``workers`` > 1 scores batches through a thread pool (the forward
    pass is numpy-heavy and releases the GIL in BLAS/FFT); results are
    gathered in batch order, so the returned PER is identical to the
    serial path.

    ``transport="net"`` scores the *served* math: every utterance streams
    through a :class:`repro.runtime.net.Client` session — against
    ``address`` (a running NetServer or cluster gateway) when given,
    otherwise against an ephemeral single-worker NetServer spun up for
    the call — so the PER measured is the one deployment produces, wire
    framing, session routing and all.  Equality with the in-process
    ``batch_size=1`` PER is test-pinned (``tests/runtime/
    test_evaluate.py``); width-B in-process batching may differ on the
    fixed backend, where quantization format fitting is batch-coupled.
    """
    from repro.asr.decoder import FrameDecoder
    from repro.asr.metrics import corpus_error_rate

    if transport not in ("inprocess", "net"):
        from repro.errors import ConfigError

        raise ConfigError(
            f"transport must be 'inprocess' or 'net', got {transport!r}"
        )
    if transport == "net":
        return _evaluate_per_net(
            model, dataset, decoder, batch_size, address
        )
    compiled = as_compiled(model)
    if decoder is None:
        decoder = FrameDecoder(dataset.phone_set)
    if workers is not None and workers > 1:
        from repro.core.parallel import map_ordered

        scored = map_ordered(
            lambda batch: _score_batch(
                compiled, decoder, dataset.phone_set, batch
            ),
            _iter_eval_batches(dataset, batch_size),
            mode="thread",
            workers=workers,
        )
    else:
        scored = (
            _score_batch(compiled, decoder, dataset.phone_set, batch)
            for batch in _iter_eval_batches(dataset, batch_size)
        )
    references: list[list[str]] = []
    hypotheses: list[list[str]] = []
    for hyps, refs in scored:
        hypotheses.extend(hyps)
        references.extend(refs)
    return corpus_error_rate(references, hypotheses)


def _evaluate_per_net(
    model: Any,
    dataset: Any,
    decoder: Any,
    batch_size: int,
    address: tuple[str, int] | None,
) -> float:
    """The served-PER path: score every utterance over real sockets."""
    import itertools

    from repro.asr.decoder import FrameDecoder
    from repro.asr.metrics import corpus_error_rate
    from repro.runtime.net import Client

    if decoder is None:
        decoder = FrameDecoder(dataset.phone_set)
    passes = itertools.count()

    def score_through(client: Any) -> float:
        references: list[list[str]] = []
        hypotheses: list[list[str]] = []
        # The in-process batches only bucket iteration order here — each
        # utterance is served width-1 regardless, so PER matches the
        # in-process batch_size=1 result bit for bit.
        for batch in _iter_eval_batches(dataset, batch_size):
            hyps, refs = _score_batch_net(
                client, decoder, dataset.phone_set, batch, passes
            )
            hypotheses.extend(hyps)
            references.extend(refs)
        return corpus_error_rate(references, hypotheses)

    if address is not None:
        client = Client(*address)
        try:
            return score_through(client)
        finally:
            client.close()
    from repro.runtime.net import NetServer

    compiled = as_compiled(model)
    with NetServer(compiled, workers=1) as server:
        client = Client(*server.address)
        try:
            return score_through(client)
        finally:
            client.close()


def evaluate_perplexity(
    model: Any,
    tokens: Any,
    chunk_size: int = 128,
    transport: str = "inprocess",
    address: tuple[str, int] | None = None,
) -> float:
    """Corpus perplexity of an LM artifact — the paper-style LM metric.

    ``model`` is an ``lm``-workload :class:`~repro.runtime.CompiledModel`
    (or a raw char-LM :class:`~repro.nn.rnn.StackedRNNClassifier`,
    compiled to the float backend on the fly); ``tokens`` is the
    evaluation token stream.  The stream is scored through one session in
    ``chunk_size``-target chunks that overlap by one token, so the
    carried state makes the result exactly the full-sequence score:
    ``exp(-mean(log p(tokens[1:])))``.

    ``transport="net"`` scores the *served* math over a
    :class:`repro.runtime.net.Client` session — against ``address`` (a
    NetServer or cluster gateway) when given, else an ephemeral
    single-worker NetServer — and is pinned byte-equal to the in-process
    path for both backends (``tests/runtime/test_evaluate.py``).
    """
    import numpy as np

    from repro.errors import ConfigError
    from repro.runtime.coerce import coerce_tokens

    if transport not in ("inprocess", "net"):
        raise ConfigError(
            f"transport must be 'inprocess' or 'net', got {transport!r}"
        )
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be positive, got {chunk_size}")

    from repro.runtime.model import CompiledModel

    if isinstance(model, CompiledModel):
        compiled = model
    else:
        compiled = as_compiled(model, workload="lm")
    if "score" not in compiled.workload_info.ops:
        raise ConfigError(
            f"workload {compiled.workload!r} has no score op; compile with "
            "workload='lm'"
        )
    tokens = coerce_tokens(tokens, compiled.input_size, min_len=2)

    def score_session(session: Any) -> float:
        logprobs: list[np.ndarray] = []
        start = 0
        while start + 1 < tokens.shape[0]:
            piece = tokens[start : start + chunk_size + 1]
            logprobs.append(np.asarray(session.score(piece)))
            start += chunk_size
        stacked = np.concatenate(logprobs)
        return float(np.exp(-np.mean(stacked)))

    if transport == "inprocess":
        return score_session(compiled.session())

    from repro.runtime.net import Client

    def score_through(client: Any) -> float:
        session = client.session("perplexity-eval", reattach=True)
        try:
            return score_session(session)
        finally:
            session.close()

    if address is not None:
        client = Client(*address)
        try:
            return score_through(client)
        finally:
            client.close()
    from repro.runtime.net import NetServer

    with NetServer(compiled, workers=1) as server:
        client = Client(*server.address)
        try:
            return score_through(client)
        finally:
            client.close()


def evaluate_frame_accuracy(
    model: Any,
    dataset: Any,
    batch_size: int = 8,
) -> float:
    """Framewise classification accuracy (diagnostic, not a paper metric)."""
    from repro.nn.loss import frame_accuracy

    compiled = as_compiled(model)
    total_correct = 0.0
    total_frames = 0
    for batch in _iter_eval_batches(dataset, batch_size):
        logits = compiled.run(batch.features)
        frames = batch.num_frames
        total_correct += frame_accuracy(logits, batch.labels, batch.mask) * frames
        total_frames += frames
    return total_correct / total_frames
