"""``repro.runtime`` — the unified inference layer: compile → session → serve.

The build side of the library (``repro.api``) produces a compressed,
quantized design; this package is where that design *runs*.  One coherent
subsystem replaces the three historical ad-hoc inference surfaces
(``StackedRNNClassifier.__call__``, ``CUEmulator.forward``, the private
forward loop of ``asr.pipeline``):

* :func:`compile` — snapshot a trained model (or a spec/``Design``) into an
  immutable, serializable :class:`CompiledModel`; fingerprint-memoized
  through the build :class:`~repro.api.engine.Engine` and persistable as a
  schema-versioned ``.npz``.
* :data:`BACKEND_REGISTRY` — pluggable execution backends (``"float"`` nn
  graph, ``"fixed"`` CU emulator), extensible with
  :func:`register_backend` and held to a byte-level conformance contract
  (:func:`check_conformance`).
* :meth:`CompiledModel.session` — stateful frame-by-frame streaming,
  byte-identical to the one-shot batched :meth:`CompiledModel.run`.
* :class:`Server` — a thread-based micro-batching scheduler that coalesces
  concurrent session pushes into batched backend calls without perturbing
  any stream's bytes (the row-isolation contract).
* :mod:`repro.runtime.net` — the process boundary: an NDJSON/TCP network
  front-end sharding the same stack across worker processes (stable-hash
  session routing, explicit ``busy`` backpressure, draining shutdown),
  with a blocking stdlib client.  Imported lazily — ``repro.runtime``
  itself stays dependency-light.
* :func:`evaluate_per` / :func:`evaluate_frame_accuracy` — dataset metrics
  routed through ``CompiledModel``, so the same call scores the float
  model or the fixed-point hardware emulation.

See ``docs/runtime.md`` for the walkthrough.
"""

from repro.runtime.backends import (
    BACKEND_REGISTRY,
    BackendInfo,
    ConformanceError,
    Executor,
    check_conformance,
    register_backend,
)
from repro.runtime.coerce import coerce_frame, coerce_stream, coerce_tokens
from repro.runtime.evaluate import (
    as_compiled,
    evaluate_frame_accuracy,
    evaluate_per,
    evaluate_perplexity,
)
from repro.runtime.model import (
    CompiledModel,
    LMMeta,
    RuntimeMeta,
    compile,
    compile_model,
)
from repro.runtime.server import Server, ServerSession, ServerStats
from repro.runtime.session import Session
from repro.runtime.workloads import (
    WORKLOAD_REGISTRY,
    WorkloadInfo,
    register_workload,
)

__all__ = [
    "compile",
    "compile_model",
    "CompiledModel",
    "RuntimeMeta",
    "LMMeta",
    "WorkloadInfo",
    "WORKLOAD_REGISTRY",
    "register_workload",
    "Session",
    "Server",
    "ServerSession",
    "ServerStats",
    "Executor",
    "BackendInfo",
    "BACKEND_REGISTRY",
    "register_backend",
    "check_conformance",
    "ConformanceError",
    "as_compiled",
    "coerce_frame",
    "coerce_stream",
    "coerce_tokens",
    "evaluate_per",
    "evaluate_frame_accuracy",
    "evaluate_perplexity",
]
