"""E-RNN: Design Optimization for Efficient Recurrent Neural Networks in FPGAs.

A full Python reproduction of Li, Ding, Wang et al. (HPCA 2019): the
block-circulant + ADMM compression framework, the two-phase design
optimization, the FPGA hardware models, the HLS flow, and the ESE / C-LSTM
baselines — evaluated end to end on a synthetic TIMIT-like ASR task.

Quick start::

    from repro import RNNSpec, AccelSpec
    from repro.hw import AcceleratorModel

    spec = RNNSpec("lstm", 153, (1024,), 39,
                   block_sizes=(8,), peephole=True, projection_size=512)
    design = AcceleratorModel(spec, AccelSpec("XCKU060")).build()
    print(design.latency_us, design.fps)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import AccelSpec, RNNSpec, is_power_of_two, validate_block_size
from repro.core import (
    ADMMConfig,
    ADMMTrainer,
    BlockCirculantMatrix,
    ERNNFramework,
    ERNNResult,
    PhaseIConfig,
    PhaseIIConfig,
    PhaseIIOptimizer,
    PhaseIIResult,
    PhaseIOptimizer,
    PhaseIResult,
)
from repro.errors import (
    BlockSizeError,
    ConfigError,
    DecodingError,
    FitError,
    QuantizationError,
    ReproError,
    SchedulingError,
    ShapeError,
    TrainingError,
)

__version__ = "1.0.0"

__all__ = [
    "AccelSpec",
    "RNNSpec",
    "is_power_of_two",
    "validate_block_size",
    "ADMMConfig",
    "ADMMTrainer",
    "BlockCirculantMatrix",
    "ERNNFramework",
    "ERNNResult",
    "PhaseIConfig",
    "PhaseIIConfig",
    "PhaseIIOptimizer",
    "PhaseIIResult",
    "PhaseIOptimizer",
    "PhaseIResult",
    "BlockSizeError",
    "ConfigError",
    "DecodingError",
    "FitError",
    "QuantizationError",
    "ReproError",
    "SchedulingError",
    "ShapeError",
    "TrainingError",
    "__version__",
]
