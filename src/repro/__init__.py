"""E-RNN: Design Optimization for Efficient Recurrent Neural Networks in FPGAs.

A full Python reproduction of Li, Ding, Wang et al. (HPCA 2019): the
block-circulant + ADMM compression framework, the two-phase design
optimization, the FPGA hardware models, the HLS flow, and the ESE / C-LSTM
baselines — evaluated end to end on a synthetic TIMIT-like ASR task.

Quick start — the :mod:`repro.api` facade covers the whole flow::

    from repro.api import Design

    design = (Design.lstm(1024).blocks(8).peephole().project(512)
                    .on("XCKU060").bits(12))
    print(design.fit_check().describe())   # Phase-I BRAM sanity check
    print(design.bounds().describe())      # Phase-I block-size search range
    priced = design.price()                # Phase-II sizing (cached)
    print(priced.latency_us, priced.fps)
    design.codegen("ernn_cu.c")            # the HLS flow, C source out

Deployment — the :mod:`repro.runtime` layer runs what the build side
produces, over pluggable backends (float nn graph, fixed-point CU
emulation)::

    from repro import runtime

    compiled = runtime.compile(model, backend="fixed", weight_bits=12)
    logits = compiled.run(features)         # batched (T, B, D) -> (T, B, C)
    session = compiled.session()            # streaming, byte-identical
    with compiled.serve() as server:        # micro-batched concurrent serving
        posteriors = server.session().push(frame)

The frozen spec types (:class:`RNNSpec`, :class:`AccelSpec`) remain the
interchange values underneath; ``Design`` compiles to them via
``.specs()``.  See README.md for the tour, docs/runtime.md for the serving
walkthrough, ROADMAP.md for where the system is heading, and PAPER.md for
the source paper's abstract.
"""

from repro.config import AccelSpec, RNNSpec, is_power_of_two, validate_block_size
from repro.core import (
    ADMMConfig,
    ADMMTrainer,
    BlockCirculantMatrix,
    ERNNFramework,
    ERNNResult,
    PhaseIConfig,
    PhaseIIConfig,
    PhaseIIOptimizer,
    PhaseIIResult,
    PhaseIOptimizer,
    PhaseIResult,
    run_two_phase_flow,
)
from repro.errors import (
    BlockSizeError,
    ConfigError,
    DecodingError,
    FitError,
    QuantizationError,
    RegistryError,
    ReproError,
    SchedulingError,
    ShapeError,
    TrainingError,
)

# The facade import sits after core/config on purpose: repro.api.design pulls
# in the hw/hls stacks, whose modules lean on repro.core already being fully
# initialized (the long-standing accelerator <-> core.compression cycle).
from repro.api import (
    ACTIVATION_REGISTRY,
    CELL_REGISTRY,
    PLATFORM_REGISTRY,
    Design,
    Engine,
    default_engine,
    register_activation,
    register_cell,
    register_platform,
)

# The runtime sits on top of nn/hw/asr and must import after them.
from repro.runtime import (
    BACKEND_REGISTRY,
    CompiledModel,
    Server,
    Session,
    compile_model,
    register_backend,
)
from repro import runtime

__version__ = "1.2.0"

__all__ = [
    "Design",
    "Engine",
    "default_engine",
    "runtime",
    "compile_model",
    "CompiledModel",
    "Session",
    "Server",
    "BACKEND_REGISTRY",
    "register_backend",
    "PLATFORM_REGISTRY",
    "CELL_REGISTRY",
    "ACTIVATION_REGISTRY",
    "register_platform",
    "register_cell",
    "register_activation",
    "AccelSpec",
    "RNNSpec",
    "is_power_of_two",
    "validate_block_size",
    "ADMMConfig",
    "ADMMTrainer",
    "BlockCirculantMatrix",
    "ERNNFramework",
    "ERNNResult",
    "PhaseIConfig",
    "PhaseIIConfig",
    "PhaseIIOptimizer",
    "PhaseIIResult",
    "PhaseIOptimizer",
    "PhaseIResult",
    "run_two_phase_flow",
    "BlockSizeError",
    "ConfigError",
    "DecodingError",
    "FitError",
    "QuantizationError",
    "RegistryError",
    "ReproError",
    "SchedulingError",
    "ShapeError",
    "TrainingError",
    "__version__",
]
