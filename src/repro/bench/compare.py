"""Noise-aware comparison of two committed bench artifacts.

The ``BENCH_*.json`` trajectory was write-only: every PR appended
numbers, nothing ever *read* them.  :func:`compare_files` turns the
trajectory into a regression gate — ``repro bench --compare OLD.json
NEW.json`` exits nonzero when NEW is slower than OLD beyond a noise
threshold, and CI runs it against the committed files.

Honesty rules, in order of precedence:

* **Different conditions never produce a timing verdict.**  A ``--quick``
  run against a full run (CI's situation: the committed trajectory is a
  full run, the CI artifact is quick), or runs from machines with
  different CPU counts, compare *structurally only* — every suite,
  timing and metric present in OLD must still exist in NEW — with a note
  saying why the clocks were not judged.  A gate that compared a
  1-repeat quick run against a 3-repeat full run would mostly measure
  the flag.
* **A vanished measurement is a regression.**  Deleting a metric is how
  a perf gate rots silently; missing keys fail the comparison even when
  every surviving number improved.
* **Tiny timings are noise.**  Medians under ``MIN_COMPARABLE_S`` are
  reported but never gated — at that scale the threshold would gate
  scheduler jitter.

Metric direction is inferred from the repo's naming convention (

``*_ms``/``*_us``/``*_s``/``*_per_kill`` are lower-is-better;
``*_fps``/``*speedup*`` are higher-is-better; anything else — counts,
configuration echoes, notes — is compared for presence only).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError

__all__ = [
    "Delta",
    "ComparisonReport",
    "compare_results",
    "compare_files",
    "DEFAULT_TIMING_THRESHOLD",
    "DEFAULT_METRIC_THRESHOLD",
    "MIN_COMPARABLE_S",
]

#: Allowed relative slowdown of a timing median before it gates.
#: Wall-clock medians of 3 repeats on shared CI runners wobble by tens
#: of percent; 30% catches a real regression (the PR 3/PR 7 wins were
#: 2-5x) without paging on scheduler weather.
DEFAULT_TIMING_THRESHOLD = 0.30

#: Allowed relative worsening of a *derived* metric (fps, p50_ms, ...).
DEFAULT_METRIC_THRESHOLD = 0.35

#: Timing medians under this are not gated — pure noise at that scale.
MIN_COMPARABLE_S = 1e-4

_LOWER_SUFFIXES = ("_ms", "_us", "_ns", "_s", "_per_kill")
_HIGHER_SUFFIXES = ("_fps",)
_HIGHER_MARKERS = ("speedup",)


def _direction(name: str) -> str | None:
    """'lower' / 'higher' when the metric name declares a direction."""
    if any(marker in name for marker in _HIGHER_MARKERS):
        return "higher"
    if name.endswith(_HIGHER_SUFFIXES):
        return "higher"
    if name.endswith(_LOWER_SUFFIXES):
        return "lower"
    return None


def _is_number(value: Any) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


@dataclass
class Delta:
    """One compared quantity: a timing median or a directional metric."""

    name: str
    kind: str  # regression | improvement | ok | missing | note
    old: Any = None
    new: Any = None
    ratio: float | None = None  # new/old
    message: str = ""

    @property
    def gating(self) -> bool:
        """Does this delta fail the gate?"""
        return self.kind in ("regression", "missing")


@dataclass
class ComparisonReport:
    suite: str
    deltas: list[Delta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    timings_judged: bool = True

    @property
    def regressions(self) -> list[Delta]:
        return [delta for delta in self.deltas if delta.gating]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [f"bench compare: suite {self.suite!r}"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        order = {"regression": 0, "missing": 0, "improvement": 1,
                 "note": 2, "ok": 3}
        for delta in sorted(self.deltas,
                            key=lambda d: (order.get(d.kind, 9), d.name)):
            if delta.kind == "ok":
                continue
            ratio = (f" ({delta.ratio:.2f}x)"
                     if delta.ratio is not None else "")
            lines.append(
                f"  {delta.kind.upper():<11} {delta.name}: "
                f"{delta.old} -> {delta.new}{ratio} {delta.message}".rstrip()
            )
        gated = len(self.regressions)
        judged = sum(1 for d in self.deltas if d.kind != "note")
        verdict = "FAIL" if gated else "PASS"
        lines.append(
            f"  {verdict}: {gated} regression(s) across {judged} compared "
            f"quantities"
            + ("" if self.timings_judged else " (timings not judged)")
        )
        return "\n".join(lines)


def _load(path: str | Path) -> dict:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"bench artifact {path} does not exist") from None
    except ValueError as error:
        raise ConfigError(f"bench artifact {path} is not JSON: {error}") from None
    if not isinstance(data, dict) or "name" not in data:
        raise ConfigError(
            f"bench artifact {path} has no 'name' — not a BENCH_*.json?"
        )
    return data


def compare_results(
    old: dict,
    new: dict,
    *,
    timing_threshold: float = DEFAULT_TIMING_THRESHOLD,
    metric_threshold: float = DEFAULT_METRIC_THRESHOLD,
) -> ComparisonReport:
    """Compare two loaded bench results (``old`` is the baseline)."""
    if old.get("name") != new.get("name"):
        raise ConfigError(
            f"cannot compare suite {old.get('name')!r} against "
            f"{new.get('name')!r}; compare like against like"
        )
    report = ComparisonReport(suite=str(old.get("name")))

    judge_timings = True
    if bool(old.get("quick")) != bool(new.get("quick")):
        judge_timings = False
        report.notes.append(
            "quick flags differ (old=%s new=%s): structural checks only — "
            "quick and full runs measure different repeat counts"
            % (bool(old.get("quick")), bool(new.get("quick")))
        )
    old_cpus = (old.get("environment") or {}).get("cpus")
    new_cpus = (new.get("environment") or {}).get("cpus")
    if old_cpus != new_cpus:
        judge_timings = False
        report.notes.append(
            f"environments differ (cpus {old_cpus} vs {new_cpus}): "
            "structural checks only — wall clocks from different machines "
            "are not comparable"
        )
    report.timings_judged = judge_timings

    old_timings = old.get("timings") or {}
    new_timings = new.get("timings") or {}
    for name, entry in sorted(old_timings.items()):
        if name not in new_timings:
            report.deltas.append(Delta(
                name=f"timings.{name}", kind="missing",
                old=entry.get("median_s"),
                message="— timing dropped from the new artifact",
            ))
            continue
        old_median = entry.get("median_s")
        new_median = new_timings[name].get("median_s")
        if not (_is_number(old_median) and _is_number(new_median)):
            continue
        ratio = new_median / old_median if old_median else None
        delta = Delta(name=f"timings.{name}", old=round(old_median, 6),
                      new=round(new_median, 6), ratio=ratio, kind="ok")
        if not judge_timings:
            delta.kind = "note"
            delta.message = "(not judged)"
        elif old_median < MIN_COMPARABLE_S:
            delta.kind = "note"
            delta.message = (
                f"(under {MIN_COMPARABLE_S:g}s — noise floor, not judged)"
            )
        elif ratio is not None and ratio > 1.0 + timing_threshold:
            delta.kind = "regression"
            delta.message = f"— slower beyond the {timing_threshold:.0%} gate"
        elif ratio is not None and ratio < 1.0 - timing_threshold:
            delta.kind = "improvement"
        report.deltas.append(delta)

    old_metrics = old.get("metrics") or {}
    new_metrics = new.get("metrics") or {}
    for name, old_value in sorted(old_metrics.items()):
        if name not in new_metrics:
            report.deltas.append(Delta(
                name=f"metrics.{name}", kind="missing", old=old_value,
                message="— metric dropped from the new artifact",
            ))
            continue
        new_value = new_metrics[name]
        direction = _direction(name)
        if (direction is not None
                and _is_number(old_value) != _is_number(new_value)):
            # A directional metric flipped between a number and null.
            # That is the cpu-gating convention at work (a metric recorded
            # on a capable box, re-recorded on one that cannot support the
            # measurement, or vice versa) — structural presence is
            # satisfied, so it informs rather than gates.
            report.deltas.append(Delta(
                name=f"metrics.{name}", kind="note",
                old=old_value, new=new_value,
                message=(
                    "— measurability changed (number vs null; cpu-gated "
                    "metrics do this across machines) — presence "
                    "satisfied, not judged"
                ),
            ))
            continue
        if direction is None or not (_is_number(old_value)
                                     and _is_number(new_value)):
            continue  # configuration echo, note, or null: presence suffices
        ratio = new_value / old_value if old_value else None
        delta = Delta(name=f"metrics.{name}", old=old_value, new=new_value,
                      ratio=ratio, kind="ok")
        if not judge_timings:
            delta.kind = "note"
            delta.message = "(not judged)"
        elif ratio is not None:
            worse = (ratio > 1.0 + metric_threshold if direction == "lower"
                     else ratio < 1.0 / (1.0 + metric_threshold))
            better = (ratio < 1.0 - metric_threshold if direction == "lower"
                      else ratio > 1.0 + metric_threshold)
            if worse:
                delta.kind = "regression"
                delta.message = (
                    f"— {direction}-is-better metric worsened beyond the "
                    f"{metric_threshold:.0%} gate"
                )
            elif better:
                delta.kind = "improvement"
        report.deltas.append(delta)

    for name in sorted(set(new_metrics) - set(old_metrics)):
        report.deltas.append(Delta(
            name=f"metrics.{name}", kind="note", new=new_metrics[name],
            message="— new metric (no baseline)",
        ))
    return report


def compare_files(
    old_path: str | Path,
    new_path: str | Path,
    **thresholds: float,
) -> ComparisonReport:
    """Compare two ``BENCH_*.json`` files; ``old_path`` is the baseline."""
    return compare_results(_load(old_path), _load(new_path), **thresholds)
