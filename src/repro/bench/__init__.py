"""Unified benchmark harness: one timing core, one artifact format.

Every performance claim in this repo should be reproducible from one
command (``repro bench``) and comparable across PRs from one artifact
format (``BENCH_<name>.json``).  This package provides:

* :func:`time_callable` — the shared timing core (warmup, repeats,
  median), replacing the ad-hoc ``perf_counter`` pairs the
  ``benchmarks/bench_*.py`` scripts used to roll individually;
* :func:`register` / :func:`run_benchmarks` — a registry of named
  benchmark suites (see :mod:`repro.bench.suites`), each returning a
  :class:`BenchResult`;
* :func:`write_result` — the canonical ``BENCH_<name>.json`` writer.

Reading the artifacts: ``metrics`` holds the headline numbers (speedups,
sizes), ``timings`` the raw samples behind them.  Compare the ``median_s``
of like-named timings across commits to track the perf trajectory; the
committed artifacts at the repo root are the trajectory.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Callable

from repro.errors import ConfigError

__all__ = [
    "TimingStats",
    "BenchResult",
    "time_callable",
    "register",
    "benchmark_names",
    "run_benchmarks",
    "write_result",
    "environment_info",
]


@dataclass(frozen=True)
class TimingStats:
    """Samples from repeated timing of one callable."""

    warmup: int
    repeats: int
    times_s: tuple[float, ...]

    @property
    def median_s(self) -> float:
        return float(median(self.times_s))

    @property
    def best_s(self) -> float:
        return float(min(self.times_s))

    @property
    def mean_s(self) -> float:
        return float(sum(self.times_s) / len(self.times_s))

    def to_json(self) -> dict:
        return {
            "warmup": self.warmup,
            "repeats": self.repeats,
            "times_s": list(self.times_s),
            "median_s": self.median_s,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
        }


def time_callable(
    fn: Callable[[], object],
    warmup: int = 1,
    repeats: int = 5,
    setup: Callable[[], object] | None = None,
) -> TimingStats:
    """Time ``fn`` with ``warmup`` untimed calls then ``repeats`` samples.

    ``setup`` (optional) runs before *every* call, warmup and timed, outside
    the timed region — cache-clearing hooks use it to measure cold paths.
    """
    if warmup < 0 or repeats < 1:
        raise ConfigError(
            f"need warmup >= 0 and repeats >= 1, got {warmup}/{repeats}"
        )
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    times = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return TimingStats(warmup=warmup, repeats=repeats, times_s=tuple(times))


@dataclass
class BenchResult:
    """One suite's outcome: headline metrics plus the raw timings."""

    name: str
    metrics: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)  # label -> TimingStats
    notes: str = ""
    quick: bool = False

    def add_timing(self, label: str, stats: TimingStats) -> TimingStats:
        self.timings[label] = stats
        return stats

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "quick": self.quick,
            "notes": self.notes,
            "metrics": dict(self.metrics),
            "timings": {
                label: stats.to_json() for label, stats in self.timings.items()
            },
            "environment": environment_info(),
            "created_unix": time.time(),
        }

    def describe(self) -> str:
        lines = [f"[{self.name}]" + (" (quick)" if self.quick else "")]
        for label, stats in self.timings.items():
            lines.append(
                f"  {label:28s} median {stats.median_s * 1e3:10.3f} ms "
                f"(best {stats.best_s * 1e3:.3f} ms, n={stats.repeats})"
            )
        for key, value in self.metrics.items():
            if isinstance(value, float):
                lines.append(f"  {key:28s} {value:.4g}")
            else:
                lines.append(f"  {key:28s} {value}")
        return "\n".join(lines)


def environment_info() -> dict:
    import os

    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[bool], BenchResult]] = {}


def register(name: str):
    """Decorator: add a ``fn(quick: bool) -> BenchResult`` suite."""

    def wrap(fn: Callable[[bool], BenchResult]):
        if name in _REGISTRY:
            raise ConfigError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return wrap


def benchmark_names() -> tuple[str, ...]:
    _load_suites()
    return tuple(sorted(_REGISTRY))


def _load_suites() -> None:
    from repro.bench import suites  # noqa: F401  (registration side effect)


def run_benchmarks(
    names: list[str] | None = None, quick: bool = False
) -> list[BenchResult]:
    """Run the named suites (default: all) in name order."""
    _load_suites()
    selected = list(names) if names else sorted(_REGISTRY)
    unknown = [name for name in selected if name not in _REGISTRY]
    if unknown:
        raise ConfigError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(_REGISTRY))}"
        )
    return [_REGISTRY[name](quick) for name in selected]


def write_result(result: BenchResult, out_dir: Path | str = ".") -> Path:
    """Write ``BENCH_<name>.json`` (stable key order) and return the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{result.name}.json"
    path.write_text(json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n")
    return path
