"""Built-in benchmark suites behind ``repro bench``.

Each suite times an optimized hot path against its reproducible baseline
(the frozen seed implementations in :mod:`repro.bench.baselines`, a cold
cache, or the serial execution mode) and asserts the outputs agree before
reporting a speedup — a benchmark that got fast by computing something
else is a bug, not a result.

Sizes: the default configuration of ``emulator_forward`` is the paper's
TIMIT LSTM (1024 cells, 512 projection, peephole, block 8) over T=300
frames at batch 8; ``--quick`` shrinks every suite to smoke-test scale
(seconds, for CI) while keeping the assertions.
"""

from __future__ import annotations

import numpy as np

from repro.bench import BenchResult, environment_info, register, time_callable
from repro.bench.baselines import (
    seed_circulant_matvec,
    seed_emulator_forward,
    seed_matvec,
)

__all__: list[str] = []


def _speedup(result: BenchResult, name: str, slow: str, fast: str) -> None:
    result.metrics[name] = round(
        result.timings[slow].median_s / result.timings[fast].median_s, 2
    )


# ----------------------------------------------------------------------
@register("emulator_forward")
def bench_emulator_forward(quick: bool) -> BenchResult:
    """Batched CU emulation vs the per-frame oracle vs the seed emulator."""
    from repro.config import RNNSpec
    from repro.hw.emulator import CUEmulator
    from repro.nn.rnn import StackedRNNClassifier

    if quick:
        spec = RNNSpec(
            cell_type="lstm", layer_sizes=(128,), block_sizes=(8,),
            input_size=39, output_size=10,
        )
        frames, batch, repeats = 40, 4, 2
    else:
        # Paper Table I: 1024-cell LSTM, 512 projection, peephole, block 8.
        spec = RNNSpec(
            cell_type="lstm", layer_sizes=(1024,), block_sizes=(8,),
            input_size=153, output_size=39,
            peephole=True, projection_size=512,
        )
        frames, batch, repeats = 300, 8, 3

    model = StackedRNNClassifier(spec, structured=True, rng=np.random.default_rng(0))
    emulator = CUEmulator(model, weight_bits=12)
    x = np.random.default_rng(1).standard_normal((frames, batch, spec.input_size))

    batched = emulator.forward(x)
    reference = emulator.forward_reference(x)
    seed = seed_emulator_forward(emulator, x)
    assert np.array_equal(batched, reference), "batched != per-frame oracle"
    assert np.array_equal(batched, seed), "optimized path != seed algorithm"

    result = BenchResult(
        "emulator_forward",
        quick=quick,
        notes=(
            f"{spec.describe()} over T={frames}, B={batch}; outputs of all "
            "three paths asserted byte-identical before timing"
        ),
        metrics={
            "frames": frames,
            "batch": batch,
            "layers": list(spec.layer_sizes),
            "weight_bits": 12,
        },
    )
    result.add_timing(
        "seed_per_frame_einsum",
        time_callable(lambda: seed_emulator_forward(emulator, x),
                      warmup=0 if quick else 1, repeats=repeats),
    )
    result.add_timing(
        "per_frame_reference",
        time_callable(lambda: emulator.forward_reference(x),
                      warmup=1, repeats=repeats),
    )
    result.add_timing(
        "batched",
        time_callable(lambda: emulator.forward(x), warmup=1, repeats=repeats),
    )
    _speedup(result, "speedup_vs_seed", "seed_per_frame_einsum", "batched")
    _speedup(result, "speedup_vs_per_frame", "per_frame_reference", "batched")
    return result


# ----------------------------------------------------------------------
@register("fft_matvec")
def bench_fft_matvec(quick: bool) -> BenchResult:
    """Plan-cached fixed-point circulant products vs cold and seed paths."""
    from repro.hw import fft_fixed
    from repro.hw.fft_fixed import clear_plan_cache, fixed_point_circulant_matvec

    size = 16
    repeats = 20 if quick else 100
    rng = np.random.default_rng(7)
    w, x = rng.uniform(-1, 1, size), rng.uniform(-1, 1, size)

    clear_plan_cache()
    cold_out = fixed_point_circulant_matvec(w, x, 12)
    warm_out = fixed_point_circulant_matvec(w, x, 12)
    seed_out = seed_circulant_matvec(w, x, 12)
    assert np.array_equal(cold_out, warm_out), "plan-cached != cold"
    assert np.array_equal(cold_out, seed_out), "optimized != seed algorithm"

    def clear_all() -> None:
        clear_plan_cache()
        fft_fixed._SPECTRUM_CACHE.clear()

    result = BenchResult(
        "fft_matvec",
        quick=quick,
        notes=(
            f"fixed_point_circulant_matvec size={size} bits=12; cold clears "
            "the plan and weight-spectrum caches before every call; outputs "
            "asserted byte-identical across seed/cold/warm"
        ),
        metrics={"size": size, "bits": 12},
    )
    result.add_timing(
        "seed_uncached",
        time_callable(lambda: seed_circulant_matvec(w, x, 12),
                      warmup=2, repeats=repeats),
    )
    result.add_timing(
        "cold_plan_rebuild",
        time_callable(lambda: fixed_point_circulant_matvec(w, x, 12),
                      warmup=2, repeats=repeats, setup=clear_all),
    )
    result.add_timing(
        "warm_repeat_call",
        time_callable(lambda: fixed_point_circulant_matvec(w, x, 12),
                      warmup=2, repeats=repeats),
    )
    _speedup(result, "repeat_call_speedup_vs_seed", "seed_uncached",
             "warm_repeat_call")
    _speedup(result, "warm_vs_cold", "cold_plan_rebuild", "warm_repeat_call")
    return result


# ----------------------------------------------------------------------
@register("spectral_matvec")
def bench_spectral_matvec(quick: bool) -> BenchResult:
    """The GEMM spectral MAC vs the seed einsum MAC on one weight matrix."""
    from repro.hw.emulator import SpectralWeights
    from repro.nn.circulant_layer import CirculantLinear

    in_features, out_features, block = (64, 256, 8) if quick else (512, 4096, 8)
    repeats = 20 if quick else 50
    rng = np.random.default_rng(5)
    layer = CirculantLinear(
        in_features, out_features, block_size=block, bias=False, rng=rng
    )
    weights = SpectralWeights.from_layer(layer, bits=12)
    x = rng.standard_normal((8, in_features))

    new = weights.matvec(x, 12)
    lean = weights.matvec_step(x, 12)
    old = seed_matvec(weights, x, 12)
    assert np.array_equal(new, lean) and np.array_equal(new, old)

    result = BenchResult(
        "spectral_matvec",
        quick=quick,
        notes=(
            f"one {out_features}x{in_features} block-{block} spectral "
            "product at batch 8, all variants byte-identical"
        ),
        metrics={"in": in_features, "out": out_features, "block": block},
    )
    result.add_timing(
        "seed_einsum",
        time_callable(lambda: seed_matvec(weights, x, 12), repeats=repeats),
    )
    result.add_timing(
        "gemm_matvec",
        time_callable(lambda: weights.matvec(x, 12), repeats=repeats),
    )
    result.add_timing(
        "gemm_matvec_step",
        time_callable(lambda: weights.matvec_step(x, 12), repeats=repeats),
    )
    _speedup(result, "speedup_vs_seed", "seed_einsum", "gemm_matvec_step")
    return result


# ----------------------------------------------------------------------
@register("engine_cache")
def bench_engine_cache(quick: bool) -> BenchResult:
    """Cold vs cached design builds through one :class:`repro.api.Engine`."""
    from repro.api import Design, Engine

    blocks = (8, 16) if quick else (8, 16, 32, 64)
    designs = []
    for platform in ("XCKU060", "ADM-PCIE-7V3"):
        for block in blocks:
            designs.append(
                Design.lstm(1024).blocks(block).peephole().project(512)
                .on(platform)
            )
            designs.append(Design.gru(1024).blocks(block).on(platform))

    def sweep(engine: Engine) -> None:
        for design in designs:
            design.using(engine).price()
            design.using(engine).codegen()

    engine = Engine(maxsize=64)
    result = BenchResult(
        "engine_cache",
        quick=quick,
        notes=f"{len(designs)}-design price+codegen sweep, cold then cached",
        metrics={"designs": len(designs)},
    )
    result.add_timing("cold_build", time_callable(lambda: sweep(engine),
                                                  warmup=0, repeats=1))
    result.add_timing("cached_build", time_callable(lambda: sweep(engine),
                                                    warmup=1,
                                                    repeats=3 if quick else 5))
    _speedup(result, "speedup", "cold_build", "cached_build")
    result.metrics["engine_stats"] = engine.stats().describe()
    return result


# ----------------------------------------------------------------------
@register("quantize_state")
def bench_quantize_state(quick: bool) -> BenchResult:
    """Format-fit caching across a quantization sweep's bit widths."""
    from repro.config import RNNSpec
    from repro.hw.quantize import FitStatsCache, quantize_state
    from repro.nn.rnn import StackedRNNClassifier

    layers = (64,) if quick else (512, 512)
    spec = RNNSpec(
        cell_type="lstm", layer_sizes=layers,
        block_sizes=tuple(8 for _ in layers),
        input_size=39, output_size=10,
    )
    model = StackedRNNClassifier(spec, structured=True,
                                 rng=np.random.default_rng(0))
    state = model.state_dict()
    bits_list = (16, 14, 12, 10, 8, 6)

    def uncached() -> list:
        return [quantize_state(state, bits)[0] for bits in bits_list]

    def cached() -> list:
        fit_cache = FitStatsCache()
        return [quantize_state(state, bits, fit_cache)[0] for bits in bits_list]

    for got, want in zip(cached(), uncached()):
        for name in want:
            assert np.array_equal(got[name], want[name])

    result = BenchResult(
        "quantize_state",
        quick=quick,
        notes=(
            f"{len(state)}-parameter state dict quantized at "
            f"{len(bits_list)} bit widths; cached == uncached asserted"
        ),
        metrics={"parameters": len(state), "bit_widths": len(bits_list)},
    )
    repeats = 3 if quick else 10
    result.add_timing("refit_every_width",
                      time_callable(uncached, repeats=repeats))
    result.add_timing("stats_cache",
                      time_callable(cached, repeats=repeats))
    _speedup(result, "speedup", "refit_every_width", "stats_cache")
    return result


# ----------------------------------------------------------------------
@register("per_eval")
def bench_per_eval(quick: bool) -> BenchResult:
    """Serial vs threaded batch PER evaluation on a synthetic corpus."""
    from repro.asr.features import FeatureConfig, FeatureExtractor
    from repro.asr.phones import PhoneSet
    from repro.asr.pipeline import prepare_dataset
    from repro.runtime import evaluate_per
    from repro.asr.timit import CorpusConfig, SyntheticTIMIT
    from repro.config import RNNSpec
    from repro.nn.rnn import StackedRNNClassifier

    phones = PhoneSet.folded().subset(8)
    corpus = SyntheticTIMIT(
        CorpusConfig(
            phone_set=phones,
            num_speakers=2 if quick else 6,
            utterances_per_speaker=4,
            test_speakers=1,
            sample_rate=8000,
            phones_per_utterance=(3, 5) if quick else (6, 9),
            seed=11,
        )
    )
    extractor = FeatureExtractor(FeatureConfig(sample_rate=8000))
    extractor.fit_normalizer(corpus.train)
    dataset = prepare_dataset(corpus.train, extractor, phones)
    spec = RNNSpec(
        cell_type="lstm", layer_sizes=(64,), block_sizes=(4,),
        input_size=dataset.feature_dim, output_size=len(phones),
    )
    model = StackedRNNClassifier(spec, structured=True,
                                 rng=np.random.default_rng(0))

    serial_per = evaluate_per(model, dataset, batch_size=4)
    parallel_per = evaluate_per(model, dataset, batch_size=4, workers=4)
    assert serial_per == parallel_per, "workers changed the PER"

    result = BenchResult(
        "per_eval",
        quick=quick,
        notes=(
            f"{dataset.num_utterances}-utterance synthetic corpus; serial "
            "and 4-worker PER asserted equal (thread workers only pay off "
            "with more than one CPU — see environment.cpus)"
        ),
        metrics={"utterances": dataset.num_utterances, "per": serial_per},
    )
    repeats = 2 if quick else 3
    result.add_timing(
        "serial",
        time_callable(lambda: evaluate_per(model, dataset, batch_size=4),
                      repeats=repeats),
    )
    result.add_timing(
        "threads_4",
        time_callable(
            lambda: evaluate_per(model, dataset, batch_size=4, workers=4),
            repeats=repeats,
        ),
    )
    _speedup(result, "speedup", "serial", "threads_4")
    return result


# ----------------------------------------------------------------------
@register("runtime_session")
def bench_runtime_session(quick: bool) -> BenchResult:
    """Streaming vs batched vs micro-batched serving on the fixed backend.

    Three ways to push the same frames through the CU emulation:

    * ``single_session_per_frame`` — one width-1 :class:`repro.runtime.Session`
      pushing frame by frame (the deployment latency path, and the
      baseline the acceptance bar is measured against);
    * ``batched_run`` — one hoisted ``CompiledModel.run`` over a
      width-``S`` stream (the offline evaluation path);
    * ``server_microbatched`` — ``S`` concurrent width-1 sessions through
      the micro-batching :class:`repro.runtime.Server`, one client thread
      each.

    Before timing, every path is asserted byte-identical to its contract:
    streaming ≡ batched ≡ ``CUEmulator.forward_reference``, and each
    served stream ≡ its standalone session.  ``speedup_microbatch``
    is (server total frames/s) / (single-session frames/s).
    """
    import threading

    from repro.config import RNNSpec
    from repro.nn.rnn import StackedRNNClassifier
    from repro.runtime import compile as compile_model

    if quick:
        hidden, sessions, frames, repeats = 64, 8, 16, 2
    else:
        # The reproduction's TIMIT LSTM scale (paper's 1024 / 16 = 64),
        # served to 16 concurrent callers.
        hidden, sessions, frames, repeats = 64, 16, 60, 3
    spec = RNNSpec(
        cell_type="lstm", layer_sizes=(hidden,), block_sizes=(8,),
        input_size=39, output_size=39,
    )
    model = StackedRNNClassifier(
        spec, structured=True, rng=np.random.default_rng(0)
    )
    compiled = compile_model(model, backend="fixed", weight_bits=12)
    streams = np.random.default_rng(1).standard_normal(
        (sessions, frames, spec.input_size)
    )
    stacked = np.ascontiguousarray(streams.transpose(1, 0, 2))  # (T, S, D)

    # -- byte-identity gates (a fast serving path that computes something
    # else is a bug, not a result) -------------------------------------
    batched = compiled.run(stacked)
    session = compiled.session(batch_size=sessions)
    streamed = np.stack([session.push(stacked[t]) for t in range(frames)])
    assert np.array_equal(streamed, batched), "streaming != batched run"
    reference = compiled.executor().emulator.forward_reference(stacked)
    assert np.array_equal(batched, reference), "runtime != per-frame oracle"

    single_outputs = [
        np.stack([sess.push(frame) for frame in streams[s]])
        for s, sess in (
            (s, compiled.session()) for s in range(sessions)
        )
    ]

    def serve_all(check: bool = False) -> None:
        with compiled.serve(max_batch=sessions, max_delay_s=0.005) as server:
            failures: list[str] = []

            def client(index: int) -> None:
                with server.session() as served:
                    out = np.stack(
                        [served.push(frame) for frame in streams[index]]
                    )
                if check and not np.array_equal(out, single_outputs[index]):
                    failures.append(f"stream {index}")

            threads = [
                threading.Thread(target=client, args=(s,))
                for s in range(sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, f"served bytes differ: {failures}"

    serve_all(check=True)  # row-isolation contract, end to end

    result = BenchResult(
        "runtime_session",
        quick=quick,
        notes=(
            f"LSTM-{hidden} block 8 fixed backend; {sessions} streams x "
            f"{frames} frames; streaming/batched/served outputs asserted "
            "byte-identical before timing"
        ),
        metrics={
            "hidden": hidden,
            "sessions": sessions,
            "frames_per_stream": frames,
            "weight_bits": 12,
        },
    )

    def single_session_loop() -> None:
        sess = compiled.session()
        for frame in streams[0]:
            sess.push(frame)

    result.add_timing(
        "single_session_per_frame",
        time_callable(single_session_loop, warmup=1, repeats=repeats),
    )
    result.add_timing(
        "batched_run",
        time_callable(lambda: compiled.run(stacked), warmup=1, repeats=repeats),
    )
    result.add_timing(
        "server_microbatched",
        time_callable(serve_all, warmup=1, repeats=repeats),
    )

    single_fps = frames / result.timings["single_session_per_frame"].median_s
    server_fps = (
        sessions * frames / result.timings["server_microbatched"].median_s
    )
    batched_fps = sessions * frames / result.timings["batched_run"].median_s
    result.metrics["single_session_fps"] = round(single_fps, 1)
    result.metrics["server_fps"] = round(server_fps, 1)
    result.metrics["batched_fps"] = round(batched_fps, 1)
    result.metrics["speedup_microbatch"] = round(server_fps / single_fps, 2)
    return result


# ----------------------------------------------------------------------
def _scaling_peak(
    cpus: int | None,
    worker_counts: tuple[int, ...] | list[int],
    fps: dict[int, float],
) -> tuple[float | None, str | None]:
    """``scaling_peak_vs_1w`` — or ``None`` when the box cannot show it.

    Worker processes buy throughput by running numpy on more cores; on a
    machine with fewer CPUs than the largest worker count the ratio
    measures scheduler contention, not scaling, so recording a number
    would be actively misleading (a 1-CPU container once recorded a
    straight-faced ``1.0``).  Returns ``(ratio, None)`` when measurable,
    ``(None, reason)`` when not.
    """
    largest = max(worker_counts)
    if cpus is None or cpus < largest:
        return None, (
            f"scaling not measurable: {cpus} CPU(s) < {largest} workers; "
            "worker scaling needs at least as many cores as workers — "
            "re-record on a larger box to populate scaling_peak_vs_1w"
        )
    base = fps[worker_counts[0]]
    peak = max(fps[workers] for workers in worker_counts)
    return round(peak / base, 2), None


@register("netserver")
def bench_netserver(quick: bool) -> BenchResult:
    """Served-over-TCP throughput and latency, per worker count.

    A load generator (``clients`` blocking stdlib net clients, one thread
    each) pushes every stream frame by frame through
    :class:`repro.runtime.net.NetServer` at each worker count, recording
    the wall time (throughput) and every push's round-trip latency
    (p50/p95/p99).  Before any timing, each configuration's served logits
    are asserted byte-identical to standalone sessions — the end-to-end
    wire invariant — so a fast number can never come from wrong bytes.

    Blocking pushes measure the *deployment* path (one frame in flight
    per stream, like a live feature front-end); the micro-batching window
    inside each worker is what coalesces concurrent clients.

    ``scaling_peak_vs_1w`` is only recorded when ``environment.cpus``
    covers the largest worker count — on a smaller box the ratio would
    measure scheduler contention, not scaling, so the suite emits
    ``null`` plus a ``scaling_note`` instead.

    The wire-framing comparison (PR 7) pits the two stacks' hot paths
    against each other on one worker.  The v1 baseline reproduces the
    stack as it shipped: JSON/base64 framing, pickled-pipe transport,
    dispatcher-only scheduling (``inline_rows=False``) and — crucially —
    one push per round trip, because v1 had no batched wire op.  The v2
    side runs its negotiated hot path: binary framing, shared-memory
    rings, inline single-session rows, and ``push_many`` batching.
    ``p50_push_speedup_v2_vs_v1`` is the headline: per-frame p50 of the
    v2 hot path vs the v1 per-push p50 over the same stream.  The
    apples-to-apples single-push ratio is recorded alongside as
    ``p50_single_push_speedup_v2_vs_v1`` — on few-core boxes it hovers
    near 1.0 because a lone blocking push is bound by model compute and
    thread wakeups, not by framing; the framing and IPC savings surface
    once batching amortises the per-round-trip overhead.
    """
    import threading
    import time

    from repro.config import RNNSpec
    from repro.nn.rnn import StackedRNNClassifier
    from repro.runtime import compile as compile_model
    from repro.runtime.net import Client, NetServer

    if quick:
        hidden, clients, frames, worker_counts = 64, 4, 12, (1, 2)
    else:
        hidden, clients, frames, worker_counts = 64, 8, 50, (1, 2, 4)
    spec = RNNSpec(
        cell_type="lstm", layer_sizes=(hidden,), block_sizes=(8,),
        input_size=39, output_size=39,
    )
    model = StackedRNNClassifier(
        spec, structured=True, rng=np.random.default_rng(0)
    )
    compiled = compile_model(model, backend="fixed", weight_bits=12)
    streams = np.random.default_rng(1).standard_normal(
        (clients, frames, spec.input_size)
    )
    expected = [
        compiled.session().run(stream[:, None, :])[:, 0] for stream in streams
    ]

    result = BenchResult(
        "netserver",
        quick=quick,
        notes=(
            f"LSTM-{hidden} block 8 fixed backend served over TCP; "
            f"{clients} net clients x {frames} blocking pushes per worker "
            "count; every configuration's served bytes asserted identical "
            "to standalone sessions before timing.  Worker scaling is "
            "core-bound: judge scaling_peak_vs_1w against environment.cpus"
        ),
        metrics={
            "hidden": hidden,
            "clients": clients,
            "frames_per_client": frames,
            "worker_counts": list(worker_counts),
            "weight_bits": 12,
        },
    )

    passes = iter(range(1_000_000))  # unique session names per pass

    def run_load(server: NetServer) -> list[float]:
        """One load-generator pass against a running server; returns
        per-push round-trip latencies.  Worker spawn cost is deliberately
        *outside* every timed region — this measures serving, not boot."""
        tag = next(passes)
        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()

        def load_client(index: int) -> None:
            mine: list[float] = []
            try:
                with Client(*server.address, timeout=60) as client:
                    session = client.session(f"bench-{tag}-{index}")
                    out = []
                    for frame in streams[index]:
                        start = time.perf_counter()
                        out.append(session.push(frame))
                        mine.append(time.perf_counter() - start)
                    session.close()
                if not np.array_equal(np.stack(out), expected[index]):
                    raise AssertionError("served bytes differ")
            except Exception as error:  # noqa: BLE001
                with lock:
                    failures.append(f"client {index}: {error!r}")
                return
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=load_client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, f"netserver bench failures: {failures}"
        assert len(latencies) == clients * frames
        return latencies

    fps_by_workers: dict[int, float] = {}
    for workers in worker_counts:
        latencies_box: list[list[float]] = []
        with NetServer(
            compiled, workers=workers, queue_limit=64
        ) as server:
            stats = time_callable(
                lambda: latencies_box.append(run_load(server)),
                warmup=1,  # the warmup pass also runs the byte gate
                repeats=2 if quick else 3,
            )
        result.add_timing(f"serve_{workers}w_wall", stats)
        latencies = np.array(latencies_box[-1])
        total = clients * frames
        fps_by_workers[workers] = round(total / stats.median_s, 1)
        result.metrics[f"w{workers}_fps"] = fps_by_workers[workers]
        result.metrics[f"w{workers}_p50_ms"] = round(
            float(np.percentile(latencies, 50)) * 1e3, 3
        )
        result.metrics[f"w{workers}_p95_ms"] = round(
            float(np.percentile(latencies, 95)) * 1e3, 3
        )
        result.metrics[f"w{workers}_p99_ms"] = round(
            float(np.percentile(latencies, 99)) * 1e3, 3
        )
    peak, note = _scaling_peak(
        environment_info()["cpus"], worker_counts, fps_by_workers
    )
    result.metrics["scaling_peak_vs_1w"] = peak
    if note is not None:
        result.metrics["scaling_note"] = note

    # ------------------------------------------------------------------
    # Wire-framing comparison (PR 7): the same single-client stream over
    # (a) the v1 stack as it shipped — JSON framing + pickled-pipe
    # transport + dispatcher-only scheduling, per-push wire — and (b)
    # the v2 stack — binary framing + shared-memory rings + inline rows
    # + batched push_many.  One worker, one connection: this isolates
    # wire + IPC + scheduling overhead, which is exactly what v2 set out
    # to cut.  Byte gates run before every timed pass here too.
    # ------------------------------------------------------------------
    def wire_pass(server: NetServer, protocol: int) -> tuple[list[float], float]:
        tag = f"wire-{next(passes)}"
        latencies: list[float] = []
        with Client(*server.address, timeout=60, protocol=protocol) as client:
            session = client.session(tag)
            out = []
            for frame in streams[0]:
                start = time.perf_counter()
                out.append(session.push(frame))
                latencies.append(time.perf_counter() - start)
            if not np.array_equal(np.stack(out), expected[0]):
                raise AssertionError("served bytes differ (wire comparison)")
            session.reset()
            start = time.perf_counter()
            many = session.push_many(streams[0])
            many_s = time.perf_counter() - start
            if not np.array_equal(many, expected[0]):
                raise AssertionError("push_many bytes differ")
            session.close()
        return latencies, many_s

    wire_repeats = 2 if quick else 3
    wire_p50: dict[str, float] = {}
    for label, server_kwargs, protocol in (
        # The v1 stack as PR 6 shipped it: JSON framing, pickled pipes,
        # every row through the micro-batch dispatcher, no wire batching.
        ("v1_json_pipe",
         {"transport": "pipe", "max_protocol": 1, "inline_rows": False}, 1),
        ("v2_bin_shm", {}, 2),
    ):
        with NetServer(
            compiled, workers=1, queue_limit=64, **server_kwargs
        ) as server:
            wire_pass(server, protocol)  # warmup + byte gate
            p50s, many_times = [], []
            for _ in range(wire_repeats):
                latencies, many_s = wire_pass(server, protocol)
                p50s.append(float(np.percentile(latencies, 50)))
                many_times.append(many_s)
        wire_p50[label] = float(np.median(p50s))
        result.metrics[f"{label}_p50_us"] = round(wire_p50[label] * 1e6, 1)
        result.metrics[f"{label}_push_many_us_per_frame"] = round(
            float(np.median(many_times)) / frames * 1e6, 1
        )
    # Headline: the v2 hot path (batched binary push_many — v1 had no
    # batched op, so its hot path IS the per-push round trip) against
    # the v1 per-push p50, both in per-frame terms over the same stream.
    result.metrics["p50_push_speedup_v2_vs_v1"] = round(
        result.metrics["v1_json_pipe_p50_us"]
        / result.metrics["v2_bin_shm_push_many_us_per_frame"], 2
    )
    # Same-shape comparison (one blocking push per round trip, both
    # framings): compute- and wakeup-bound on few-core boxes, recorded
    # so the headline's batching contribution is never hidden.
    result.metrics["p50_single_push_speedup_v2_vs_v1"] = round(
        wire_p50["v1_json_pipe"] / wire_p50["v2_bin_shm"], 2
    )
    result.metrics["push_many_speedup_vs_push_v2"] = round(
        result.metrics["v2_bin_shm_p50_us"]
        / result.metrics["v2_bin_shm_push_many_us_per_frame"], 2
    )
    result.metrics["wire_note"] = (
        "v1_json_pipe reproduces the stack v1 shipped (JSON/base64 "
        "framing, pickled-pipe transport, dispatcher-only scheduling, "
        "no batched wire op); v2_bin_shm is the negotiated v2 hot path "
        "(binary frames, shared-memory rings, inline rows, push_many). "
        "p50_push_speedup_v2_vs_v1 compares per-frame p50 of each "
        "stack's hot path on the same stream"
    )

    # ------------------------------------------------------------------
    # Restart cost (PR 8): SIGKILL the worker under a live pipelined
    # stream and measure the supervisor's kill-to-replacement time
    # (polling the parent-only health op) and the client-visible damage
    # (in-flight requests failed retryable per kill).  The byte gate is
    # the point: the stream that rode through the kill must still be
    # byte-identical after reattach + journal replay.
    # ------------------------------------------------------------------
    import os
    import signal

    restart_repeats = 2 if quick else 4
    reps = 10 if quick else 16
    restart_stream = np.tile(streams[0], (reps, 1))
    restart_expected = compiled.session().run(
        restart_stream[:, None, :]
    )[:, 0]
    restart_times: list[float] = []
    failed_per_kill: list[float] = []
    for _ in range(restart_repeats):
        with NetServer(compiled, workers=1) as server:
            with Client(*server.address, timeout=60) as client:
                session = client.session(f"restart-{next(passes)}")
                runner_out: list[np.ndarray] = []
                runner_error: list[BaseException] = []

                def runner() -> None:
                    try:
                        runner_out.append(
                            session.run(restart_stream, window=8)
                        )
                    except BaseException as error:  # noqa: BLE001
                        runner_error.append(error)

                thread = threading.Thread(target=runner)
                thread.start()
                time.sleep(0.03)  # let the pipeline get airborne
                killed_at = time.perf_counter()
                os.kill(server._procs[0].pid, signal.SIGKILL)
                # health is answered by the parent alone, so polling it
                # during the outage is exactly what an operator would do.
                with Client(*server.address, timeout=60) as probe:
                    while True:
                        health = probe.health()
                        if (health["restarts_total"] >= 1
                                and health["workers"][0]["state"] == "up"):
                            restart_times.append(
                                time.perf_counter() - killed_at
                            )
                            break
                        if time.perf_counter() - killed_at > 60:
                            raise AssertionError(
                                "worker was not replaced within 60s"
                            )
                        time.sleep(0.002)
                    failed_per_kill.append(
                        float(health["retryable_errors_total"])
                    )
                thread.join(timeout=120)
                assert not thread.is_alive(), "restart bench stream hung"
                assert not runner_error, (
                    f"restart bench stream failed: {runner_error[0]!r}"
                )
                if not np.array_equal(runner_out[0], restart_expected):
                    raise AssertionError(
                        "bytes differ after supervised restart"
                    )
                session.close()
    result.metrics["restart_p50_ms"] = round(
        float(np.percentile(restart_times, 50)) * 1e3, 1
    )
    result.metrics["requests_failed_per_kill"] = round(
        float(np.mean(failed_per_kill)), 2
    )
    result.metrics["restart_note"] = (
        "restart_p50_ms is SIGKILL-to-replacement (sentinel detection + "
        "respawn + artifact load + ring resync) observed via the health "
        "op; requests_failed_per_kill counts the in-flight requests the "
        "supervisor failed with retryable frames per kill (the client "
        "reattached, replayed its journal, and the stream stayed "
        "byte-identical — asserted every repeat)"
    )
    return result


# ----------------------------------------------------------------------
@register("gateway")
def bench_gateway(quick: bool) -> BenchResult:
    """The cluster tier's added hop and its kill-under-load recovery.

    Two questions an operator asks before putting the gateway in front
    of a fleet:

    * **what does the hop cost?** — the same blocking per-frame load is
      served (a) directly by one :class:`NetServer` and (b) through a
      :class:`Gateway` fronting a two-backend fleet; ``added_hop_p50_us``
      is the per-push p50 difference.  The gateway forwards frames
      verbatim (no re-encode), so the hop should cost socket + event-loop
      time, not serialization.
    * **what does losing a node cost?** — one whole backend process is
      SIGKILLed under live reattaching streams; ``down_mark_p50_ms``
      measures kill-to-detection (unexpected-EOF signal, not probe
      timeout), and every stream that rode through the kill is asserted
      byte-identical after journal replay — the same gate the netserver
      suite pins one layer down.

    Byte gates run before every timed region: each pass's served logits
    must equal standalone sessions, so a fast number can never come from
    wrong bytes.
    """
    import threading
    import time

    from repro.config import RNNSpec
    from repro.nn.rnn import StackedRNNClassifier
    from repro.runtime import compile as compile_model
    from repro.runtime.cluster import BackendFleet, Gateway
    from repro.runtime.net import Client, NetServer

    if quick:
        clients, frames, repeats, kill_repeats = 4, 12, 2, 2
    else:
        clients, frames, repeats, kill_repeats = 6, 30, 3, 3
    spec = RNNSpec(
        cell_type="lstm", layer_sizes=(64,), block_sizes=(8,),
        input_size=39, output_size=39,
    )
    model = StackedRNNClassifier(
        spec, structured=True, rng=np.random.default_rng(0)
    )
    compiled = compile_model(model, backend="fixed", weight_bits=12)
    streams = np.random.default_rng(2).standard_normal(
        (clients, frames, spec.input_size)
    )
    expected = [
        compiled.session().run(stream[:, None, :])[:, 0] for stream in streams
    ]

    result = BenchResult(
        "gateway",
        quick=quick,
        notes=(
            f"LSTM-64 block 8 fixed backend; {clients} net clients x "
            f"{frames} blocking pushes, served direct (1 NetServer) vs "
            "through a consistent-hash gateway fronting 2 backends (1 "
            "worker each); every pass byte-gated against standalone "
            "sessions.  The kill drill SIGKILLs a whole backend under "
            "reattaching streams and times the gateway's death detection"
        ),
        metrics={
            "clients": clients,
            "frames_per_client": frames,
            "backends": 2,
            "weight_bits": 12,
        },
    )

    passes = iter(range(1_000_000))

    def load_pass(address, reattach=False):
        """One blocking per-frame load against ``address``; returns
        (per-push latencies, sessions that recovered).  Byte-gated."""
        tag = next(passes)
        latencies: list[float] = []
        failures: list[str] = []
        recoveries = [0] * clients
        lock = threading.Lock()

        def load_client(index: int) -> None:
            mine: list[float] = []
            try:
                with Client(*address, timeout=60) as client:
                    if reattach:
                        session = client.session(
                            f"gwb-{tag}-{index}", reattach=True
                        )
                    else:
                        session = client.session(f"gwb-{tag}-{index}")
                    out = []
                    for frame in streams[index]:
                        start = time.perf_counter()
                        out.append(session.push(frame))
                        mine.append(time.perf_counter() - start)
                    recoveries[index] = getattr(session, "recoveries", 0)
                    session.close()
                if not np.array_equal(np.stack(out), expected[index]):
                    raise AssertionError("served bytes differ")
            except Exception as error:  # noqa: BLE001
                with lock:
                    failures.append(f"client {index}: {error!r}")
                return
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=load_client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, f"gateway bench failures: {failures}"
        assert len(latencies) == clients * frames
        return latencies, sum(recoveries)

    # Direct baseline: the fleet's own serving stack, no hop.
    lat_box: list[list[float]] = []
    with NetServer(compiled, workers=1, queue_limit=64) as server:
        stats = time_callable(
            lambda: lat_box.append(load_pass(server.address)[0]),
            warmup=1,  # the warmup pass also runs the byte gate
            repeats=repeats,
        )
    result.add_timing("direct_wall", stats)
    result.metrics["direct_p50_us"] = round(
        float(np.percentile(lat_box[-1], 50)) * 1e6, 1
    )

    # The same load through the gateway.
    with BackendFleet(compiled, count=2, queue_limit=64) as fleet:
        with Gateway(fleet.keys) as gw:
            stats = time_callable(
                lambda: lat_box.append(load_pass(gw.address)[0]),
                warmup=1,
                repeats=repeats,
            )
    result.add_timing("gateway_wall", stats)
    result.metrics["gateway_p50_us"] = round(
        float(np.percentile(lat_box[-1], 50)) * 1e6, 1
    )
    result.metrics["gateway_fps"] = round(
        clients * frames / stats.median_s, 1
    )
    # The hop cost is a *difference* of p50s, and the two configurations
    # schedule a different number of runnable actors (the gateway's event
    # loop rides alongside the backend worker and the load clients).  On
    # a box that cannot run them concurrently the difference measures
    # scheduler contention, not the hop — same convention as the
    # netserver suite's scaling_peak_vs_1w.
    cpus = environment_info()["cpus"]
    if cpus is not None and cpus >= 2:
        result.metrics["added_hop_p50_us"] = round(
            result.metrics["gateway_p50_us"]
            - result.metrics["direct_p50_us"], 1
        )
    else:
        result.metrics["added_hop_p50_us"] = None
        result.metrics["added_hop_note"] = (
            f"hop cost not measurable: {cpus} CPU(s) cannot run the "
            "gateway event loop, the backend worker, and the load clients "
            "concurrently, so the direct-vs-gateway p50 difference would "
            "measure scheduler contention, not the hop — the raw "
            "direct_p50_us/gateway_p50_us observations are kept; "
            "re-record on a >= 2 CPU box to populate added_hop_p50_us"
        )

    # ------------------------------------------------------------------
    # Kill-under-load: SIGKILL one whole backend beneath reattaching
    # streams.  down_mark measures the gateway noticing (forwarding-link
    # EOF, not probe misses); the byte gate inside load_pass is the
    # recovery proof.
    # ------------------------------------------------------------------
    down_marks: list[float] = []
    recovered: list[int] = []
    for _ in range(kill_repeats):
        with BackendFleet(compiled, count=2, queue_limit=64) as fleet:
            with Gateway(fleet.keys, probe_interval_s=0.1,
                         down_after=2) as gw:
                box: dict = {}

                def soak() -> None:
                    box["lat"], box["rec"] = load_pass(
                        gw.address, reattach=True
                    )

                thread = threading.Thread(target=soak)
                thread.start()
                time.sleep(0.05)  # let the streams get airborne
                killed_at = time.perf_counter()
                fleet.kill(0)
                with Client(*gw.address, timeout=60) as probe:
                    while True:
                        states = {
                            b["backend"]: b["state"]
                            for b in probe.cluster_health()["backends"]
                        }
                        if states[fleet.keys[0]] == "down":
                            down_marks.append(
                                time.perf_counter() - killed_at
                            )
                            break
                        if time.perf_counter() - killed_at > 60:
                            raise AssertionError(
                                "gateway never marked the killed "
                                "backend down"
                            )
                        time.sleep(0.002)
                thread.join(timeout=120)
                assert not thread.is_alive(), "kill drill soak hung"
                assert "lat" in box, "kill drill load pass failed"
                recovered.append(box["rec"])
    result.metrics["down_mark_p50_ms"] = round(
        float(np.percentile(down_marks, 50)) * 1e3, 1
    )
    result.metrics["recoveries_mean"] = round(
        float(np.mean(recovered)), 2
    )
    result.metrics["failover_note"] = (
        "down_mark_p50_ms is SIGKILL-to-down-mark (the forwarding link's "
        "EOF is the death signal; the 0.1s prober is the fallback); "
        "recoveries_mean counts sessions that reattached and replayed "
        "per kill — every soak's streams asserted byte-identical after "
        "the failover, and a kill landing after a short soak finishes "
        "legitimately recovers zero"
    )
    return result


# ----------------------------------------------------------------------
@register("rnnlm_generate")
def bench_rnnlm_generate(quick: bool) -> BenchResult:
    """Seeded char-LM generation throughput: batch coalescing, float vs fixed.

    The second first-class workload's cost enters the trajectory here.
    A tiny char-LM is fit on the demo corpus (the training throughput is
    itself recorded — ``train_tokens_per_sec``), compiled to *both*
    backends, and sampled through the micro-batching
    :class:`repro.runtime.Server` at 1, 4 and 16 concurrent generation
    sessions.  Generation is autoregressive — each session has exactly
    one row in flight — so batch throughput comes from the server
    coalescing *different sessions'* rows into one backend call.  That is
    a vectorization win (one ``(B, D)`` product instead of ``B`` width-1
    products), measurable on any CPU count; cross-machine ratios are
    still refused by ``bench --compare``'s environment check.

    Byte gates before timing: seeded generation must reproduce itself on
    a serial re-run, and every served session's tokens must equal an
    in-process :class:`~repro.runtime.Session` with the same seed — a
    fast sampler that sampled different tokens is a bug, not a result.
    """
    import threading

    from repro.lm import (
        DEMO_TEXT,
        CharVocab,
        LMTrainConfig,
        build_char_lm,
        train_char_lm,
    )
    from repro.runtime import Session, compile as compile_model

    if quick:
        batches, steps, epochs, repeats = (1, 4), 24, 1, 2
    else:
        batches, steps, epochs, repeats = (1, 4, 16), 96, 3, 3

    vocab = CharVocab.from_text(DEMO_TEXT)
    model = build_char_lm(
        vocab.size, layer_sizes=(32,), cell_type="gru",
        block_sizes=(4,), seed=0,
    )
    history = train_char_lm(
        model, vocab.encode(DEMO_TEXT), LMTrainConfig(epochs=epochs)
    )
    prompt = [int(t) for t in vocab.encode(DEMO_TEXT[:4])]
    widest = max(batches)

    result = BenchResult(
        "rnnlm_generate",
        quick=quick,
        notes=(
            f"GRU-32 block 4 char-LM (vocab {vocab.size}) sampling "
            f"{steps} tokens per session at batch 1/4/{widest} through the "
            "micro-batching Server, float and fixed backends; every "
            "served session's tokens byte-gated against an in-process "
            "seeded session before timing.  Batch throughput is "
            "cross-session coalescing (vectorization), valid at any CPU "
            "count"
        ),
        metrics={
            "vocab": vocab.size,
            "steps_per_session": steps,
            "batch_widths": list(batches),
            "weight_bits": 12,
            "train_epochs": epochs,
            "train_tokens_per_sec": round(history.tokens_per_sec, 1),
            "train_final_loss": round(history.final_loss, 4),
        },
    )

    tokens_per_sec: dict[tuple[str, int], float] = {}
    for backend in ("float", "fixed"):
        compiled = compile_model(
            model, backend=backend, weight_bits=12,
            workload="lm", vocab=vocab,
        )
        baseline = [
            Session(compiled).generate(
                prompt, steps=steps, temperature=0.8, top_k=5, seed=1000 + i
            )
            for i in range(widest)
        ]
        rerun = Session(compiled).generate(
            prompt, steps=steps, temperature=0.8, top_k=5, seed=1000
        )
        assert rerun == baseline[0], "seeded generation not reproducible"

        with compiled.serve(max_batch=widest, max_delay_s=0.002) as server:

            def serve_pass(width: int, check: bool = False) -> None:
                failures: list[int] = []

                def generator(index: int) -> None:
                    with server.session() as session:
                        out = session.generate(
                            prompt, steps=steps,
                            temperature=0.8, top_k=5, seed=1000 + index,
                        )
                    if check and out != baseline[index]:
                        failures.append(index)

                threads = [
                    threading.Thread(target=generator, args=(index,))
                    for index in range(width)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert not failures, (
                    f"served tokens differ from in-process sessions: "
                    f"{failures}"
                )

            serve_pass(widest, check=True)  # byte gate, end to end
            for width in batches:
                stats = time_callable(
                    lambda: serve_pass(width), warmup=1, repeats=repeats
                )
                result.add_timing(f"{backend}_b{width}_generate", stats)
                tps = width * steps / stats.median_s
                tokens_per_sec[(backend, width)] = tps
                result.metrics[f"{backend}_b{width}_tokens_per_sec"] = round(
                    tps, 1
                )
        result.metrics[f"{backend}_coalescing_speedup_b{widest}"] = round(
            tokens_per_sec[(backend, widest)]
            / tokens_per_sec[(backend, 1)], 2
        )
    # Quantized generation cost: fixed-over-float throughput at batch 1.
    # A plain ratio (no direction marker): the fixed backend pays the
    # spectral fixed-point path for bit-exactness, not for speed.
    result.metrics["fixed_over_float_b1_ratio"] = round(
        tokens_per_sec[("fixed", 1)] / tokens_per_sec[("float", 1)], 3
    )
    return result
