"""Frozen pre-optimization implementations, kept as benchmark baselines.

The PR that introduced the kernel-plan layer (plan-cached fixed-point FFTs,
the GEMM spectral MAC, the batched emulator forward) replaced these code
paths in :mod:`repro.hw`.  The benchmark suites re-measure them on every
run so the speedups recorded in ``BENCH_*.json`` stay reproducible facts
about *this* machine rather than one-off numbers — and so a future
regression in the optimized paths is visible against an honest floor.

These functions are verbatim ports of the seed algorithms (einsum MAC,
per-call twiddle construction, object-API quantization); do not optimize
them.  At 12-bit quantization their outputs are byte-identical to the
optimized paths (quantized spectra make every product and partial sum
exactly representable in float64), which the suites assert.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hw.fixed_point import FixedPointFormat

__all__ = ["seed_matvec", "seed_emulator_forward", "seed_circulant_matvec"]


# ----------------------------------------------------------------------
# Seed CU emulator: per-frame loop, einsum spectral MAC.
# ----------------------------------------------------------------------

def seed_matvec(weights, x: np.ndarray, bits: int) -> np.ndarray:
    """The seed ``SpectralWeights.matvec``: einsum MAC, per-call refits."""
    block = weights.block_size
    padded_in = weights.spectra.shape[1] * block
    batch_shape = x.shape[:-1]
    x = x.reshape(-1, x.shape[-1])
    if padded_in != x.shape[-1]:
        x = np.pad(x, ((0, 0), (0, padded_in - x.shape[-1])))
    x_fmt = FixedPointFormat.fit(x if x.size else np.ones(1), bits)
    x_blocks = x_fmt.quantize(x).reshape(x.shape[0], -1, block)

    x_spec = np.fft.rfft(x_blocks, axis=-1)
    spec_parts = np.concatenate([x_spec.real.ravel(), x_spec.imag.ravel()])
    spec_fmt = FixedPointFormat.fit(
        spec_parts if spec_parts.size else np.ones(1), bits
    )
    x_spec = spec_fmt.quantize(x_spec.real) + 1j * spec_fmt.quantize(x_spec.imag)

    acc = np.einsum("ijf,bjf->bif", weights.spectra, x_spec)
    y = np.fft.irfft(acc, n=block, axis=-1)
    y = y.reshape(x.shape[0], -1)[:, : weights.out_features]
    y_fmt = FixedPointFormat.fit(y if y.size else np.ones(1), bits)
    return y_fmt.quantize(y).reshape(batch_shape + (weights.out_features,))


def seed_emulator_forward(emulator, inputs: np.ndarray) -> np.ndarray:
    """The seed ``CUEmulator.forward``: frame-major, one matvec per matrix."""
    inputs = np.asarray(inputs, dtype=np.float64)
    frames, batch, _ = inputs.shape
    bits = emulator.bits
    states = emulator._initial_states(batch)
    logits = np.empty((frames, batch, emulator._classifier_w.shape[0]))
    for t in range(frames):
        value = inputs[t]
        for index, entry in enumerate(emulator._layers):
            if entry["cell_type"] == "lstm":
                y_prev, c_prev = states[index]
                hidden = entry["hidden"]
                gates = (
                    seed_matvec(entry["w_x"], value, bits)
                    + seed_matvec(entry["w_r"], y_prev, bits)
                    + entry["bias"]
                )
                z_i = gates[..., 0 * hidden : 1 * hidden]
                z_f = gates[..., 1 * hidden : 2 * hidden]
                z_g = gates[..., 2 * hidden : 3 * hidden]
                z_o = gates[..., 3 * hidden : 4 * hidden]
                if "peep" in entry:
                    w_ic, w_fc, w_oc = entry["peep"]
                    z_i = z_i + w_ic * c_prev
                    z_f = z_f + w_fc * c_prev
                gate_i = emulator.sigmoid(z_i)
                gate_f = emulator.sigmoid(z_f)
                candidate = emulator.tanh(z_g)
                cell = gate_f * c_prev + candidate * gate_i
                if "peep" in entry:
                    z_o = z_o + w_oc * cell
                gate_o = emulator.sigmoid(z_o)
                m = gate_o * emulator.tanh(cell)
                if "w_ym" in entry:
                    value = seed_matvec(entry["w_ym"], m, bits)
                else:
                    value = m
                states[index] = (value, cell)
            else:
                c_prev = states[index]
                hidden = entry["hidden"]
                gates = (
                    seed_matvec(entry["w_zr_x"], value, bits)
                    + seed_matvec(entry["w_zr_c"], c_prev, bits)
                    + entry["bias_zr"]
                )
                z = emulator.sigmoid(gates[..., :hidden])
                r = emulator.sigmoid(gates[..., hidden:])
                candidate = emulator.tanh(
                    seed_matvec(entry["w_cx"], value, bits)
                    + seed_matvec(entry["w_cc"], r * c_prev, bits)
                    + entry["bias_c"]
                )
                value = (1.0 - z) * c_prev + z * candidate
                states[index] = value
        logits[t] = value @ emulator._classifier_w.T + emulator._classifier_b
    return logits


# ----------------------------------------------------------------------
# Seed fixed-point FFT datapath: per-call tables, object-API quantization.
# ----------------------------------------------------------------------

def _seed_fft_forward(x: np.ndarray, size: int, bits: int) -> np.ndarray:
    """The seed ``FixedPointFFT.forward``: tables rebuilt on every call."""
    stages = int(math.log2(size))
    x = np.asarray(x, dtype=np.float64)
    fmt = FixedPointFormat.fit(
        np.array([max(float(np.max(np.abs(x))) if x.size else 1.0, 1e-12)]), bits
    )
    twiddle_fmt = FixedPointFormat(bits, bits - 2)
    k = np.arange(size // 2)
    exact = np.exp(-2j * np.pi * k / size)
    twiddles = twiddle_fmt.quantize(exact.real) + 1j * twiddle_fmt.quantize(
        exact.imag
    )

    indices = np.arange(size)
    reversed_indices = np.zeros(size, dtype=int)
    for bit in range(stages):
        reversed_indices |= ((indices >> bit) & 1) << (stages - 1 - bit)
    data = fmt.quantize(x)[..., reversed_indices].astype(np.complex128)

    def requantize(values):
        return fmt.quantize(values.real) + 1j * fmt.quantize(values.imag)

    half = 1
    for _stage in range(stages):
        stride = half * 2
        w = twiddles[np.arange(half) * (size // stride)]
        data = data.reshape(*data.shape[:-1], size // stride, stride)
        top = data[..., :half]
        bottom = requantize(data[..., half:] * w)
        data = requantize(np.concatenate([top + bottom, top - bottom], axis=-1) * 0.5)
        data = data.reshape(*data.shape[:-2], size)
        half = stride
    return data


def seed_circulant_matvec(
    weight_vector: np.ndarray, x: np.ndarray, bits: int = 12
) -> np.ndarray:
    """The seed ``fixed_point_circulant_matvec``: nothing cached or fused."""
    weight_vector = np.asarray(weight_vector, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    size = weight_vector.shape[-1]
    w_spec = _seed_fft_forward(weight_vector, size, bits)
    x_spec = _seed_fft_forward(x, size, bits)
    product = w_spec * x_spec
    product_fmt = FixedPointFormat.fit(
        np.concatenate(
            [np.abs(product.real).ravel(), np.abs(product.imag).ravel()]
        ),
        bits,
    )
    product = product_fmt.quantize(product.real) + 1j * product_fmt.quantize(
        product.imag
    )
    conj = np.conj(product)
    inverse = np.conj(
        _seed_fft_forward(conj.real, size, bits)
        + 1j * _seed_fft_forward(conj.imag, size, bits)
    )
    return inverse.real * size * size
