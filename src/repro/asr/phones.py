"""TIMIT phone inventories and the standard 61→39 folding (Lee & Hon 1989).

The paper evaluates with phone error rate on TIMIT, which is universally
scored after folding the 61 transcription labels down to 39 classes.  Both
inventories and the folding map are reproduced here so the synthetic corpus
and the decoder score exactly the way the paper's numbers were scored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["PHONES_61", "PHONES_39", "FOLD_61_TO_39", "PhoneSet", "SILENCE"]

#: The silence class every utterance starts and ends with.
SILENCE = "sil"

#: Full TIMIT transcription inventory (61 symbols).
PHONES_61 = (
    "aa", "ae", "ah", "ao", "aw", "ax", "ax-h", "axr", "ay", "b", "bcl",
    "ch", "d", "dcl", "dh", "dx", "eh", "el", "em", "en", "eng", "epi",
    "er", "ey", "f", "g", "gcl", "h#", "hh", "hv", "ih", "ix", "iy", "jh",
    "k", "kcl", "l", "m", "n", "ng", "nx", "ow", "oy", "p", "pau", "pcl",
    "q", "r", "s", "sh", "t", "tcl", "th", "uh", "uw", "ux", "v", "w",
    "y", "z", "zh",
)

#: The 39-class scoring inventory (CMU/MIT folding).
PHONES_39 = (
    "aa", "ae", "ah", "aw", "ay", "b", "ch", "d", "dh", "dx", "eh", "er",
    "ey", "f", "g", "hh", "ih", "iy", "jh", "k", "l", "m", "n", "ng",
    "ow", "oy", "p", "r", "s", "sh", SILENCE, "t", "th", "uh", "uw", "v",
    "w", "y", "z",
)

#: Lee & Hon folding.  Identity entries are omitted; ``q`` (glottal stop) is
#: conventionally deleted in scoring — we fold it into silence, the common
#: softer choice, and note it in EXPERIMENTS.md.
FOLD_61_TO_39: dict[str, str] = {
    "ao": "aa",
    "ax": "ah",
    "ax-h": "ah",
    "axr": "er",
    "hv": "hh",
    "ix": "ih",
    "el": "l",
    "em": "m",
    "en": "n",
    "nx": "n",
    "eng": "ng",
    "zh": "sh",
    "ux": "uw",
    "bcl": SILENCE,
    "dcl": SILENCE,
    "gcl": SILENCE,
    "pcl": SILENCE,
    "tcl": SILENCE,
    "kcl": SILENCE,
    "pau": SILENCE,
    "epi": SILENCE,
    "h#": SILENCE,
    "q": SILENCE,
}


def fold_phone(phone: str) -> str:
    """Map a 61-inventory phone to its 39-class scoring label."""
    if phone in FOLD_61_TO_39:
        return FOLD_61_TO_39[phone]
    if phone in PHONES_39:
        return phone
    raise ConfigError(f"unknown phone {phone!r}")


@dataclass(frozen=True)
class PhoneSet:
    """An ordered phone inventory with label-index mapping.

    ``PhoneSet.folded()`` is the 39-class scoring set used everywhere in the
    reproduction; smaller subsets (for fast tests) are built with
    :meth:`subset`.
    """

    phones: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.phones)) != len(self.phones):
            raise ConfigError("phone set contains duplicates")
        if SILENCE not in self.phones:
            raise ConfigError("phone set must include silence")

    @classmethod
    def folded(cls) -> "PhoneSet":
        return cls(PHONES_39)

    def subset(self, size: int) -> "PhoneSet":
        """First ``size`` non-silence phones plus silence (for micro tests)."""
        if size < 2 or size > len(self.phones):
            raise ConfigError(f"subset size {size} out of range")
        non_silence = [p for p in self.phones if p != SILENCE]
        return PhoneSet(tuple(non_silence[: size - 1]) + (SILENCE,))

    def __len__(self) -> int:
        return len(self.phones)

    def __contains__(self, phone: str) -> bool:
        return phone in self.phones

    def index(self, phone: str) -> int:
        try:
            return self.phones.index(phone)
        except ValueError:
            raise ConfigError(f"phone {phone!r} not in set") from None

    def label(self, index: int) -> str:
        if not 0 <= index < len(self.phones):
            raise ConfigError(f"phone index {index} out of range")
        return self.phones[index]

    @property
    def silence_index(self) -> int:
        return self.index(SILENCE)

    def encode(self, phones: list[str]) -> list[int]:
        return [self.index(p) for p in phones]

    def decode(self, indices: list[int]) -> list[str]:
        return [self.label(i) for i in indices]
