"""Framewise decoding: posteriors → phone sequences for PER scoring.

The acoustic model emits per-frame phone posteriors; scoring needs a phone
*sequence*.  The decoder takes the framewise argmax, optionally smooths it
with a short median filter (removing 1-frame blips that would otherwise count
as insertions), collapses consecutive repeats, and drops silence — mirroring
how framewise hybrid systems are scored against TIMIT's segmental
transcriptions.
"""

from __future__ import annotations

import numpy as np

from repro.asr.phones import PhoneSet
from repro.errors import DecodingError

__all__ = ["collapse_repeats", "median_smooth", "decode_frames", "FrameDecoder"]


def collapse_repeats(labels: list[int]) -> list[int]:
    """Merge runs of identical labels into single tokens."""
    collapsed: list[int] = []
    for label in labels:
        if not collapsed or collapsed[-1] != label:
            collapsed.append(label)
    return collapsed


def median_smooth(labels: np.ndarray, width: int = 3) -> np.ndarray:
    """Odd-width majority filter over the frame-label sequence."""
    if width < 1 or width % 2 == 0:
        raise DecodingError(f"median width must be odd and positive, got {width}")
    if width == 1 or len(labels) == 0:
        return labels.copy()
    half = width // 2
    padded = np.pad(labels, (half, half), mode="edge")
    smoothed = np.empty_like(labels)
    for i in range(len(labels)):
        window = padded[i : i + width]
        values, counts = np.unique(window, return_counts=True)
        smoothed[i] = values[counts.argmax()]
    return smoothed


def decode_frames(
    frame_labels: np.ndarray,
    phone_set: PhoneSet,
    remove_silence: bool = True,
    smooth_width: int = 5,
) -> list[str]:
    """Frame-label vector → scored phone sequence."""
    frame_labels = np.asarray(frame_labels, dtype=np.int64)
    if frame_labels.ndim != 1:
        raise DecodingError(f"expected 1-D labels, got shape {frame_labels.shape}")
    smoothed = median_smooth(frame_labels, smooth_width)
    tokens = collapse_repeats(list(smoothed))
    phones = phone_set.decode(tokens)
    if remove_silence:
        phones = [p for p in phones if p != phone_set.label(phone_set.silence_index)]
    return phones


class FrameDecoder:
    """Configured decoder: logits ``(T, C)`` or ``(T, B, C)`` → sequences."""

    def __init__(
        self,
        phone_set: PhoneSet,
        remove_silence: bool = True,
        smooth_width: int = 5,
    ):
        self.phone_set = phone_set
        self.remove_silence = remove_silence
        self.smooth_width = smooth_width

    def decode_utterance(
        self, logits: np.ndarray, length: int | None = None
    ) -> list[str]:
        logits = np.asarray(logits)
        if logits.ndim != 2:
            raise DecodingError(f"expected (T, C) logits, got {logits.shape}")
        if length is not None:
            logits = logits[:length]
        return decode_frames(
            logits.argmax(axis=-1),
            self.phone_set,
            remove_silence=self.remove_silence,
            smooth_width=self.smooth_width,
        )

    def decode_batch(
        self, logits: np.ndarray, lengths: tuple[int, ...]
    ) -> list[list[str]]:
        logits = np.asarray(logits)
        if logits.ndim != 3:
            raise DecodingError(f"expected (T, B, C) logits, got {logits.shape}")
        if logits.shape[1] != len(lengths):
            raise DecodingError(
                f"batch size {logits.shape[1]} != {len(lengths)} lengths"
            )
        return [
            self.decode_utterance(logits[:, b, :], length)
            for b, length in enumerate(lengths)
        ]

    def reference(self, phones: list[str]) -> list[str]:
        """Reference sequence under the same scoring conventions."""
        silence = self.phone_set.label(self.phone_set.silence_index)
        if self.remove_silence:
            return [p for p in phones if p != silence]
        return list(phones)
