"""Acoustic feature extraction: log-mel filterbanks with deltas.

The ESE/C-LSTM TIMIT setup feeds filterbank features (plus dynamic
coefficients) to the LSTM; this module reproduces that front end from the
waveform up: pre-emphasis, windowed framing, power spectrum, mel filterbank,
log compression, Δ/ΔΔ appending, and corpus-level mean/variance
normalization.  With ``num_filters=51`` and both delta orders the feature
dimension is 153 — the paper workload's input size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asr.phones import PhoneSet
from repro.asr.timit import Utterance
from repro.errors import ConfigError, ShapeError

__all__ = ["FeatureConfig", "FeatureExtractor", "mel_filterbank", "frame_signal"]


@dataclass(frozen=True)
class FeatureConfig:
    """Front-end parameters (defaults: 25 ms window, 10 ms hop)."""

    sample_rate: int = 16000
    frame_ms: float = 25.0
    hop_ms: float = 10.0
    num_filters: int = 13
    preemphasis: float = 0.97
    add_deltas: bool = True
    low_freq: float = 50.0
    high_freq: float | None = None

    def __post_init__(self) -> None:
        if self.frame_ms <= 0 or self.hop_ms <= 0 or self.hop_ms > self.frame_ms:
            raise ConfigError("need 0 < hop_ms <= frame_ms")
        if self.num_filters < 2:
            raise ConfigError("num_filters must be at least 2")
        high = self.high_freq if self.high_freq is not None else self.sample_rate / 2
        if not 0 <= self.low_freq < high <= self.sample_rate / 2:
            raise ConfigError("bad mel frequency range")

    @property
    def frame_length(self) -> int:
        return int(round(self.frame_ms * self.sample_rate / 1000.0))

    @property
    def hop_length(self) -> int:
        return int(round(self.hop_ms * self.sample_rate / 1000.0))

    @property
    def fft_size(self) -> int:
        size = 1
        while size < self.frame_length:
            size *= 2
        return size

    @property
    def feature_dim(self) -> int:
        return self.num_filters * (3 if self.add_deltas else 1)


def _hz_to_mel(freq: np.ndarray | float) -> np.ndarray | float:
    return 2595.0 * np.log10(1.0 + np.asarray(freq) / 700.0)


def _mel_to_hz(mel: np.ndarray | float) -> np.ndarray | float:
    return 700.0 * (10.0 ** (np.asarray(mel) / 2595.0) - 1.0)


def mel_filterbank(
    num_filters: int,
    fft_size: int,
    sample_rate: int,
    low_freq: float = 50.0,
    high_freq: float | None = None,
) -> np.ndarray:
    """Triangular mel filters, shape ``(num_filters, fft_size // 2 + 1)``."""
    high_freq = high_freq if high_freq is not None else sample_rate / 2.0
    mel_points = np.linspace(
        _hz_to_mel(low_freq), _hz_to_mel(high_freq), num_filters + 2
    )
    hz_points = np.asarray(_mel_to_hz(mel_points))
    bins = np.floor((fft_size + 1) * hz_points / sample_rate).astype(int)
    bank = np.zeros((num_filters, fft_size // 2 + 1))
    for m in range(1, num_filters + 1):
        left, center, right = bins[m - 1], bins[m], bins[m + 1]
        center = max(center, left + 1)
        right = max(right, center + 1)
        for k in range(left, center):
            bank[m - 1, k] = (k - left) / (center - left)
        for k in range(center, min(right, bank.shape[1])):
            bank[m - 1, k] = (right - k) / (right - center)
    return bank


def frame_signal(
    waveform: np.ndarray, frame_length: int, hop_length: int
) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames ``(num_frames, frame_length)``."""
    waveform = np.asarray(waveform, dtype=np.float64)
    if waveform.ndim != 1:
        raise ShapeError(f"waveform must be 1-D, got {waveform.shape}")
    if len(waveform) < frame_length:
        waveform = np.pad(waveform, (0, frame_length - len(waveform)))
    num_frames = 1 + (len(waveform) - frame_length) // hop_length
    indices = (
        np.arange(frame_length)[None, :]
        + hop_length * np.arange(num_frames)[:, None]
    )
    return waveform[indices]


class FeatureExtractor:
    """Waveform → normalized log-mel (+Δ, ΔΔ) feature matrices.

    Normalization statistics are fit once on a training corpus
    (:meth:`fit_normalizer`) and applied everywhere, the standard
    train-statistics-only protocol.
    """

    def __init__(self, config: FeatureConfig | None = None):
        self.config = config if config is not None else FeatureConfig()
        self._bank = mel_filterbank(
            self.config.num_filters,
            self.config.fft_size,
            self.config.sample_rate,
            self.config.low_freq,
            self.config.high_freq,
        )
        self._window = np.hamming(self.config.frame_length)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # ------------------------------------------------------------------
    def raw_features(self, waveform: np.ndarray) -> np.ndarray:
        """Un-normalized features ``(num_frames, feature_dim)``."""
        cfg = self.config
        emphasized = np.append(
            waveform[0], waveform[1:] - cfg.preemphasis * waveform[:-1]
        )
        frames = frame_signal(emphasized, cfg.frame_length, cfg.hop_length)
        spectrum = np.abs(np.fft.rfft(frames * self._window, n=cfg.fft_size)) ** 2
        energies = spectrum @ self._bank.T
        log_mel = np.log(np.maximum(energies, 1e-10))
        if not cfg.add_deltas:
            return log_mel
        delta = self._delta(log_mel)
        delta2 = self._delta(delta)
        return np.concatenate([log_mel, delta, delta2], axis=1)

    @staticmethod
    def _delta(features: np.ndarray, width: int = 2) -> np.ndarray:
        """Standard regression-based dynamic coefficients."""
        length = features.shape[0]
        padded = np.pad(features, ((width, width), (0, 0)), mode="edge")
        numerator = np.zeros_like(features)
        for n in range(1, width + 1):
            forward = padded[width + n : width + n + length]
            backward = padded[width - n : width - n + length]
            numerator += n * (forward - backward)
        denominator = 2 * sum(n * n for n in range(1, width + 1))
        return numerator / denominator

    # ------------------------------------------------------------------
    def fit_normalizer(self, utterances: list[Utterance]) -> None:
        stacked = np.concatenate(
            [self.raw_features(u.waveform) for u in utterances], axis=0
        )
        self._mean = stacked.mean(axis=0)
        self._std = np.maximum(stacked.std(axis=0), 1e-6)

    def __call__(self, waveform: np.ndarray) -> np.ndarray:
        features = self.raw_features(waveform)
        if self._mean is not None:
            features = (features - self._mean) / self._std
        return features

    # ------------------------------------------------------------------
    def frame_labels(
        self, utterance: Utterance, phone_set: PhoneSet
    ) -> np.ndarray:
        """Majority phone label per frame, aligned with :meth:`raw_features`."""
        cfg = self.config
        sample_labels = utterance.sample_labels(phone_set)
        if len(sample_labels) < cfg.frame_length:
            sample_labels = np.pad(
                sample_labels,
                (0, cfg.frame_length - len(sample_labels)),
                constant_values=phone_set.silence_index,
            )
        num_frames = 1 + (len(sample_labels) - cfg.frame_length) // cfg.hop_length
        labels = np.empty(num_frames, dtype=np.int64)
        for frame in range(num_frames):
            start = frame * cfg.hop_length
            window = sample_labels[start : start + cfg.frame_length]
            labels[frame] = np.bincount(window, minlength=len(phone_set)).argmax()
        return labels
