"""End-to-end ASR *training* pipeline on the synthetic corpus.

Glues the substrates together the way the paper's experiments do: corpus →
features + frame labels → stacked RNN training (optionally with an ADMM
penalty).  The Table I/II rows and the Phase-I training trials all run
through :func:`train_model`.

Evaluation (corpus PER, frame accuracy) lives in :mod:`repro.runtime` —
metrics are computed through :class:`repro.runtime.CompiledModel`, so the
same call scores the float model or the fixed-point CU emulation.  The
old ``evaluate_per`` / ``evaluate_frame_accuracy`` names remain here as
deprecated shims forwarding to the runtime with byte-identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.asr.decoder import FrameDecoder
from repro.asr.features import FeatureExtractor
from repro.asr.phones import PhoneSet
from repro.asr.timit import Utterance
from repro.core.admm import ADMMTrainer
from repro.errors import TrainingError
from repro.nn.data import iterate_batches
from repro.nn.loss import frame_accuracy, sequence_cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "PreparedDataset",
    "prepare_dataset",
    "TrainConfig",
    "TrainingHistory",
    "train_model",
    "evaluate_per",
    "evaluate_frame_accuracy",
]


@dataclass(frozen=True)
class PreparedDataset:
    """Feature matrices, frame labels and reference sequences for one split."""

    features: list[np.ndarray]
    frame_labels: list[np.ndarray]
    phone_sequences: list[list[str]]
    phone_set: PhoneSet

    def __post_init__(self) -> None:
        if not (
            len(self.features)
            == len(self.frame_labels)
            == len(self.phone_sequences)
        ):
            raise TrainingError("dataset component lengths disagree")
        if not self.features:
            raise TrainingError("dataset is empty")

    @property
    def feature_dim(self) -> int:
        return self.features[0].shape[1]

    @property
    def num_utterances(self) -> int:
        return len(self.features)


def prepare_dataset(
    utterances: list[Utterance],
    extractor: FeatureExtractor,
    phone_set: PhoneSet,
) -> PreparedDataset:
    """Extract normalized features and aligned frame labels for a split."""
    features = [extractor(u.waveform) for u in utterances]
    labels = [extractor.frame_labels(u, phone_set) for u in utterances]
    # Features and labels can differ by one frame at utterance edges; trim.
    for index, (feat, lab) in enumerate(zip(features, labels)):
        frames = min(feat.shape[0], lab.shape[0])
        features[index] = feat[:frames]
        labels[index] = lab[:frames]
    sequences = [u.phone_sequence() for u in utterances]
    return PreparedDataset(features, labels, sequences, phone_set)


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyper-parameters shared by all accuracy experiments."""

    epochs: int = 10
    batch_size: int = 8
    learning_rate: float = 3e-3
    grad_clip: float = 5.0
    weight_decay: float = 0.0
    admm_update_every: int = 1
    seed: int = 7
    lr_decay: float = 1.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError("epochs must be at least 1")
        if self.admm_update_every < 1:
            raise TrainingError("admm_update_every must be at least 1")
        if not 0 < self.lr_decay <= 1.0:
            raise TrainingError("lr_decay must be in (0, 1]")


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy trace plus ADMM residual trajectory."""

    losses: list[float] = field(default_factory=list)
    frame_accuracies: list[float] = field(default_factory=list)
    admm_residuals: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_model(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    config: TrainConfig,
    admm: ADMMTrainer | None = None,
) -> TrainingHistory:
    """Train with Adam; optionally add the ADMM proximal term each step.

    When ``admm`` is given, the loop implements subproblem 1 of Sec. III-B
    (task loss + quadratic penalty) and calls ``admm.dual_update()`` every
    ``config.admm_update_every`` epochs (subproblem 2 + dual ascent).
    """
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )
    history = TrainingHistory()
    for epoch in range(config.epochs):
        optimizer.lr = config.learning_rate * (config.lr_decay**epoch)
        epoch_loss = 0.0
        epoch_correct = 0.0
        epoch_frames = 0
        for batch in iterate_batches(
            dataset.features, dataset.frame_labels, config.batch_size, rng=rng
        ):
            optimizer.zero_grad()
            logits = model(batch.features)
            loss = sequence_cross_entropy(logits, batch.labels, batch.mask)
            if admm is not None:
                loss = loss + admm.penalty()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            frames = batch.num_frames
            epoch_loss += loss.item() * frames
            epoch_correct += (
                frame_accuracy(logits, batch.labels, batch.mask) * frames
            )
            epoch_frames += frames
        history.losses.append(epoch_loss / epoch_frames)
        history.frame_accuracies.append(epoch_correct / epoch_frames)
        if admm is not None and (epoch + 1) % config.admm_update_every == 0:
            residuals = admm.dual_update()
            history.admm_residuals.append(max(residuals.values()))
    return history


def evaluate_per(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    decoder: FrameDecoder | None = None,
    batch_size: int = 8,
    workers: int | None = None,
) -> float:
    """Corpus phone error rate — thin shim over :func:`repro.runtime.evaluate_per`.

    .. deprecated::
        Evaluation moved to the unified runtime (PR 4): call
        :func:`repro.runtime.evaluate_per`, which accepts a raw model *or*
        a :class:`repro.runtime.CompiledModel` (so the same call scores
        the fixed-point hardware emulation).  This shim forwards with
        identical semantics — PER values are byte-identical — and will be
        removed once nothing imports it.
    """
    warnings.warn(
        "repro.asr.pipeline.evaluate_per is deprecated; use "
        "repro.runtime.evaluate_per (same signature, also accepts "
        "CompiledModel artifacts)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.evaluate import evaluate_per as runtime_evaluate_per

    return runtime_evaluate_per(
        model, dataset, decoder=decoder, batch_size=batch_size, workers=workers
    )


def evaluate_frame_accuracy(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    batch_size: int = 8,
) -> float:
    """Frame accuracy — thin shim over :func:`repro.runtime.evaluate_frame_accuracy`.

    .. deprecated::
        Use :func:`repro.runtime.evaluate_frame_accuracy`; this shim
        forwards with identical results.
    """
    warnings.warn(
        "repro.asr.pipeline.evaluate_frame_accuracy is deprecated; use "
        "repro.runtime.evaluate_frame_accuracy",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.evaluate import (
        evaluate_frame_accuracy as runtime_evaluate_frame_accuracy,
    )

    return runtime_evaluate_frame_accuracy(model, dataset, batch_size=batch_size)
