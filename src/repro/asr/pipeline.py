"""End-to-end ASR training/evaluation pipeline on the synthetic corpus.

Glues the substrates together the way the paper's experiments do: corpus →
features + frame labels → stacked RNN training (optionally with an ADMM
penalty) → framewise decoding → corpus PER.  The Table I/II rows and the
Phase-I training trials all run through :func:`train_model` /
:func:`evaluate_per`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asr.decoder import FrameDecoder
from repro.asr.features import FeatureExtractor
from repro.asr.metrics import corpus_error_rate
from repro.asr.phones import PhoneSet
from repro.asr.timit import Utterance
from repro.core.admm import ADMMTrainer
from repro.errors import TrainingError
from repro.nn.autograd import no_grad
from repro.nn.data import iterate_batches
from repro.nn.loss import frame_accuracy, sequence_cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "PreparedDataset",
    "prepare_dataset",
    "TrainConfig",
    "TrainingHistory",
    "train_model",
    "evaluate_per",
    "evaluate_frame_accuracy",
]


@dataclass(frozen=True)
class PreparedDataset:
    """Feature matrices, frame labels and reference sequences for one split."""

    features: list[np.ndarray]
    frame_labels: list[np.ndarray]
    phone_sequences: list[list[str]]
    phone_set: PhoneSet

    def __post_init__(self) -> None:
        if not (
            len(self.features)
            == len(self.frame_labels)
            == len(self.phone_sequences)
        ):
            raise TrainingError("dataset component lengths disagree")
        if not self.features:
            raise TrainingError("dataset is empty")

    @property
    def feature_dim(self) -> int:
        return self.features[0].shape[1]

    @property
    def num_utterances(self) -> int:
        return len(self.features)


def prepare_dataset(
    utterances: list[Utterance],
    extractor: FeatureExtractor,
    phone_set: PhoneSet,
) -> PreparedDataset:
    """Extract normalized features and aligned frame labels for a split."""
    features = [extractor(u.waveform) for u in utterances]
    labels = [extractor.frame_labels(u, phone_set) for u in utterances]
    # Features and labels can differ by one frame at utterance edges; trim.
    for index, (feat, lab) in enumerate(zip(features, labels)):
        frames = min(feat.shape[0], lab.shape[0])
        features[index] = feat[:frames]
        labels[index] = lab[:frames]
    sequences = [u.phone_sequence() for u in utterances]
    return PreparedDataset(features, labels, sequences, phone_set)


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyper-parameters shared by all accuracy experiments."""

    epochs: int = 10
    batch_size: int = 8
    learning_rate: float = 3e-3
    grad_clip: float = 5.0
    weight_decay: float = 0.0
    admm_update_every: int = 1
    seed: int = 7
    lr_decay: float = 1.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError("epochs must be at least 1")
        if self.admm_update_every < 1:
            raise TrainingError("admm_update_every must be at least 1")
        if not 0 < self.lr_decay <= 1.0:
            raise TrainingError("lr_decay must be in (0, 1]")


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy trace plus ADMM residual trajectory."""

    losses: list[float] = field(default_factory=list)
    frame_accuracies: list[float] = field(default_factory=list)
    admm_residuals: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_model(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    config: TrainConfig,
    admm: ADMMTrainer | None = None,
) -> TrainingHistory:
    """Train with Adam; optionally add the ADMM proximal term each step.

    When ``admm`` is given, the loop implements subproblem 1 of Sec. III-B
    (task loss + quadratic penalty) and calls ``admm.dual_update()`` every
    ``config.admm_update_every`` epochs (subproblem 2 + dual ascent).
    """
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )
    history = TrainingHistory()
    for epoch in range(config.epochs):
        optimizer.lr = config.learning_rate * (config.lr_decay**epoch)
        epoch_loss = 0.0
        epoch_correct = 0.0
        epoch_frames = 0
        for batch in iterate_batches(
            dataset.features, dataset.frame_labels, config.batch_size, rng=rng
        ):
            optimizer.zero_grad()
            logits = model(batch.features)
            loss = sequence_cross_entropy(logits, batch.labels, batch.mask)
            if admm is not None:
                loss = loss + admm.penalty()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            frames = batch.num_frames
            epoch_loss += loss.item() * frames
            epoch_correct += (
                frame_accuracy(logits, batch.labels, batch.mask) * frames
            )
            epoch_frames += frames
        history.losses.append(epoch_loss / epoch_frames)
        history.frame_accuracies.append(epoch_correct / epoch_frames)
        if admm is not None and (epoch + 1) % config.admm_update_every == 0:
            residuals = admm.dual_update()
            history.admm_residuals.append(max(residuals.values()))
    return history


def _iter_eval_batches(dataset: PreparedDataset, batch_size: int):
    """The deterministic evaluation batching (length-bucketed, unshuffled)."""
    yield from iterate_batches(
        dataset.features,
        dataset.frame_labels,
        batch_size,
        rng=None,
        bucket_by_length=True,
    )


def _forward_dataset(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    batch_size: int,
):
    """Yield (logits, batch) over the dataset without building graphs."""
    with no_grad():
        for batch in _iter_eval_batches(dataset, batch_size):
            yield model(batch.features), batch


def _score_batch(
    model: StackedRNNClassifier,
    decoder: FrameDecoder,
    phone_set,
    batch,
) -> tuple[list[list[str]], list[list[str]]]:
    """Forward + decode one batch → (hypotheses, references).

    Enters ``no_grad`` itself: grad mode is thread-local, so a pool worker
    cannot rely on the submitting thread's inference mode.
    """
    from repro.asr.decoder import collapse_repeats

    with no_grad():
        logits = model(batch.features)
    hypotheses = decoder.decode_batch(logits.data, batch.lengths)
    references = []
    for b, length in enumerate(batch.lengths):
        frame_refs = batch.labels[:length, b]
        tokens = collapse_repeats(list(frame_refs))
        phones = phone_set.decode(tokens)
        references.append(decoder.reference(phones))
    return hypotheses, references


def evaluate_per(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    decoder: FrameDecoder | None = None,
    batch_size: int = 8,
    workers: int | None = None,
) -> float:
    """Corpus phone error rate (percent) — the paper's accuracy metric.

    Iteration order is deterministic (length-bucketed, no shuffling), but the
    hypothesis/reference pairing is kept explicit by re-deriving references
    from the decoded batch's *frame labels*, so PER is exact regardless of
    bucketing.

    ``workers`` > 1 scores batches through a thread pool (the forward pass
    is numpy-heavy and releases the GIL in BLAS/FFT); results are gathered
    in batch order, so the returned PER is identical to the serial path,
    which streams batches one at a time.
    """
    decoder = decoder if decoder is not None else FrameDecoder(dataset.phone_set)
    if workers is not None and workers > 1:
        from repro.core.parallel import map_ordered

        scored = map_ordered(
            lambda batch: _score_batch(model, decoder, dataset.phone_set, batch),
            _iter_eval_batches(dataset, batch_size),
            mode="thread",
            workers=workers,
        )
    else:
        scored = (
            _score_batch(model, decoder, dataset.phone_set, batch)
            for batch in _iter_eval_batches(dataset, batch_size)
        )
    references: list[list[str]] = []
    hypotheses: list[list[str]] = []
    for hyps, refs in scored:
        hypotheses.extend(hyps)
        references.extend(refs)
    return corpus_error_rate(references, hypotheses)


def evaluate_frame_accuracy(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    batch_size: int = 8,
) -> float:
    """Framewise classification accuracy (diagnostic, not a paper metric)."""
    total_correct = 0.0
    total_frames = 0
    for logits, batch in _forward_dataset(model, dataset, batch_size):
        frames = batch.num_frames
        total_correct += frame_accuracy(logits.data, batch.labels, batch.mask) * frames
        total_frames += frames
    return total_correct / total_frames
