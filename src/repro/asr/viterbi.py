"""Bigram Viterbi decoding: a stronger decoder than framewise argmax.

The paper's accelerator emits framewise posteriors; production ASR systems
decode them against a language/transition model.  This module adds the
smallest useful version — a phone-bigram HMM with self-loops — which both
lowers PER on the synthetic corpus and demonstrates that the library's
decoder interface supports real decoding back ends, not just argmax.

The transition model is estimated from training frame labels with add-one
smoothing; decoding is standard log-domain Viterbi over the phone set.
"""

from __future__ import annotations

import numpy as np

from repro.asr.decoder import collapse_repeats
from repro.asr.phones import PhoneSet
from repro.errors import DecodingError

__all__ = ["BigramTransitionModel", "ViterbiDecoder"]


class BigramTransitionModel:
    """Phone-bigram transition probabilities with add-one smoothing."""

    def __init__(self, num_classes: int, smoothing: float = 1.0):
        if num_classes < 2:
            raise DecodingError("need at least two classes")
        if smoothing <= 0:
            raise DecodingError("smoothing must be positive")
        self.num_classes = num_classes
        self.smoothing = smoothing
        self._counts = np.full((num_classes, num_classes), smoothing)
        self._initial = np.full(num_classes, smoothing)

    def fit(self, label_sequences: list[np.ndarray]) -> "BigramTransitionModel":
        """Accumulate frame-to-frame transition counts."""
        if not label_sequences:
            raise DecodingError("no label sequences given")
        for labels in label_sequences:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.size == 0:
                continue
            if labels.min() < 0 or labels.max() >= self.num_classes:
                raise DecodingError("label out of range")
            self._initial[labels[0]] += 1
            np.add.at(self._counts, (labels[:-1], labels[1:]), 1)
        return self

    @property
    def log_transitions(self) -> np.ndarray:
        """(C, C) matrix of log P(next | current)."""
        return np.log(self._counts / self._counts.sum(axis=1, keepdims=True))

    @property
    def log_initial(self) -> np.ndarray:
        return np.log(self._initial / self._initial.sum())

    def self_loop_mass(self) -> float:
        """Mean diagonal probability — frames are sticky (~90% self loops)."""
        probs = self._counts / self._counts.sum(axis=1, keepdims=True)
        return float(np.mean(np.diag(probs)))


class ViterbiDecoder:
    """Max-product decoding of framewise log-posteriors against a bigram HMM.

    ``acoustic_scale`` balances the acoustic model against the transition
    model (the HMM equivalent of a language-model weight).
    """

    def __init__(
        self,
        phone_set: PhoneSet,
        transitions: BigramTransitionModel,
        acoustic_scale: float = 1.0,
        remove_silence: bool = True,
    ):
        if transitions.num_classes != len(phone_set):
            raise DecodingError(
                f"transition model has {transitions.num_classes} classes, "
                f"phone set has {len(phone_set)}"
            )
        if acoustic_scale <= 0:
            raise DecodingError("acoustic_scale must be positive")
        self.phone_set = phone_set
        self.transitions = transitions
        self.acoustic_scale = acoustic_scale
        self.remove_silence = remove_silence

    # ------------------------------------------------------------------
    def decode_frames(self, log_posteriors: np.ndarray) -> np.ndarray:
        """Most likely frame-label path, shape (T,)."""
        log_posteriors = np.asarray(log_posteriors, dtype=np.float64)
        if log_posteriors.ndim != 2:
            raise DecodingError(
                f"expected (T, C) log-posteriors, got {log_posteriors.shape}"
            )
        frames, classes = log_posteriors.shape
        if classes != len(self.phone_set):
            raise DecodingError(
                f"{classes} classes vs phone set of {len(self.phone_set)}"
            )
        if frames == 0:
            return np.zeros(0, dtype=np.int64)

        log_trans = self.transitions.log_transitions
        scores = (
            self.transitions.log_initial
            + self.acoustic_scale * log_posteriors[0]
        )
        backpointers = np.zeros((frames, classes), dtype=np.int64)
        for t in range(1, frames):
            candidate = scores[:, None] + log_trans  # prev x next
            backpointers[t] = candidate.argmax(axis=0)
            scores = (
                candidate.max(axis=0)
                + self.acoustic_scale * log_posteriors[t]
            )
        path = np.empty(frames, dtype=np.int64)
        path[-1] = int(scores.argmax())
        for t in range(frames - 1, 0, -1):
            path[t - 1] = backpointers[t, path[t]]
        return path

    def decode_utterance(
        self, logits: np.ndarray, length: int | None = None
    ) -> list[str]:
        """Logits (T, C) -> scored phone sequence (same contract as
        :class:`repro.asr.decoder.FrameDecoder`)."""
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 2:
            raise DecodingError(f"expected (T, C) logits, got {logits.shape}")
        if length is not None:
            logits = logits[:length]
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_posteriors = shifted - np.log(
            np.exp(shifted).sum(axis=-1, keepdims=True)
        )
        path = self.decode_frames(log_posteriors)
        phones = self.phone_set.decode(collapse_repeats(list(path)))
        if self.remove_silence:
            silence = self.phone_set.label(self.phone_set.silence_index)
            phones = [p for p in phones if p != silence]
        return phones

    def decode_batch(
        self, logits: np.ndarray, lengths: tuple[int, ...]
    ) -> list[list[str]]:
        logits = np.asarray(logits)
        if logits.ndim != 3 or logits.shape[1] != len(lengths):
            raise DecodingError(
                f"expected (T, B, C) with B={len(lengths)}, got {logits.shape}"
            )
        return [
            self.decode_utterance(logits[:, b, :], length)
            for b, length in enumerate(lengths)
        ]

    def reference(self, phones: list[str]) -> list[str]:
        silence = self.phone_set.label(self.phone_set.silence_index)
        if self.remove_silence:
            return [p for p in phones if p != silence]
        return list(phones)
