"""Edit-distance metrics: phone error rate (PER) and word error rate (WER).

PER is the paper's accuracy measure (Tables I-III): the Levenshtein distance
between the decoded and reference phone sequences, divided by the reference
length, in percent.  The implementation returns the substitution / insertion
/ deletion breakdown so error analyses can go beyond a single number.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["EditOps", "levenshtein", "error_rate", "corpus_error_rate"]


@dataclass(frozen=True)
class EditOps:
    """Minimal edit-script statistics between a reference and a hypothesis."""

    substitutions: int
    insertions: int
    deletions: int
    reference_length: int

    @property
    def distance(self) -> int:
        return self.substitutions + self.insertions + self.deletions

    @property
    def rate(self) -> float:
        """Error rate in percent; defined as 0 for an empty, matched reference."""
        if self.reference_length == 0:
            return 0.0 if self.distance == 0 else 100.0
        return 100.0 * self.distance / self.reference_length


def levenshtein(reference: Sequence, hypothesis: Sequence) -> EditOps:
    """Dynamic-programming edit distance with operation counts.

    Uses the standard unit-cost DP; ties are broken substitution-first, which
    matches NIST sclite's default accounting.
    """
    ref_len, hyp_len = len(reference), len(hypothesis)
    # cost[i][j] = (distance, subs, ins, dels) for ref[:i] vs hyp[:j].
    distance = np.zeros((ref_len + 1, hyp_len + 1), dtype=np.int64)
    distance[:, 0] = np.arange(ref_len + 1)
    distance[0, :] = np.arange(hyp_len + 1)
    for i in range(1, ref_len + 1):
        for j in range(1, hyp_len + 1):
            match_cost = 0 if reference[i - 1] == hypothesis[j - 1] else 1
            distance[i, j] = min(
                distance[i - 1, j - 1] + match_cost,  # substitution / match
                distance[i, j - 1] + 1,  # insertion
                distance[i - 1, j] + 1,  # deletion
            )
    # Backtrace to classify the operations.
    subs = ins = dels = 0
    i, j = ref_len, hyp_len
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            match_cost = 0 if reference[i - 1] == hypothesis[j - 1] else 1
            if distance[i, j] == distance[i - 1, j - 1] + match_cost:
                subs += match_cost
                i -= 1
                j -= 1
                continue
        if j > 0 and distance[i, j] == distance[i, j - 1] + 1:
            ins += 1
            j -= 1
            continue
        dels += 1
        i -= 1
    return EditOps(subs, ins, dels, ref_len)


def error_rate(reference: Sequence, hypothesis: Sequence) -> float:
    """Single-sequence error rate in percent."""
    return levenshtein(reference, hypothesis).rate


def corpus_error_rate(
    references: Sequence[Sequence], hypotheses: Sequence[Sequence]
) -> float:
    """Corpus-level rate: total edits over total reference length (percent).

    This is how PER/WER are aggregated in ASR evaluation — *not* the mean of
    per-utterance rates, which over-weights short utterances.
    """
    if len(references) != len(hypotheses):
        raise ShapeError(
            f"{len(references)} references vs {len(hypotheses)} hypotheses"
        )
    if not references:
        raise ShapeError("empty corpus")
    total_edits = 0
    total_length = 0
    for ref, hyp in zip(references, hypotheses):
        ops = levenshtein(ref, hyp)
        total_edits += ops.distance
        total_length += ops.reference_length
    if total_length == 0:
        return 0.0 if total_edits == 0 else 100.0
    return 100.0 * total_edits / total_length
