"""ASR substrate: synthetic TIMIT-like corpus, features, decoding, metrics."""

from repro.asr.decoder import FrameDecoder, collapse_repeats, decode_frames, median_smooth
from repro.asr.features import FeatureConfig, FeatureExtractor, frame_signal, mel_filterbank
from repro.asr.metrics import EditOps, corpus_error_rate, error_rate, levenshtein
from repro.asr.phones import FOLD_61_TO_39, PHONES_39, PHONES_61, SILENCE, PhoneSet, fold_phone
from repro.asr.pipeline import (
    PreparedDataset,
    TrainConfig,
    TrainingHistory,
    evaluate_frame_accuracy,
    evaluate_per,
    prepare_dataset,
    train_model,
)
from repro.asr.timit import CorpusConfig, PhoneSegment, SyntheticTIMIT, Utterance
from repro.asr.viterbi import BigramTransitionModel, ViterbiDecoder

__all__ = [
    "FrameDecoder",
    "collapse_repeats",
    "decode_frames",
    "median_smooth",
    "FeatureConfig",
    "FeatureExtractor",
    "frame_signal",
    "mel_filterbank",
    "EditOps",
    "corpus_error_rate",
    "error_rate",
    "levenshtein",
    "FOLD_61_TO_39",
    "PHONES_39",
    "PHONES_61",
    "SILENCE",
    "PhoneSet",
    "fold_phone",
    "PreparedDataset",
    "TrainConfig",
    "TrainingHistory",
    "evaluate_frame_accuracy",
    "evaluate_per",
    "prepare_dataset",
    "train_model",
    "CorpusConfig",
    "PhoneSegment",
    "SyntheticTIMIT",
    "Utterance",
    "BigramTransitionModel",
    "ViterbiDecoder",
]
