"""Synthetic TIMIT-like corpus generator.

The real TIMIT corpus is LDC-licensed and unavailable offline, so this module
synthesizes a corpus with the same *interface* and the same experimental
levers (DESIGN.md §2): 16 kHz waveforms, per-sample phone alignments, multiple
"speakers" with systematic vocal-tract variation, and train/test splits with
disjoint speakers.

Acoustic model of a phone
-------------------------
Each phone gets a deterministic prototype drawn from ranges typical of its
broad class (vowel / nasal / fricative / stop / glide / silence):

* voiced phones → a sum of 2-3 formant sinusoids with per-segment phase and
  small frequency jitter;
* fricatives → shaped noise plus a weak high-frequency carrier;
* stops → a closure (near-silence) followed by a noise burst;
* silence → low-amplitude noise.

Speakers scale all formant frequencies by a per-speaker factor (vocal-tract
length) and vary speaking rate and level.  This yields a framewise phone
classification task whose difficulty responds to model capacity and weight
structure — the property Tables I-III rely on — while remaining fully
deterministic given a seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.asr.phones import SILENCE, PhoneSet
from repro.errors import ConfigError

__all__ = ["PhoneSegment", "Utterance", "CorpusConfig", "SyntheticTIMIT"]

# Broad phonetic classes drive duration and synthesis style.
_VOWELS = {
    "aa", "ae", "ah", "aw", "ay", "eh", "er", "ey", "ih", "iy", "ow",
    "oy", "uh", "uw",
}
_NASALS = {"m", "n", "ng"}
_FRICATIVES = {"ch", "dh", "f", "hh", "jh", "s", "sh", "th", "v", "z"}
_STOPS = {"b", "d", "dx", "g", "k", "p", "t"}
_GLIDES = {"l", "r", "w", "y"}


@dataclass(frozen=True)
class PhoneSegment:
    """A phone occupying waveform samples ``[start, end)``."""

    phone: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start or self.start < 0:
            raise ConfigError(f"bad segment bounds [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Utterance:
    """One synthetic utterance with its time-aligned phonetic transcription."""

    utterance_id: str
    speaker_id: str
    waveform: np.ndarray
    sample_rate: int
    segments: tuple[PhoneSegment, ...]

    def phone_sequence(self, collapse_silence: bool = False) -> list[str]:
        """Reference phone string (adjacent duplicates kept — TIMIT style)."""
        phones = [seg.phone for seg in self.segments]
        if collapse_silence:
            phones = [p for p in phones if p != SILENCE]
        return phones

    def sample_labels(self, phone_set: PhoneSet) -> np.ndarray:
        """Per-sample integer phone labels (used to derive frame labels)."""
        labels = np.empty(len(self.waveform), dtype=np.int64)
        for seg in self.segments:
            labels[seg.start : seg.end] = phone_set.index(seg.phone)
        return labels


@dataclass(frozen=True)
class CorpusConfig:
    """Size/shape of the synthetic corpus.

    Defaults are sized for the scaled-down accuracy experiments; tests use
    much smaller values.  ``noise_level`` is a global SNR knob: higher values
    make the task harder and spread the PER differences between models.
    """

    phone_set: PhoneSet = field(default_factory=PhoneSet.folded)
    num_speakers: int = 10
    utterances_per_speaker: int = 12
    test_speakers: int = 3
    phones_per_utterance: tuple[int, int] = (6, 12)
    sample_rate: int = 16000
    noise_level: float = 0.35
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.num_speakers <= self.test_speakers:
            raise ConfigError("need more speakers than test speakers")
        if self.test_speakers < 1:
            raise ConfigError("need at least one test speaker")
        low, high = self.phones_per_utterance
        if low < 1 or high < low:
            raise ConfigError(f"bad phones_per_utterance {self.phones_per_utterance}")
        if self.sample_rate < 4000:
            raise ConfigError("sample_rate must be at least 4000 Hz")


def _phone_class(phone: str) -> str:
    if phone == SILENCE:
        return "silence"
    if phone in _VOWELS:
        return "vowel"
    if phone in _NASALS:
        return "nasal"
    if phone in _FRICATIVES:
        return "fricative"
    if phone in _STOPS:
        return "stop"
    if phone in _GLIDES:
        return "glide"
    return "vowel"  # unknown symbols synthesize as vowels


@dataclass(frozen=True)
class _PhoneAcoustics:
    formants: tuple[float, ...]
    amplitudes: tuple[float, ...]
    noise: float
    voiced: bool
    burst: bool
    duration_ms: tuple[float, float]


def _prototype(phone: str) -> _PhoneAcoustics:
    """Deterministic per-phone acoustic prototype (seeded by the phone name).

    Uses a stable digest, not ``hash()`` — Python randomizes string hashing
    per process, which would give every pytest invocation a different
    corpus.
    """
    digest = zlib.crc32(phone.encode("utf-8"))
    rng = np.random.default_rng(digest)
    cls = _phone_class(phone)
    if cls == "silence":
        return _PhoneAcoustics((), (), 0.02, False, False, (50.0, 200.0))
    if cls == "vowel":
        f1 = rng.uniform(250, 850)
        f2 = rng.uniform(900, 2300)
        f3 = rng.uniform(2300, 3200)
        return _PhoneAcoustics(
            (f1, f2, f3), (0.5, 0.3, 0.15), 0.03, True, False, (60.0, 150.0)
        )
    if cls == "nasal":
        f1 = rng.uniform(200, 450)
        f2 = rng.uniform(1000, 1500)
        return _PhoneAcoustics((f1, f2), (0.4, 0.1), 0.03, True, False, (50.0, 110.0))
    if cls == "fricative":
        carrier = rng.uniform(2500, 3800)
        return _PhoneAcoustics(
            (carrier,), (0.15,), rng.uniform(0.2, 0.35), False, False, (50.0, 120.0)
        )
    if cls == "stop":
        burst_freq = rng.uniform(1500, 3500)
        return _PhoneAcoustics(
            (burst_freq,), (0.2,), rng.uniform(0.15, 0.3), False, True, (30.0, 80.0)
        )
    # glide
    f1 = rng.uniform(300, 600)
    f2 = rng.uniform(700, 1800)
    return _PhoneAcoustics((f1, f2), (0.45, 0.25), 0.03, True, False, (50.0, 120.0))


class SyntheticTIMIT:
    """Deterministic synthetic corpus with speaker-disjoint train/test splits.

    >>> corpus = SyntheticTIMIT(CorpusConfig(num_speakers=4, test_speakers=1))
    >>> len(corpus.train), len(corpus.test)
    (36, 12)
    """

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config if config is not None else CorpusConfig()
        self._prototypes = {
            phone: _prototype(phone) for phone in self.config.phone_set.phones
        }
        self.train: list[Utterance] = []
        self.test: list[Utterance] = []
        self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        for speaker_index in range(cfg.num_speakers):
            speaker_id = f"spk{speaker_index:03d}"
            # Vocal-tract length scaling and speaking-rate/level variation.
            formant_scale = rng.uniform(0.88, 1.12)
            rate_scale = rng.uniform(0.85, 1.15)
            level = rng.uniform(0.8, 1.2)
            is_test = speaker_index >= cfg.num_speakers - cfg.test_speakers
            for utt_index in range(cfg.utterances_per_speaker):
                utterance = self._synthesize_utterance(
                    rng,
                    utterance_id=f"{speaker_id}_utt{utt_index:03d}",
                    speaker_id=speaker_id,
                    formant_scale=formant_scale,
                    rate_scale=rate_scale,
                    level=level,
                )
                (self.test if is_test else self.train).append(utterance)

    def _sample_phone_string(self, rng: np.random.Generator) -> list[str]:
        cfg = self.config
        low, high = cfg.phones_per_utterance
        count = int(rng.integers(low, high + 1))
        non_silence = [p for p in cfg.phone_set.phones if p != SILENCE]
        phones = [SILENCE]
        previous = SILENCE
        for _ in range(count):
            phone = str(rng.choice(non_silence))
            while phone == previous:  # adjacent repeats are unrecoverable
                phone = str(rng.choice(non_silence))
            phones.append(phone)
            previous = phone
        phones.append(SILENCE)
        return phones

    def _synthesize_utterance(
        self,
        rng: np.random.Generator,
        utterance_id: str,
        speaker_id: str,
        formant_scale: float,
        rate_scale: float,
        level: float,
    ) -> Utterance:
        cfg = self.config
        sr = cfg.sample_rate
        phones = self._sample_phone_string(rng)
        pieces: list[np.ndarray] = []
        segments: list[PhoneSegment] = []
        cursor = 0
        for phone in phones:
            proto = self._prototypes[phone]
            low_ms, high_ms = proto.duration_ms
            duration = int(rng.uniform(low_ms, high_ms) * rate_scale * sr / 1000.0)
            duration = max(duration, int(0.015 * sr))  # at least 1.5 frames
            samples = self._synthesize_phone(
                rng, proto, duration, sr, formant_scale, level
            )
            pieces.append(samples)
            segments.append(PhoneSegment(phone, cursor, cursor + duration))
            cursor += duration
        waveform = np.concatenate(pieces)
        waveform += cfg.noise_level * 0.1 * rng.standard_normal(waveform.size)
        return Utterance(
            utterance_id=utterance_id,
            speaker_id=speaker_id,
            waveform=waveform,
            sample_rate=sr,
            segments=tuple(segments),
        )

    def _synthesize_phone(
        self,
        rng: np.random.Generator,
        proto: _PhoneAcoustics,
        duration: int,
        sample_rate: int,
        formant_scale: float,
        level: float,
    ) -> np.ndarray:
        time = np.arange(duration) / sample_rate
        samples = np.zeros(duration)
        nyquist = sample_rate / 2.0
        for freq, amp in zip(proto.formants, proto.amplitudes):
            jitter = rng.uniform(0.95, 1.05)
            effective = min(freq * formant_scale * jitter, 0.95 * nyquist)
            phase = rng.uniform(0, 2 * np.pi)
            samples += amp * np.sin(2 * np.pi * effective * time + phase)
        samples += proto.noise * rng.standard_normal(duration)
        if proto.burst:
            # Stop consonant: first 60% closure, then the burst.
            closure = int(0.6 * duration)
            envelope = np.ones(duration)
            envelope[:closure] = 0.05
            samples *= envelope
        # 5 ms raised-cosine edges to avoid segment-boundary clicks.
        ramp = min(int(0.005 * sample_rate), duration // 2)
        if ramp > 0:
            window = 0.5 * (1 - np.cos(np.linspace(0, np.pi, ramp)))
            samples[:ramp] *= window
            samples[-ramp:] *= window[::-1]
        return level * samples

    # ------------------------------------------------------------------
    @property
    def phone_set(self) -> PhoneSet:
        return self.config.phone_set

    def __repr__(self) -> str:
        return (
            f"SyntheticTIMIT(train={len(self.train)}, test={len(self.test)}, "
            f"phones={len(self.phone_set)})"
        )
