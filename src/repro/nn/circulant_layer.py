"""Block-circulant linear layer: trains only the block-defining vectors.

This is the layer type that the paper's training "directly trains ... in the
block-circulant format by training only one vector for each block" (Sec.
III-A, last paragraph).  C-LSTM trains these layers from scratch; E-RNN
instead ADMM-projects a dense model and then *converts* it to this layer via
:meth:`CirculantLinear.from_dense`.

Dimensions that are not multiples of the block size are zero-padded, matching
how an FPGA implementation would pad the input feature vector to the FFT size.
"""

from __future__ import annotations

import numpy as np

from repro.config import validate_block_size
from repro.errors import ShapeError
from repro.nn.autograd import Tensor, block_circulant_matvec
from repro.nn.init import zeros
from repro.nn.module import Module, Parameter


def _padded(dim: int, block_size: int) -> int:
    return ((dim + block_size - 1) // block_size) * block_size


class CirculantLinear(Module):
    """Affine map whose weight matrix is block-circulant (paper Sec. III-A).

    The trainable parameter is ``weight_vectors`` of shape ``(p, q, Lb)``:
    one length-``Lb`` vector per block, giving the ``Lb×`` storage reduction
    of Fig. 1.  Block ``(i, j)`` of the dense equivalent is the circulant
    matrix with first *column* ``weight_vectors[i, j]``, the convention under
    which ``Wx = IFFT(FFT(w) ∘ FFT(x))`` (Eqn. 4) holds exactly.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        block_size: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        validate_block_size(block_size)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        self.padded_in = _padded(in_features, block_size)
        self.padded_out = _padded(out_features, block_size)
        self.num_block_rows = self.padded_out // block_size
        self.num_block_cols = self.padded_in // block_size
        # Per-block vectors; scaled so the dense equivalent has Xavier-like
        # variance (each output sums q blocks of Lb inputs).
        bound = np.sqrt(6.0 / (self.padded_in + self.padded_out))
        self.weight_vectors = Parameter(
            rng.uniform(
                -bound,
                bound,
                size=(self.num_block_rows, self.num_block_cols, block_size),
            )
        )
        self.bias = Parameter(zeros((out_features,))) if bias else None

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"CirculantLinear expected last dim {self.in_features}, "
                f"got {x.shape}"
            )
        if self.padded_in != self.in_features:
            pad_width = self.padded_in - self.in_features
            batch_shape = x.shape[:-1]
            pad = Tensor(np.zeros(batch_shape + (pad_width,)))
            from repro.nn.autograd import concat

            x = concat([x, pad], axis=-1)
        out = block_circulant_matvec(self.weight_vectors, x)
        if self.padded_out != self.out_features:
            out = out[..., : self.out_features]
        if self.bias is not None:
            out = out + self.bias
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def weight_matrix(self) -> np.ndarray:
        """Materialize the dense (out, in) weight matrix (testing/accounting)."""
        block = self.block_size
        dense = np.zeros((self.padded_out, self.padded_in))
        shifts = np.arange(block)
        # Column k of a circulant block with first column w is roll(w, k).
        for i in range(self.num_block_rows):
            for j in range(self.num_block_cols):
                vector = self.weight_vectors.data[i, j]
                block_matrix = vector[(shifts[:, None] - shifts[None, :]) % block]
                dense[
                    i * block : (i + 1) * block, j * block : (j + 1) * block
                ] = block_matrix
        return dense[: self.out_features, : self.in_features]

    @classmethod
    def from_dense(
        cls,
        weight: np.ndarray,
        block_size: int,
        bias: np.ndarray | None = None,
    ) -> "CirculantLinear":
        """Build a circulant layer from a dense weight by Euclidean projection.

        This is the conversion step at the end of ADMM training (Fig. 6):
        once ``W ≈ Z`` the dense weights are replaced by their exact
        block-circulant projection, and only the defining vectors are kept.
        """
        from repro.core.projection import project_to_block_circulant_vectors

        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ShapeError(f"dense weight must be 2-D, got {weight.shape}")
        out_features, in_features = weight.shape
        layer = cls(in_features, out_features, block_size, bias=bias is not None)
        layer.weight_vectors.data = project_to_block_circulant_vectors(
            weight, block_size
        )
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (out_features,):
                raise ShapeError(f"bias shape {bias.shape} != ({out_features},)")
            layer.bias.data = bias.copy()
        return layer

    def compression_ratio(self) -> float:
        """Dense parameter count over circulant parameter count (≈ Lb)."""
        dense = self.in_features * self.out_features
        return dense / self.weight_vectors.size

    def __repr__(self) -> str:
        return (
            f"CirculantLinear({self.in_features}, {self.out_features}, "
            f"block={self.block_size})"
        )
