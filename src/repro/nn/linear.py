"""Dense and diagonal linear layers.

:class:`Linear` is the unstructured baseline the paper compresses;
:class:`DiagonalLinear` implements the peephole connections of Eqn. (1),
which the paper notes "are diagonal matrices ... thus essentially a vector"
whose product reduces to a point-wise multiplication.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.autograd import Tensor
from repro.nn.init import xavier_uniform, zeros
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with weight shape ``(out, in)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_matrix(self) -> np.ndarray:
        """Dense weight as a numpy array (for projection / accounting)."""
        return self.weight.data

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class DiagonalLinear(Module):
    """Point-wise multiplication by a trainable vector (peephole weights)."""

    def __init__(self, features: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.features = features
        self.weight = Parameter(rng.uniform(-0.1, 0.1, size=(features,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ShapeError(
                f"DiagonalLinear expected last dim {self.features}, got {x.shape}"
            )
        return x * self.weight

    def __repr__(self) -> str:
        return f"DiagonalLinear({self.features})"
