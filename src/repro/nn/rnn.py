"""Stacked RNN classifier: the acoustic-model architecture of Tables I-II.

``StackedRNNClassifier`` stacks LSTM or GRU layers per an :class:`RNNSpec`
and adds a dense softmax head that emits framewise phone posteriors.  It is
the single model class used by the dense baselines, by C-LSTM-style direct
circulant training (``structured=True``), and by the ADMM flow (train dense,
project, convert with :func:`convert_to_circulant`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import CELL_REGISTRY
from repro.config import RNNSpec
from repro.errors import ConfigError, ShapeError
from repro.nn.autograd import Tensor, as_tensor
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter

__all__ = ["StackedRNNClassifier", "StructuredTarget", "convert_to_circulant"]


@dataclass(frozen=True)
class StructuredTarget:
    """A dense parameter that ADMM should drive into block-circulant form."""

    name: str
    parameter: Parameter
    block_size: int
    role: str


def _role_block_size(spec: RNNSpec, layer_index: int, role: str) -> int:
    """Phase-I rule: io matrices may use the coarser ``io_block_size``."""
    base = spec.effective_block_sizes[layer_index]
    if role in ("input", "output") and spec.io_block_size is not None:
        return spec.io_block_size
    return base


class StackedRNNClassifier(Module):
    """Multi-layer LSTM/GRU with a framewise softmax head.

    Parameters
    ----------
    spec:
        Model specification.  When ``structured`` is True, every large matrix
        is built as a :class:`CirculantLinear` with the spec's block sizes
        (the C-LSTM training style); when False the matrices are dense and the
        block sizes are only *targets* recorded for ADMM.
    """

    def __init__(
        self,
        spec: RNNSpec,
        structured: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.spec = spec
        self.structured = structured

        cells: list[Module] = []
        in_size = spec.input_size
        for layer_index, hidden in enumerate(spec.layer_sizes):
            block = (
                _role_block_size(spec, layer_index, "recurrent")
                if structured
                else 1
            )
            input_block = (
                _role_block_size(spec, layer_index, "input") if structured else 1
            )
            # Cell construction goes through the registry so cells added via
            # repro.api.register_cell build here without editing this class.
            # Factory convention: (input_size, hidden_size, *, block_size,
            # input_block_size, rng, [peephole], [projection_size]) — the
            # optional kwargs are passed only when the cell declares support.
            info = CELL_REGISTRY.get(spec.cell_type)
            kwargs: dict = dict(
                block_size=block, input_block_size=input_block, rng=rng
            )
            if info.supports_peephole:
                kwargs["peephole"] = spec.peephole
            if info.supports_projection:
                kwargs["projection_size"] = spec.projection_size
            cell = info.factory(in_size, hidden, **kwargs)
            setattr(self, f"cell{layer_index}", cell)
            cells.append(cell)
            in_size = cell.output_size
        self.cells = cells
        self.classifier = Linear(in_size, spec.output_size, rng=rng)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, inputs) -> Tensor:
        """Map ``(T, B, D)`` features to ``(T, B, C)`` logits."""
        inputs = as_tensor(inputs)
        if inputs.ndim != 3:
            raise ShapeError(f"expected (T, B, D) inputs, got {inputs.shape}")
        seq_len, batch, _ = inputs.shape

        states = [cell.initial_state(batch) for cell in self.cells]
        step_logits: list[Tensor] = []
        for t in range(seq_len):
            value = inputs[t]
            for index, cell in enumerate(self.cells):
                value, states[index] = cell(value, states[index])
            step_logits.append(self.classifier(value).reshape(1, batch, -1))

        from repro.nn.autograd import concat

        return concat(step_logits, axis=0)

    # ------------------------------------------------------------------
    # ADMM integration
    # ------------------------------------------------------------------
    def structured_targets(self) -> list[StructuredTarget]:
        """Dense parameters + target block sizes for the ADMM trainer.

        Only meaningful on a dense model (``structured=False``) whose spec
        carries non-trivial block sizes: those are the matrices the paper
        drives into circulant form.  Targets with block size 1 are skipped.
        """
        if self.structured:
            raise ConfigError(
                "structured_targets() applies to dense models being ADMM-trained"
            )
        targets: list[StructuredTarget] = []
        for layer_index, cell in enumerate(self.cells):
            for attr, layer, role in cell.weight_layer_roles():
                block = _role_block_size(self.spec, layer_index, role)
                if block <= 1:
                    continue
                targets.append(
                    StructuredTarget(
                        name=f"cell{layer_index}.{attr}.weight",
                        parameter=layer.weight,
                        block_size=block,
                        role=role,
                    )
                )
        return targets

    def output_dim(self) -> int:
        return self.spec.output_size


def convert_to_circulant(
    model: StackedRNNClassifier,
    rng: np.random.Generator | None = None,
) -> StackedRNNClassifier:
    """Convert an ADMM-trained dense model into a structured one.

    Every targeted dense matrix is replaced by its exact block-circulant
    Euclidean projection; after ADMM convergence ``W ≈ Z`` so the projection
    is a no-op up to the ADMM tolerance.  Non-targeted parameters (biases,
    peepholes, classifier head) are copied verbatim.
    """
    from repro.core.projection import project_to_block_circulant_vectors

    structured = StackedRNNClassifier(model.spec, structured=True, rng=rng)

    dense_params = dict(model.named_parameters())
    structured_params = dict(structured.named_parameters())
    target_names = {t.name for t in model.structured_targets()}

    for name, param in structured_params.items():
        if name.endswith(".weight_vectors"):
            dense_name = name.replace(".weight_vectors", ".weight")
            if dense_name not in target_names:
                raise ConfigError(
                    f"structured layer {name} has no dense counterpart target"
                )
            dense_weight = dense_params[dense_name].data
            block = param.data.shape[-1]
            param.data = project_to_block_circulant_vectors(dense_weight, block)
        elif name in dense_params:
            param.data = dense_params[name].data.copy()
        else:
            raise ConfigError(f"unexpected structured parameter {name}")
    return structured
