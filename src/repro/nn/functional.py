"""Stateless neural-network functions built on the autograd primitives."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.autograd import Tensor, as_tensor

__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "softmax",
    "log_softmax",
    "one_hot",
]


def sigmoid(x: Tensor) -> Tensor:
    """Logistic activation σ (paper Eqns. 1-2)."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent, the paper's choice for the ``h`` activation."""
    return as_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax as a single autograd primitive.

    Composing ``log(softmax(x))`` out of elementary ops is unstable for the
    large negative logits RNN classifiers produce; instead this implements the
    standard closed-form gradient ``dL/dx = g - softmax(x) * sum(g)``.
    """
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding of an integer label array (not differentiable)."""
    labels = np.asarray(labels)
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ShapeError(
            f"labels out of range [0, {num_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros(labels.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(encoded, labels[..., None], 1.0, axis=-1)
    return encoded
