"""Neural-network training substrate: numpy autograd, RNN cells, optimizers.

This package is the from-scratch replacement for the PyTorch training stack
the paper's authors used.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.nn.autograd import (
    Tensor,
    as_tensor,
    block_circulant_matvec,
    concat,
    gradcheck,
    no_grad,
)
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.data import SequenceBatch, iterate_batches, pad_batch
from repro.nn.functional import log_softmax, one_hot, relu, sigmoid, softmax, tanh
from repro.nn.gru import GRUCell
from repro.nn.linear import DiagonalLinear, Linear
from repro.nn.loss import cross_entropy, frame_accuracy, sequence_cross_entropy
from repro.nn.lstm import LSTMCell, make_weight_layer
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.rnn import StackedRNNClassifier, StructuredTarget, convert_to_circulant
from repro.nn.serialization import load_model, save_model
from repro.nn.spectral_layer import SpectralCirculantLinear

__all__ = [
    "Tensor",
    "as_tensor",
    "block_circulant_matvec",
    "concat",
    "gradcheck",
    "no_grad",
    "CirculantLinear",
    "SequenceBatch",
    "iterate_batches",
    "pad_batch",
    "log_softmax",
    "one_hot",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "GRUCell",
    "DiagonalLinear",
    "Linear",
    "cross_entropy",
    "frame_accuracy",
    "sequence_cross_entropy",
    "LSTMCell",
    "make_weight_layer",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "StackedRNNClassifier",
    "StructuredTarget",
    "convert_to_circulant",
    "load_model",
    "save_model",
    "SpectralCirculantLinear",
]
