"""Weight initializers for the RNN substrate.

All initializers take an explicit ``numpy.random.Generator`` so every
experiment in the reproduction is deterministic end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "orthogonal", "uniform", "zeros"]


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform init; fan computed from the trailing two dims."""
    if len(shape) >= 2:
        fan_in, fan_out = shape[-1], shape[-2]
    else:
        fan_in = fan_out = shape[0]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(
    rng: np.random.Generator, shape: tuple[int, int], gain: float = 1.0
) -> np.ndarray:
    """Orthogonal init for recurrent matrices (mitigates gradient explosion)."""
    rows, cols = shape
    size = max(rows, cols)
    matrix = rng.standard_normal((size, size))
    q, r = np.linalg.qr(matrix)
    q *= np.sign(np.diag(r))
    return gain * q[:rows, :cols]


def uniform(
    rng: np.random.Generator, shape: tuple[int, ...], bound: float
) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
