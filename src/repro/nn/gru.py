"""GRU cell following the paper's Eqn. (2).

The paper's GRU variant gates the *cell state* directly (it "merges the cell
state and hidden state"): update gate ``z``, reset gate ``r``, reset state
``c̃``, and ``c_t = (1 − z_t) ⊙ c_{t-1} + z_t ⊙ c̃_t``.  Three matrix groups
exist after the paper's fusion: ``W(rz)(xc)``, ``W_c̃x`` and ``W_c̃c`` — kept
here as four physical matrices so input and recurrent halves can carry
different block sizes (same design as :class:`repro.nn.lstm.LSTMCell`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.init import zeros
from repro.nn.lstm import make_weight_layer
from repro.nn.module import Module, Parameter

__all__ = ["GRUCell"]


class GRUCell(Module):
    """One GRU step: ``(x_t, c_{t-1}) -> (c_t, c_t)`` (state is the output)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        block_size: int = 1,
        input_block_size: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.output_size = hidden_size
        self.block_size = block_size
        self.input_block_size = (
            input_block_size if input_block_size is not None else block_size
        )

        # W(rz)x / W(rz)c — the fused reset+update gates of Eqns. (2a)-(2b).
        self.w_zr_x = make_weight_layer(
            input_size, 2 * hidden_size, self.input_block_size, rng
        )
        self.w_zr_c = make_weight_layer(hidden_size, 2 * hidden_size, block_size, rng)
        self.bias_zr = Parameter(zeros((2 * hidden_size,)))

        # W_c̃x / W_c̃c — the reset-state path of Eqn. (2c).
        self.w_cx = make_weight_layer(
            input_size, hidden_size, self.input_block_size, rng
        )
        self.w_cc = make_weight_layer(hidden_size, hidden_size, block_size, rng)
        self.bias_c = Parameter(zeros((hidden_size,)))

        # Inference-time activation overrides (see LSTMCell).
        self.sigmoid_fn = None
        self.tanh_fn = None

    def _sigmoid(self, x: Tensor) -> Tensor:
        return x.sigmoid() if self.sigmoid_fn is None else self.sigmoid_fn(x)

    def _tanh(self, x: Tensor) -> Tensor:
        return x.tanh() if self.tanh_fn is None else self.tanh_fn(x)

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))

    def forward(self, x: Tensor, state: Tensor) -> tuple[Tensor, Tensor]:
        c_prev = state
        hidden = self.hidden_size

        gates = self.w_zr_x(x) + self.w_zr_c(c_prev) + self.bias_zr
        update_gate = self._sigmoid(gates[..., 0:hidden])  # z_t
        reset_gate = self._sigmoid(gates[..., hidden : 2 * hidden])  # r_t

        reset_state = self._tanh(
            self.w_cx(x) + self.w_cc(reset_gate * c_prev) + self.bias_c
        )  # c̃_t
        cell = (1.0 - update_gate) * c_prev + update_gate * reset_state
        return cell, cell

    # ------------------------------------------------------------------
    def weight_layer_roles(self) -> list[tuple[str, Module, str]]:
        """Large matrices and Phase-I roles (see LSTMCell.weight_layer_roles)."""
        return [
            ("w_zr_x", self.w_zr_x, "input"),
            ("w_zr_c", self.w_zr_c, "recurrent"),
            ("w_cx", self.w_cx, "input"),
            ("w_cc", self.w_cc, "recurrent"),
        ]

    def __repr__(self) -> str:
        return (
            f"GRUCell(in={self.input_size}, hidden={self.hidden_size}, "
            f"block={self.block_size})"
        )
