"""Model checkpointing: save/load a StackedRNNClassifier with its spec.

A checkpoint is a single ``.npz`` holding every parameter plus a JSON-encoded
:class:`RNNSpec`, so a model can be rebuilt without any out-of-band
information — the property a deployment flow (Phase II, code generation)
needs from a training flow (Phase I).

Every artifact carries a ``schema`` name and a ``version`` integer in its
header.  The loader refuses anything it does not understand with a
:class:`repro.errors.SerializationError` (a ``RuntimeError``): a checkpoint
written by a different format revision, or a different artifact family
entirely (e.g. a :class:`repro.runtime.CompiledModel` archive), must fail
loudly rather than mis-load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.config import RNNSpec
from repro.errors import SerializationError
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "save_model",
    "load_model",
    "spec_to_dict",
    "spec_from_dict",
    "read_header",
    "check_schema",
    "MODEL_SCHEMA",
    "MODEL_VERSION",
]

#: Schema name stamped into every checkpoint written by :func:`save_model`.
MODEL_SCHEMA = "repro/stacked-rnn-classifier"

#: Format revision.  Version 1 (PR 1) predates the ``schema`` field; the
#: loader accepts it for backward compatibility with headers that carry no
#: schema at all.
MODEL_VERSION = 2

_COMPATIBLE_VERSIONS = (1, 2)


def spec_to_dict(spec: RNNSpec) -> dict:
    """JSON-safe encoding of an RNNSpec."""
    return {
        "cell_type": spec.cell_type,
        "input_size": spec.input_size,
        "layer_sizes": list(spec.layer_sizes),
        "output_size": spec.output_size,
        "block_sizes": list(spec.block_sizes),
        "peephole": spec.peephole,
        "projection_size": spec.projection_size,
        "io_block_size": spec.io_block_size,
    }


def spec_from_dict(payload: dict) -> RNNSpec:
    return RNNSpec(
        cell_type=payload["cell_type"],
        input_size=payload["input_size"],
        layer_sizes=tuple(payload["layer_sizes"]),
        output_size=payload["output_size"],
        block_sizes=tuple(payload["block_sizes"]),
        peephole=payload["peephole"],
        projection_size=payload["projection_size"],
        io_block_size=payload["io_block_size"],
    )


def read_header(path: Path | str) -> dict:
    """The raw JSON header of a repro ``.npz`` artifact.

    Raises :class:`SerializationError` when the file is not a repro archive
    at all.  Used by both this loader and :mod:`repro.runtime` so the two
    artifact families can point a confused caller at the right loader.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if "__header__" not in archive:
            raise SerializationError(
                f"{path} is not a repro artifact (no __header__ entry)"
            )
        return json.loads(str(archive["__header__"]))


def check_schema(
    header: dict,
    path: Path | str,
    schema: str,
    versions: tuple[int, ...],
    hint: str = "",
) -> None:
    """Validate an artifact header, raising a loud, specific error.

    ``schema`` may be absent from version-1 headers (written before the
    field existed); any *present* schema must match exactly.
    """
    found_schema = header.get("schema")
    if found_schema is not None and found_schema != schema:
        message = (
            f"{path} holds a {found_schema!r} artifact, but this loader "
            f"reads {schema!r}"
        )
        if hint:
            message += f"; {hint}"
        raise SerializationError(message)
    version = header.get("version")
    if version not in versions:
        raise SerializationError(
            f"{path} was written with {schema!r} version {version!r}; this "
            f"loader supports version(s) {', '.join(map(str, versions))} — "
            "re-save the artifact with the current library"
        )


def save_model(model: StackedRNNClassifier, path: Path | str) -> None:
    """Write parameters + spec + structured flag to a ``.npz`` checkpoint."""
    header = json.dumps(
        {
            "schema": MODEL_SCHEMA,
            "version": MODEL_VERSION,
            "spec": spec_to_dict(model.spec),
            "structured": model.structured,
        }
    )
    arrays = {f"param/{name}": data for name, data in model.state_dict().items()}
    np.savez(Path(path), __header__=np.array(header), **arrays)


def load_model(path: Path | str) -> StackedRNNClassifier:
    """Rebuild a model from a checkpoint written by :func:`save_model`.

    Raises :class:`SerializationError` on a schema or version mismatch —
    including when handed a :class:`repro.runtime.CompiledModel` artifact,
    which has its own loader.
    """
    header = read_header(path)
    check_schema(
        header,
        path,
        MODEL_SCHEMA,
        _COMPATIBLE_VERSIONS,
        hint="compiled runtime artifacts load via repro.runtime.CompiledModel.load()",
    )
    with np.load(Path(path), allow_pickle=False) as archive:
        spec = spec_from_dict(header["spec"])
        model = StackedRNNClassifier(
            spec,
            structured=header["structured"],
            rng=np.random.default_rng(0),
        )
        state = {
            name[len("param/"):]: archive[name]
            for name in archive.files
            if name.startswith("param/")
        }
    model.load_state_dict(state)
    return model
