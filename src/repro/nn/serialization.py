"""Model checkpointing: save/load a StackedRNNClassifier with its spec.

A checkpoint is a single ``.npz`` holding every parameter plus a JSON-encoded
:class:`RNNSpec`, so a model can be rebuilt without any out-of-band
information — the property a deployment flow (Phase II, code generation)
needs from a training flow (Phase I).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.config import RNNSpec
from repro.errors import ShapeError
from repro.nn.rnn import StackedRNNClassifier

__all__ = ["save_model", "load_model", "spec_to_dict", "spec_from_dict"]

_FORMAT_VERSION = 1


def spec_to_dict(spec: RNNSpec) -> dict:
    """JSON-safe encoding of an RNNSpec."""
    return {
        "cell_type": spec.cell_type,
        "input_size": spec.input_size,
        "layer_sizes": list(spec.layer_sizes),
        "output_size": spec.output_size,
        "block_sizes": list(spec.block_sizes),
        "peephole": spec.peephole,
        "projection_size": spec.projection_size,
        "io_block_size": spec.io_block_size,
    }


def spec_from_dict(payload: dict) -> RNNSpec:
    return RNNSpec(
        cell_type=payload["cell_type"],
        input_size=payload["input_size"],
        layer_sizes=tuple(payload["layer_sizes"]),
        output_size=payload["output_size"],
        block_sizes=tuple(payload["block_sizes"]),
        peephole=payload["peephole"],
        projection_size=payload["projection_size"],
        io_block_size=payload["io_block_size"],
    )


def save_model(model: StackedRNNClassifier, path: Path | str) -> None:
    """Write parameters + spec + structured flag to a ``.npz`` checkpoint."""
    header = json.dumps(
        {
            "version": _FORMAT_VERSION,
            "spec": spec_to_dict(model.spec),
            "structured": model.structured,
        }
    )
    arrays = {f"param/{name}": data for name, data in model.state_dict().items()}
    np.savez(Path(path), __header__=np.array(header), **arrays)


def load_model(path: Path | str) -> StackedRNNClassifier:
    """Rebuild a model from a checkpoint written by :func:`save_model`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if "__header__" not in archive:
            raise ShapeError(f"{path} is not a repro checkpoint")
        header = json.loads(str(archive["__header__"]))
        if header.get("version") != _FORMAT_VERSION:
            raise ShapeError(
                f"unsupported checkpoint version {header.get('version')}"
            )
        spec = spec_from_dict(header["spec"])
        model = StackedRNNClassifier(
            spec,
            structured=header["structured"],
            rng=np.random.default_rng(0),
        )
        state = {
            name[len("param/"):]: archive[name]
            for name in archive.files
            if name.startswith("param/")
        }
    model.load_state_dict(state)
    return model
