"""Module/Parameter base classes: a minimal stateful layer abstraction.

Mirrors the familiar ``nn.Module`` contract: named parameters, recursive
submodule discovery, ``state_dict`` round-trips.  Kept deliberately small —
only what the LSTM/GRU stacks and the ADMM trainer need.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ShapeError
from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor; always requires gradients."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers: tracks parameters and submodules by attribute."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total count of trainable scalars (used by compression accounting)."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ShapeError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
