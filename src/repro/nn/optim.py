"""Optimizers: SGD (with momentum) and Adam, plus gradient clipping.

The paper stresses that "ADMM-based training is compatible with recent
progress in stochastic gradient descent (e.g., ADAM), which is not supported
in the training method of C-LSTM" — so Adam is the default optimizer for the
ADMM subproblem here, exactly the compatibility the paper claims.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Standard practice for RNN training (exploding gradients, paper Sec. I
    background); returns the pre-clip norm for logging.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class Optimizer:
    """Base optimizer: holds parameters, applies per-parameter updates."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise TrainingError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
