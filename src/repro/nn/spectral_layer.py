"""FFT-domain circulant layer: the authentic C-LSTM parametrization.

C-LSTM [24] trains block-circulant LSTMs *in the frequency domain*: the
trainable parameters are the block spectra ``FFT(w_ij)`` themselves, which
is also exactly what the FPGA stores in BRAM.  This layer implements that
parametrization — real and imaginary half-spectrum banks with the Hermitian
edge bins (DC and Nyquist) pinned real — so the reproduction can train the
same object the hardware consumes, with no transform at deployment time.

Mathematically this is a linear reparametrization of
:class:`repro.nn.circulant_layer.CirculantLinear` (the rfft is a bijection),
so the function class is identical; what differs is the optimizer geometry —
which is the point of comparing the two training styles.

The custom autograd op uses the adjoint identities (with ``F = Lb/2 + 1``
stored bins, middle bins carrying weight 2 because each represents a
conjugate pair):

* ``dS = d ∘ rfft(g) ∘ conj(rfft(x))`` with ``d = 1/Lb`` at the edges and
  ``2/Lb`` in the middle;
* ``dx = irfft(rfft(g) ∘ conj(S))`` — identical to the time-domain layer's
  backward, as it must be.
"""

from __future__ import annotations

import numpy as np

from repro.config import validate_block_size
from repro.errors import ShapeError
from repro.nn.autograd import Tensor
from repro.nn.circulant_layer import CirculantLinear, _padded
from repro.nn.init import zeros
from repro.nn.module import Module, Parameter

__all__ = ["SpectralCirculantLinear"]


def _bin_weights(block_size: int) -> np.ndarray:
    """Per-bin real-degree-of-freedom weights: 1 at DC/Nyquist, 2 between."""
    bins = block_size // 2 + 1
    weights = np.full(bins, 2.0)
    weights[0] = 1.0
    if block_size % 2 == 0:
        weights[-1] = 1.0
    return weights


class SpectralCirculantLinear(Module):
    """Block-circulant affine map trained directly on the block spectra."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        block_size: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        validate_block_size(block_size)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        self.padded_in = _padded(in_features, block_size)
        self.padded_out = _padded(out_features, block_size)
        p = self.padded_out // block_size
        q = self.padded_in // block_size
        self.num_block_rows = p
        self.num_block_cols = q

        # Initialize from Xavier-scaled time-domain vectors so the induced
        # dense matrix matches CirculantLinear's starting distribution.
        bound = np.sqrt(6.0 / (self.padded_in + self.padded_out))
        vectors = rng.uniform(-bound, bound, size=(p, q, block_size))
        spectra = np.fft.rfft(vectors, axis=-1)
        self.spec_re = Parameter(spectra.real.copy())
        self.spec_im = Parameter(spectra.imag.copy())
        self.bias = Parameter(zeros((out_features,))) if bias else None
        self._edge_mask = np.ones(block_size // 2 + 1)
        self._edge_mask[0] = 0.0
        if block_size % 2 == 0:
            self._edge_mask[-1] = 0.0

    # ------------------------------------------------------------------
    def _spectra(self) -> np.ndarray:
        """Complex spectra with Hermitian edge bins pinned real."""
        return self.spec_re.data + 1j * (self.spec_im.data * self._edge_mask)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"SpectralCirculantLinear expected last dim "
                f"{self.in_features}, got {x.shape}"
            )
        block = self.block_size
        spec_re, spec_im = self.spec_re, self.spec_im
        edge_mask = self._edge_mask
        weights_f = self._spectra()

        squeeze = x.ndim == 1
        data = x.data.reshape(1, -1) if squeeze else x.data
        batch = data.shape[0]
        if self.padded_in != self.in_features:
            data = np.pad(data, ((0, 0), (0, self.padded_in - self.in_features)))
        x_blocks = data.reshape(batch, self.num_block_cols, block)
        x_f = np.fft.rfft(x_blocks, axis=-1)
        y_f = np.einsum("ijf,bjf->bif", weights_f, x_f)
        y = np.fft.irfft(y_f, n=block, axis=-1).reshape(batch, self.padded_out)
        y = y[:, : self.out_features]
        if squeeze:
            y = y.reshape(-1)

        bin_weight = _bin_weights(block) / block

        def backward(grad: np.ndarray) -> None:
            g = grad.reshape(batch, -1)
            if self.padded_out != self.out_features:
                g = np.pad(
                    g, ((0, 0), (0, self.padded_out - self.out_features))
                )
            g_blocks = g.reshape(batch, self.num_block_rows, block)
            g_f = np.fft.rfft(g_blocks, axis=-1)
            if spec_re.requires_grad or spec_im.requires_grad:
                # dS = d ∘ Σ_b rfft(g) conj(rfft(x))
                ds = np.einsum("bif,bjf->ijf", g_f, np.conj(x_f)) * bin_weight
                if spec_re.requires_grad:
                    spec_re._accumulate(ds.real)
                if spec_im.requires_grad:
                    spec_im._accumulate(ds.imag * edge_mask)
            if x.requires_grad:
                dx_f = np.einsum("ijf,bif->bjf", np.conj(weights_f), g_f)
                dx = np.fft.irfft(dx_f, n=block, axis=-1).reshape(
                    batch, self.padded_in
                )[:, : self.in_features]
                x._accumulate(dx.reshape(x.shape))

        out = Tensor._from_op(y, (spec_re, spec_im, x), backward)
        if self.bias is not None:
            out = out + self.bias
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_circulant(cls, layer: CirculantLinear) -> "SpectralCirculantLinear":
        """Reparametrize a time-domain circulant layer (exact)."""
        spectral = cls(
            layer.in_features,
            layer.out_features,
            layer.block_size,
            bias=layer.bias is not None,
        )
        spectra = np.fft.rfft(layer.weight_vectors.data, axis=-1)
        spectral.spec_re.data = spectra.real.copy()
        spectral.spec_im.data = spectra.imag.copy()
        if layer.bias is not None:
            spectral.bias.data = layer.bias.data.copy()
        return spectral

    def to_circulant(self) -> CirculantLinear:
        """Transform back to the time-domain parametrization (exact)."""
        layer = CirculantLinear(
            self.in_features,
            self.out_features,
            self.block_size,
            bias=self.bias is not None,
        )
        layer.weight_vectors.data = np.fft.irfft(
            self._spectra(), n=self.block_size, axis=-1
        )
        if self.bias is not None:
            layer.bias.data = self.bias.data.copy()
        return layer

    def __repr__(self) -> str:
        return (
            f"SpectralCirculantLinear({self.in_features}, {self.out_features}, "
            f"block={self.block_size})"
        )
