"""Batching utilities for variable-length sequences.

Utterances have unequal frame counts; a batch pads them to the longest
sequence and carries a mask so the loss and the PER computation ignore
padding.  Length-bucketed iteration keeps padding waste low, the same way
production ASR training pipelines batch utterances.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["SequenceBatch", "pad_batch", "iterate_batches"]


@dataclass(frozen=True)
class SequenceBatch:
    """A padded minibatch: features (T, B, D), labels (T, B), mask (T, B)."""

    features: np.ndarray
    labels: np.ndarray
    mask: np.ndarray
    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.features.ndim != 3:
            raise ShapeError(f"features must be (T, B, D), got {self.features.shape}")
        if self.labels.shape != self.features.shape[:2]:
            raise ShapeError(
                f"labels {self.labels.shape} != features frame grid "
                f"{self.features.shape[:2]}"
            )
        if self.mask.shape != self.labels.shape:
            raise ShapeError(f"mask shape {self.mask.shape} != {self.labels.shape}")

    @property
    def batch_size(self) -> int:
        return self.features.shape[1]

    @property
    def max_length(self) -> int:
        return self.features.shape[0]

    @property
    def num_frames(self) -> int:
        return int(sum(self.lengths))


def pad_batch(
    features: Sequence[np.ndarray], labels: Sequence[np.ndarray]
) -> SequenceBatch:
    """Pad per-utterance (T_i, D) features and (T_i,) labels to one batch."""
    if len(features) != len(labels) or not features:
        raise ShapeError("features and labels must be equal-length, non-empty")
    lengths = []
    feature_dim = features[0].shape[1]
    for feat, lab in zip(features, labels):
        if feat.ndim != 2 or feat.shape[1] != feature_dim:
            raise ShapeError(f"inconsistent feature shape {feat.shape}")
        if lab.shape != (feat.shape[0],):
            raise ShapeError(
                f"labels {lab.shape} do not match features {feat.shape}"
            )
        lengths.append(feat.shape[0])

    max_len, batch = max(lengths), len(features)
    padded_features = np.zeros((max_len, batch, feature_dim))
    padded_labels = np.zeros((max_len, batch), dtype=np.int64)
    mask = np.zeros((max_len, batch))
    for b, (feat, lab, length) in enumerate(zip(features, labels, lengths)):
        padded_features[:length, b] = feat
        padded_labels[:length, b] = lab
        mask[:length, b] = 1.0
    return SequenceBatch(padded_features, padded_labels, mask, tuple(lengths))


def iterate_batches(
    features: Sequence[np.ndarray],
    labels: Sequence[np.ndarray],
    batch_size: int,
    rng: np.random.Generator | None = None,
    bucket_by_length: bool = True,
) -> Iterator[SequenceBatch]:
    """Yield shuffled, optionally length-bucketed minibatches."""
    if batch_size < 1:
        raise ShapeError("batch_size must be at least 1")
    order = np.arange(len(features))
    if rng is not None:
        rng.shuffle(order)
    if bucket_by_length:
        order = np.array(sorted(order, key=lambda i: features[i].shape[0]))
        # Shuffle whole buckets so epochs differ while padding stays low.
        starts = np.arange(0, len(order), batch_size)
        if rng is not None:
            rng.shuffle(starts)
    else:
        starts = np.arange(0, len(order), batch_size)
    for start in starts:
        chosen = order[start : start + batch_size]
        yield pad_batch(
            [features[i] for i in chosen], [labels[i] for i in chosen]
        )
