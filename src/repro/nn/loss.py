"""Losses: masked framewise cross-entropy for sequence classification.

The paper's acoustic model is trained framewise (each 10 ms frame carries a
phone label); utterances in a batch have unequal lengths, so the loss masks
padded frames out of both the sum and the normalizer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.autograd import Tensor, as_tensor
from repro.nn.functional import log_softmax, one_hot

__all__ = ["cross_entropy", "sequence_cross_entropy", "frame_accuracy"]


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over the leading axes; labels are integer classes."""
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != logits.shape[:-1]:
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs * one_hot(labels, logits.shape[-1])
    return -picked.sum() * (1.0 / labels.size)


def sequence_cross_entropy(
    logits: Tensor, labels: np.ndarray, mask: np.ndarray
) -> Tensor:
    """Masked framewise cross-entropy.

    ``logits`` is ``(T, B, C)``, ``labels`` ``(T, B)`` int, ``mask`` ``(T, B)``
    with 1 for real frames and 0 for padding.  Padded label entries may hold
    any valid class index; they receive zero weight.
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    mask = np.asarray(mask, dtype=np.float64)
    if labels.shape != logits.shape[:-1] or mask.shape != labels.shape:
        raise ShapeError(
            f"shapes disagree: logits {logits.shape}, labels {labels.shape}, "
            f"mask {mask.shape}"
        )
    total = float(mask.sum())
    if total == 0:
        raise ShapeError("mask selects no frames")
    log_probs = log_softmax(logits, axis=-1)
    picked = (log_probs * one_hot(labels, logits.shape[-1])).sum(axis=-1)
    return -(picked * Tensor(mask)).sum() * (1.0 / total)


def frame_accuracy(logits: Tensor, labels: np.ndarray, mask: np.ndarray) -> float:
    """Fraction of unmasked frames whose argmax matches the label."""
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    mask = np.asarray(mask, dtype=bool)
    predictions = logits.data.argmax(axis=-1)
    if not mask.any():
        return 0.0
    return float((predictions[mask] == labels[mask]).mean())
