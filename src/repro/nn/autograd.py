"""A small reverse-mode automatic differentiation engine over numpy.

The paper trains its RNNs with stochastic gradient descent (plus the ADMM
proximal term, Sec. III-B).  No deep-learning framework is available in this
environment, so this module provides the substrate: a :class:`Tensor` wrapping
a numpy array, a dynamic computation graph, and exact gradients for every
operation the LSTM/GRU cells and the block-circulant layers need.

Design choices:

* float64 everywhere — RNNs are "very sensitive to accumulation of
  imprecisions" (paper Sec. I); quantization effects are studied separately
  and deliberately in :mod:`repro.hw.fixed_point`.
* Broadcasting follows numpy; gradients are un-broadcast by summing over the
  expanded axes.
* The block-circulant product (paper Eqn. 4) is a first-class primitive with
  an FFT-based forward *and* backward, so training a circulant layer costs
  ``O(n log n)`` like inference does.

Gradients are verified against central finite differences in
``tests/nn/test_autograd.py`` (see :func:`gradcheck`).
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "concat",
    "block_circulant_matvec",
    "gradcheck",
]

# Grad mode is per-thread (like torch): the parallel evaluation paths run
# inference in worker threads while another thread may be mid-training, so
# a process-global flag would let one thread's no_grad() silently drop the
# other's gradients.
_grad_state = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode).

    Scoped to the current thread; worker threads start with grad enabled
    and must enter their own ``no_grad()`` for inference.
    """
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def is_grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = cls(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the common loss case).
        """
        if not self.requires_grad:
            raise ShapeError("called backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free the closure so intermediate graphs are collectable.
                node._backward = None
                node._parents = ()

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._from_op(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise ShapeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if b.ndim == 1:
                    self._accumulate(np.outer(grad, b) if a.ndim == 2 else grad * b)
                else:
                    self._accumulate(grad @ np.swapaxes(b, -1, -2))
            if other.requires_grad:
                if a.ndim == 1:
                    other._accumulate(np.outer(a, grad) if b.ndim == 2 else a * grad)
                else:
                    other._accumulate(np.swapaxes(a, -1, -2) @ grad)

        return Tensor._from_op(a @ b, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
            np.exp(np.clip(self.data, None, 0))
            / (1.0 + np.exp(np.clip(self.data, None, 0))),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._from_op(self.data * mask, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._from_op(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._from_op(self.data[index], (self,), backward)

    def clip_norm(self, max_norm: float) -> "Tensor":
        """Differentiable-through-identity gradient clipping is *not* what this
        does — it rescales the value; used only on detached gradient arrays."""
        norm = float(np.linalg.norm(self.data))
        if norm <= max_norm or norm == 0.0:
            return self
        return self * (max_norm / norm)


def as_tensor(value) -> Tensor:
    """Wrap numpy arrays / scalars into a non-grad :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with exact gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._from_op(data, tensors, backward)


def block_circulant_matvec(weights: Tensor, inputs: Tensor) -> Tensor:
    """Multiply a block-circulant matrix by a batch of vectors (paper Eqn. 4).

    ``weights`` holds the block-defining vectors with shape ``(p, q, Lb)``;
    ``inputs`` has shape ``(batch, q * Lb)``.  The result has shape
    ``(batch, p * Lb)`` and equals ``x @ W.T`` for the dense block-circulant
    matrix ``W`` whose block ``(i, j)`` is the circulant matrix with first
    *column* ``weights[i, j]`` (the convention under which the paper's
    ``IFFT(FFT(w) ∘ FFT(x))`` identity holds exactly).

    Both forward and backward run through real FFTs, so training cost matches
    the paper's ``O(pq Lb log Lb)`` inference complexity.  The backward pass
    uses the adjoint identities:

    * ``dX = IFFT(conj(FFT(w)) ∘ FFT(dY))``  (transposed circulant = correlation)
    * ``dw = IFFT(conj(FFT(x)) ∘ FFT(dY))``
    """
    weights = as_tensor(weights)
    inputs = as_tensor(inputs)
    if weights.ndim != 3:
        raise ShapeError(f"weights must be (p, q, Lb), got {weights.shape}")
    p, q, block = weights.shape
    squeeze = inputs.ndim == 1
    x = inputs.data.reshape(1, -1) if squeeze else inputs.data
    if x.ndim != 2 or x.shape[1] != q * block:
        raise ShapeError(
            f"inputs must be (batch, {q * block}) for weights {weights.shape}, "
            f"got {inputs.shape}"
        )
    batch = x.shape[0]
    x_blocks = x.reshape(batch, q, block)

    weights_f = np.fft.rfft(weights.data, axis=-1)  # (p, q, F)
    x_f = np.fft.rfft(x_blocks, axis=-1)  # (batch, q, F)
    y_f = np.einsum("ijf,bjf->bif", weights_f, x_f)
    y = np.fft.irfft(y_f, n=block, axis=-1).reshape(batch, p * block)
    if squeeze:
        y = y.reshape(p * block)

    def backward(grad: np.ndarray) -> None:
        grad_blocks = grad.reshape(batch, p, block)
        grad_f = np.fft.rfft(grad_blocks, axis=-1)
        if inputs.requires_grad:
            dx_f = np.einsum("ijf,bif->bjf", np.conj(weights_f), grad_f)
            dx = np.fft.irfft(dx_f, n=block, axis=-1).reshape(batch, q * block)
            inputs._accumulate(dx.reshape(inputs.shape))
        if weights.requires_grad:
            dw_f = np.einsum("bjf,bif->ijf", np.conj(x_f), grad_f)
            dw = np.fft.irfft(dw_f, n=block, axis=-1)
            weights._accumulate(dw)

    return Tensor._from_op(y, (weights, inputs), backward)


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic gradients of ``fn(*inputs).sum()`` to central differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True on
    success so it can be asserted directly in tests.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.sum().backward()
    analytic = [
        None if t.grad is None else t.grad.copy() for t in inputs
    ]

    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for k in range(flat.size):
            original = flat[k]
            flat[k] = original + eps
            with no_grad():
                plus = float(fn(*inputs).sum().item())
            flat[k] = original - eps
            with no_grad():
                minus = float(fn(*inputs).sum().item())
            flat[k] = original
            numeric_flat[k] = (plus - minus) / (2 * eps)
        got = analytic[index]
        if got is None:
            raise AssertionError(f"input {index} received no gradient")
        if not np.allclose(got, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(got - numeric))
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs err {worst:.3e}"
            )
    return True
