"""LSTM cell and layer following the paper's Eqn. (1) (Sak et al. LSTMP).

Supports the three architecture options explored in Table I:

* **peephole** connections — the diagonal matrices ``Wic, Wfc, Woc`` of
  Eqns. (1a), (1b), (1e), implemented as point-wise multiplications.
* **projection** — the ``y_t = W_ym m_t`` output projection of Eqn. (1g)
  (the "projection (512)" column of Table I).
* **block-circulant weights** — each large matrix can independently be dense
  (``block_size=1``) or block-circulant; the non-recurrent input matrices may
  use a different (coarser) block size, which is the Phase-I fine-tuning knob.

The cell keeps the paper's fused-matrix view ``W(ifco)(xr) [x; y]`` as two
physical matrices ``W_x`` (input half) and ``W_r`` (recurrent half): the fused
form is a hardware scheduling detail, and splitting lets the two halves carry
different block sizes.

Note on Eqn. (1c): the paper prints ``g_t = σ(...)`` but defines ``h`` = tanh
as the cell activation and cites [22], whose cell-input activation is tanh.
``candidate_activation`` defaults to tanh; pass ``"sigmoid"`` for the literal
reading.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.init import zeros
from repro.nn.linear import DiagonalLinear, Linear
from repro.nn.module import Module, Parameter

__all__ = ["LSTMCell", "make_weight_layer"]


def make_weight_layer(
    in_features: int,
    out_features: int,
    block_size: int,
    rng: np.random.Generator,
) -> Module:
    """Dense :class:`Linear` for block size 1, else :class:`CirculantLinear`.

    Biases live on the cell, not on the weight layers, matching the paper's
    separation of weight matrices (BRAM 2/3/5) from bias vectors (BRAM 4).
    """
    if block_size <= 1:
        return Linear(in_features, out_features, bias=False, rng=rng)
    return CirculantLinear(
        in_features, out_features, block_size, bias=False, rng=rng
    )


class LSTMCell(Module):
    """One LSTM step: ``(x_t, (y_{t-1}, c_{t-1})) -> (y_t, c_t)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        peephole: bool = False,
        projection_size: int | None = None,
        block_size: int = 1,
        input_block_size: int | None = None,
        candidate_activation: str = "tanh",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if candidate_activation not in ("tanh", "sigmoid"):
            raise ConfigError(
                f"unknown candidate activation {candidate_activation!r}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.projection_size = projection_size
        self.peephole = peephole
        self.block_size = block_size
        self.input_block_size = (
            input_block_size if input_block_size is not None else block_size
        )
        self.candidate_activation = candidate_activation

        output_size = projection_size if projection_size is not None else hidden_size
        self.output_size = output_size

        # W(ifco)x — non-recurrent, may use the coarser io block size.
        self.w_x = make_weight_layer(
            input_size, 4 * hidden_size, self.input_block_size, rng
        )
        # W(ifco)r — recurrent, uses the layer block size.
        self.w_r = make_weight_layer(output_size, 4 * hidden_size, block_size, rng)
        self.bias = Parameter(zeros((4 * hidden_size,)))

        if peephole:
            self.peep_ic = DiagonalLinear(hidden_size, rng=rng)
            self.peep_fc = DiagonalLinear(hidden_size, rng=rng)
            self.peep_oc = DiagonalLinear(hidden_size, rng=rng)

        if projection_size is not None:
            # W_ym — non-recurrent output matrix (Eqn. 1g).
            self.w_ym = make_weight_layer(
                hidden_size, projection_size, self.input_block_size, rng
            )

        # Inference-time activation overrides (hardware PWL approximations,
        # installed by repro.hw.quantize.apply_pwl_activations).  None means
        # the exact autograd-capable activations.
        self.sigmoid_fn = None
        self.tanh_fn = None

    def _sigmoid(self, x: Tensor) -> Tensor:
        return x.sigmoid() if self.sigmoid_fn is None else self.sigmoid_fn(x)

    def _tanh(self, x: Tensor) -> Tensor:
        return x.tanh() if self.tanh_fn is None else self.tanh_fn(x)

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Zero ``(y, c)`` state (paper: "c_t and m_t are initialized to zero")."""
        return (
            Tensor(np.zeros((batch_size, self.output_size))),
            Tensor(np.zeros((batch_size, self.hidden_size))),
        )

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        y_prev, c_prev = state
        hidden = self.hidden_size

        gates = self.w_x(x) + self.w_r(y_prev) + self.bias
        z_i = gates[..., 0 * hidden : 1 * hidden]
        z_f = gates[..., 1 * hidden : 2 * hidden]
        z_g = gates[..., 2 * hidden : 3 * hidden]
        z_o = gates[..., 3 * hidden : 4 * hidden]

        if self.peephole:
            z_i = z_i + self.peep_ic(c_prev)
            z_f = z_f + self.peep_fc(c_prev)

        input_gate = self._sigmoid(z_i)
        forget_gate = self._sigmoid(z_f)
        if self.candidate_activation == "tanh":
            candidate = self._tanh(z_g)
        else:
            candidate = self._sigmoid(z_g)

        cell = forget_gate * c_prev + candidate * input_gate

        if self.peephole:
            z_o = z_o + self.peep_oc(cell)
        output_gate = self._sigmoid(z_o)

        cell_output = output_gate * self._tanh(cell)  # m_t = o_t ⊙ h(c_t)
        if self.projection_size is not None:
            output = self.w_ym(cell_output)  # y_t = W_ym m_t
        else:
            output = cell_output
        return output, (output, cell)

    # ------------------------------------------------------------------
    def weight_layer_roles(self) -> list[tuple[str, Module, str]]:
        """The cell's large matrices and their Phase-I roles.

        Returns ``(attribute_name, layer, role)`` with role ``"input"`` for
        non-recurrent matrices (eligible for the coarser io block size),
        ``"recurrent"`` otherwise.  Peepholes and biases are vectors and are
        never compressed (paper Sec. III-A).
        """
        layers = [("w_x", self.w_x, "input"), ("w_r", self.w_r, "recurrent")]
        if self.projection_size is not None:
            layers.append(("w_ym", self.w_ym, "output"))
        return layers

    def __repr__(self) -> str:
        return (
            f"LSTMCell(in={self.input_size}, hidden={self.hidden_size}, "
            f"peephole={self.peephole}, projection={self.projection_size}, "
            f"block={self.block_size})"
        )
