"""Exception hierarchy for the E-RNN reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the library's failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An RNN or accelerator specification is inconsistent or unsupported."""


class ShapeError(ReproError):
    """An array has a shape incompatible with the requested operation."""


class BlockSizeError(ConfigError):
    """A block size does not divide the matrix dimensions or is not a power of 2."""


class RegistryError(ConfigError):
    """A component registry lookup or registration failed (unknown or duplicate name)."""


class FitError(ReproError):
    """A model does not fit the targeted FPGA resources (BRAM, DSP, LUT)."""


class TrainingError(ReproError):
    """Training diverged or was configured inconsistently."""


class QuantizationError(ReproError):
    """A fixed-point format cannot represent the requested values."""


class SchedulingError(ReproError):
    """The HLS scheduler could not produce a legal schedule."""


class DecodingError(ReproError):
    """A decoder received malformed posteriors or labels."""


class SerializationError(ReproError, RuntimeError):
    """A saved artifact has the wrong schema or version for this loader.

    Subclasses :class:`RuntimeError` so schema/version mismatches fail
    loudly even for callers that only guard against the standard hierarchy
    — a checkpoint or compiled-model artifact must never be mis-loaded
    across format revisions.
    """
