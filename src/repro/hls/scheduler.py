"""Operation scheduler (Fig. 13, "Operation Scheduler").

Maps the operation graph onto the CU's two engines — the PE array (block
matrix-vector products) and the point-wise multiplier-adder block — and
groups operations into coarse-grained pipeline (CGPipe) stages.

The paper motivates the scheduler with the skew of the work distribution:
"the complexity of matrix-vector multiplication ... is 128× as that of
point-wise multiplication", so the stage cuts fall at matrix boundaries:

* every ``block_matvec`` node gets stage ``2·level − 1`` where ``level`` is
  one plus the number of matvec ancestors on its longest dependency path;
* every other node gets the even stage following the last matvec it depends
  on.

For the paper's LSTM this yields exactly the Fig. 11 structure (stage 1 =
``W(ifco)(xr)``, stage 2 = point-wise/activations, stage 3 = ``W_ym``), and
for the GRU the Fig. 12 structure (two matvec stages + point-wise), which the
CU implements with TDM sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.config import AccelSpec
from repro.errors import SchedulingError
from repro.hls.templates import get_template, matvec_work, pointwise_work
from repro.hw.cu import POINTWISE_LANES, STAGE_OVERHEAD_CYCLES

__all__ = ["ScheduledOp", "Schedule", "schedule_graph"]


@dataclass(frozen=True)
class ScheduledOp:
    """One operation's placement: CGPipe stage, engine, start, duration."""

    name: str
    op: str
    stage: int
    engine: str
    start_cycle: float
    duration_cycles: float

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.duration_cycles


@dataclass
class Schedule:
    """A complete schedule with per-stage and per-frame cycle counts."""

    ops: list[ScheduledOp] = field(default_factory=list)
    stage_cycles: dict[int, float] = field(default_factory=dict)
    overhead_cycles: float = 0.0

    @property
    def num_stages(self) -> int:
        return len(self.stage_cycles)

    @property
    def frame_cycles(self) -> float:
        """Serial frame latency: the recurrence forbids intra-sequence overlap
        (see repro.hw.cu), so stages execute back to back per frame."""
        return sum(self.stage_cycles.values()) + self.overhead_cycles

    def ops_in_stage(self, stage: int) -> list[ScheduledOp]:
        return sorted(
            (op for op in self.ops if op.stage == stage),
            key=lambda op: op.start_cycle,
        )


def _matvec_levels(graph: nx.DiGraph) -> dict[str, int]:
    """Longest-path matvec depth per node (matvec nodes count themselves)."""
    levels: dict[str, int] = {}
    for node in nx.topological_sort(graph):
        best = 0
        for pred in graph.predecessors(node):
            best = max(best, levels[pred])
        if graph.nodes[node]["op"] == "block_matvec":
            best += 1
        levels[node] = best
    return levels


def _assign_stages(graph: nx.DiGraph) -> dict[str, int]:
    levels = _matvec_levels(graph)
    stages: dict[str, int] = {}
    for node, data in graph.nodes(data=True):
        if data["op"] in ("source",):
            stages[node] = 0
        elif data["op"] == "block_matvec":
            stages[node] = 2 * levels[node] - 1
        else:
            # Point-wise/sink nodes run after the matvecs they depend on.
            stages[node] = 2 * levels[node] if levels[node] > 0 else 1
    return stages


def _op_duration(
    data: dict, accel: AccelSpec, pes_per_cu: int, pe_efficiency: float
) -> float:
    op = data["op"]
    params = data["params"]
    if op == "block_matvec":
        work = matvec_work(
            params["rows"], params["cols"], params["block_size"],
            accel.weight_bits,
        )
        return work / (pes_per_cu * pe_efficiency)
    if op in ("pointwise_mul", "pointwise_add", "sigmoid", "tanh", "buffer"):
        work = pointwise_work(params["width"], accel.weight_bits)
        return max(1.0, work / POINTWISE_LANES)
    return 0.0  # source / sink


def schedule_graph(
    graph: nx.DiGraph,
    accel: AccelSpec,
    pes_per_cu: int,
    pe_efficiency: float = 1.0,
    stage_overhead_count: int | None = None,
) -> Schedule:
    """List-schedule the graph; returns placement plus cycle accounting.

    Within a stage, operations start as soon as their predecessors in the
    same stage finish (cross-stage dependencies are satisfied by the stage
    ordering and double buffers).  Matvec ops on the PE array serialize
    against each other (the array is one shared engine); point-wise ops
    serialize on the multiplier-adder block.

    ``pe_efficiency`` carries the CU-level calibrations (C-LSTM's
    unoptimized PEs, the GRU CU's TDM fusion).  ``stage_overhead_count``
    overrides how many stage boundaries pay fill/drain overhead — the GRU CU
    runs its matvec stages on the same hardware by TDM (Fig. 12), so it pays
    for two boundaries, not three.
    """
    if pes_per_cu < 1:
        raise SchedulingError("scheduler needs at least one PE")
    stages = _assign_stages(graph)

    ops: list[ScheduledOp] = []
    finish: dict[str, float] = {}
    engine_free: dict[tuple[int, str], float] = {}
    stage_cycles: dict[int, float] = {}

    for node in nx.topological_sort(graph):
        data = graph.nodes[node]
        template = get_template(data["op"])
        stage = stages[node]
        duration = _op_duration(data, accel, pes_per_cu, pe_efficiency)
        # Ready when same-stage predecessors finish; earlier stages are
        # decoupled by double buffers.
        ready = max(
            (finish[p] for p in graph.predecessors(node) if stages[p] == stage),
            default=0.0,
        )
        engine_key = (stage, template.engine)
        if template.engine != "none":
            start = max(ready, engine_free.get(engine_key, 0.0))
            engine_free[engine_key] = start + duration
        else:
            start = ready
        finish[node] = start + duration
        if stage > 0:
            stage_cycles[stage] = max(stage_cycles.get(stage, 0.0), finish[node])
        ops.append(
            ScheduledOp(
                name=node,
                op=data["op"],
                stage=stage,
                engine=template.engine,
                start_cycle=start,
                duration_cycles=duration,
            )
        )

    # Sink-only trailing stages carry no work and are not physical CGPipe
    # stages — drop them before counting boundaries.
    stage_cycles = {s: c for s, c in stage_cycles.items() if c > 0}
    boundaries = (
        stage_overhead_count
        if stage_overhead_count is not None
        else max(len(stage_cycles), 1)
    )
    overhead = STAGE_OVERHEAD_CYCLES * boundaries
    return Schedule(ops=ops, stage_cycles=stage_cycles, overhead_cycles=overhead)
