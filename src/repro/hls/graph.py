"""Operation-graph generator (Fig. 13, "Graph Generator").

Unrolls one timestep of an LSTM/GRU cell stack into a directed acyclic
dependency graph of primitive operations.  As the paper describes, "we
deliberately remove the feedback edges of c_t and y_t, which are taken care
of by the double-buffer mechanism" — the previous-step state enters as a
source node, so the graph is a DAG the scheduler can pipeline.

Node attributes: ``op`` (template name), ``params`` (shape/width info the
templates and the work models consume), ``layer`` (stack index).
"""

from __future__ import annotations

import networkx as nx

from repro.config import RNNSpec
from repro.errors import ConfigError

__all__ = ["build_operation_graph", "matvec_nodes", "validate_graph"]


def _role_block(spec: RNNSpec, layer: int, role: str) -> int:
    base = spec.effective_block_sizes[layer]
    if role in ("input", "output") and spec.io_block_size is not None:
        return spec.io_block_size
    return base


class _GraphBuilder:
    def __init__(self, spec: RNNSpec):
        self.spec = spec
        self.graph = nx.DiGraph()

    def add(self, name: str, op: str, layer: int, deps: list[str], **params) -> str:
        if name in self.graph:
            raise ConfigError(f"duplicate node {name}")
        self.graph.add_node(name, op=op, layer=layer, params=params)
        for dep in deps:
            if dep not in self.graph:
                raise ConfigError(f"dependency {dep} of {name} does not exist")
            self.graph.add_edge(dep, name)
        return name

    # ------------------------------------------------------------------
    def build_lstm_layer(self, layer: int, x_node: str, in_size: int) -> str:
        spec = self.spec
        hidden = spec.layer_sizes[layer]
        out_size = spec.projection_size or hidden
        block = _role_block(spec, layer, "recurrent")
        in_block = _role_block(spec, layer, "input")
        tag = f"l{layer}"

        y_prev = self.add(f"{tag}.y_prev", "source", layer, [], width=out_size)
        c_prev = self.add(f"{tag}.c_prev", "source", layer, [], width=hidden)

        wx = self.add(
            f"{tag}.matvec_wx", "block_matvec", layer, [x_node],
            rows=4 * hidden, cols=in_size, block_size=in_block, matrix="w_x",
        )
        wr = self.add(
            f"{tag}.matvec_wr", "block_matvec", layer, [y_prev],
            rows=4 * hidden, cols=out_size, block_size=block, matrix="w_r",
        )
        gates = self.add(
            f"{tag}.add_gates", "pointwise_add", layer, [wx, wr],
            width=4 * hidden,
        )

        if spec.peephole:
            peep_i = self.add(
                f"{tag}.peep_ic", "pointwise_mul", layer, [c_prev], width=hidden
            )
            peep_f = self.add(
                f"{tag}.peep_fc", "pointwise_mul", layer, [c_prev], width=hidden
            )
            gate_i_in = self.add(
                f"{tag}.add_peep_i", "pointwise_add", layer, [gates, peep_i],
                width=hidden,
            )
            gate_f_in = self.add(
                f"{tag}.add_peep_f", "pointwise_add", layer, [gates, peep_f],
                width=hidden,
            )
        else:
            gate_i_in = gate_f_in = gates

        sig_i = self.add(f"{tag}.sigmoid_i", "sigmoid", layer, [gate_i_in], width=hidden)
        sig_f = self.add(f"{tag}.sigmoid_f", "sigmoid", layer, [gate_f_in], width=hidden)
        act_g = self.add(f"{tag}.tanh_g", "tanh", layer, [gates], width=hidden)

        mul_f = self.add(
            f"{tag}.mul_f_cprev", "pointwise_mul", layer, [sig_f, c_prev], width=hidden
        )
        mul_g = self.add(
            f"{tag}.mul_g_i", "pointwise_mul", layer, [act_g, sig_i], width=hidden
        )
        cell = self.add(
            f"{tag}.add_cell", "pointwise_add", layer, [mul_f, mul_g], width=hidden
        )

        if spec.peephole:
            peep_o = self.add(
                f"{tag}.peep_oc", "pointwise_mul", layer, [cell], width=hidden
            )
            gate_o_in = self.add(
                f"{tag}.add_peep_o", "pointwise_add", layer, [gates, peep_o],
                width=hidden,
            )
        else:
            gate_o_in = gates
        sig_o = self.add(f"{tag}.sigmoid_o", "sigmoid", layer, [gate_o_in], width=hidden)
        tanh_c = self.add(f"{tag}.tanh_c", "tanh", layer, [cell], width=hidden)
        cell_out = self.add(
            f"{tag}.mul_m", "pointwise_mul", layer, [sig_o, tanh_c], width=hidden
        )

        self.add(f"{tag}.c_out", "sink", layer, [cell], width=hidden)
        if spec.projection_size is not None:
            proj = self.add(
                f"{tag}.matvec_wym", "block_matvec", layer, [cell_out],
                rows=spec.projection_size, cols=hidden,
                block_size=_role_block(spec, layer, "output"), matrix="w_ym",
            )
            output = proj
        else:
            output = cell_out
        self.add(f"{tag}.y_out", "sink", layer, [output], width=out_size)
        return output

    # ------------------------------------------------------------------
    def build_gru_layer(self, layer: int, x_node: str, in_size: int) -> str:
        spec = self.spec
        hidden = spec.layer_sizes[layer]
        block = _role_block(spec, layer, "recurrent")
        in_block = _role_block(spec, layer, "input")
        tag = f"l{layer}"

        c_prev = self.add(f"{tag}.c_prev", "source", layer, [], width=hidden)

        wzr_x = self.add(
            f"{tag}.matvec_wzr_x", "block_matvec", layer, [x_node],
            rows=2 * hidden, cols=in_size, block_size=in_block, matrix="w_zr_x",
        )
        wzr_c = self.add(
            f"{tag}.matvec_wzr_c", "block_matvec", layer, [c_prev],
            rows=2 * hidden, cols=hidden, block_size=block, matrix="w_zr_c",
        )
        gates = self.add(
            f"{tag}.add_zr", "pointwise_add", layer, [wzr_x, wzr_c],
            width=2 * hidden,
        )
        sig_z = self.add(f"{tag}.sigmoid_z", "sigmoid", layer, [gates], width=hidden)
        sig_r = self.add(f"{tag}.sigmoid_r", "sigmoid", layer, [gates], width=hidden)

        mul_rc = self.add(
            f"{tag}.mul_r_cprev", "pointwise_mul", layer, [sig_r, c_prev],
            width=hidden,
        )
        wcx = self.add(
            f"{tag}.matvec_wcx", "block_matvec", layer, [x_node],
            rows=hidden, cols=in_size, block_size=in_block, matrix="w_cx",
        )
        wcc = self.add(
            f"{tag}.matvec_wcc", "block_matvec", layer, [mul_rc],
            rows=hidden, cols=hidden, block_size=block, matrix="w_cc",
        )
        pre_act = self.add(
            f"{tag}.add_ctilde", "pointwise_add", layer, [wcx, wcc], width=hidden
        )
        ctilde = self.add(f"{tag}.tanh_ctilde", "tanh", layer, [pre_act], width=hidden)

        blend_old = self.add(
            f"{tag}.mul_1mz_c", "pointwise_mul", layer, [sig_z, c_prev], width=hidden
        )
        blend_new = self.add(
            f"{tag}.mul_z_ctilde", "pointwise_mul", layer, [sig_z, ctilde],
            width=hidden,
        )
        cell = self.add(
            f"{tag}.add_c", "pointwise_add", layer, [blend_old, blend_new],
            width=hidden,
        )
        self.add(f"{tag}.c_out", "sink", layer, [cell], width=hidden)
        return cell


def build_operation_graph(spec: RNNSpec) -> nx.DiGraph:
    """DAG of one timestep across the whole stack (feedback edges removed)."""
    builder = _GraphBuilder(spec)
    x_node = builder.add("input.x", "source", -1, [], width=spec.input_size)
    value, in_size = x_node, spec.input_size
    for layer, hidden in enumerate(spec.layer_sizes):
        if spec.cell_type == "lstm":
            value = builder.build_lstm_layer(layer, value, in_size)
            in_size = spec.projection_size or hidden
        else:
            value = builder.build_gru_layer(layer, value, in_size)
            in_size = hidden
    graph = builder.graph
    validate_graph(graph)
    return graph


def matvec_nodes(graph: nx.DiGraph) -> list[str]:
    return [n for n, d in graph.nodes(data=True) if d["op"] == "block_matvec"]


def validate_graph(graph: nx.DiGraph) -> None:
    """Structural invariants: acyclic, sources/sinks correct, ops known."""
    from repro.hls.templates import TEMPLATES

    if not nx.is_directed_acyclic_graph(graph):
        raise ConfigError("operation graph has a cycle (feedback edge leaked in)")
    for node, data in graph.nodes(data=True):
        if data["op"] not in TEMPLATES:
            raise ConfigError(f"node {node} uses unknown op {data['op']}")
        if data["op"] == "source" and graph.in_degree(node) != 0:
            raise ConfigError(f"source {node} has predecessors")
        if data["op"] == "sink" and graph.out_degree(node) != 0:
            raise ConfigError(f"sink {node} has successors")
