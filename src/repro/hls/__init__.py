"""HLS framework simulation: templates → graph → schedule → code (Fig. 13)."""

from repro.hls.codegen import generate_code
from repro.hls.framework import HLSFramework, HLSResult, build_hls
from repro.hls.graph import build_operation_graph, matvec_nodes, validate_graph
from repro.hls.scheduler import Schedule, ScheduledOp, schedule_graph
from repro.hls.templates import TEMPLATES, OpTemplate, get_template, matvec_work, pointwise_work

__all__ = [
    "generate_code",
    "HLSFramework",
    "HLSResult",
    "build_hls",
    "build_operation_graph",
    "matvec_nodes",
    "validate_graph",
    "Schedule",
    "ScheduledOp",
    "schedule_graph",
    "TEMPLATES",
    "OpTemplate",
    "get_template",
    "matvec_work",
    "pointwise_work",
]
