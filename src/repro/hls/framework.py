"""End-to-end HLS framework driver (Fig. 13).

``HLSFramework(spec, accel).build()`` runs the paper's full flow —
template generator → graph generator → operation scheduler → code generator
— and returns an :class:`HLSResult` bundling the operation graph, the
schedule, the generated C source, and the performance/resource summary that
the paper's "Perf. & Resource Models" box feeds back into design selection.

The schedule's cycle count is the same quantity the analytic CU model of
:mod:`repro.hw.cu` computes; the two are cross-validated in
``tests/hls/test_framework.py`` (they must agree within a small tolerance,
since the scheduler prices the same work on the same engines).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.config import AccelSpec, RNNSpec
from repro.hls.codegen import generate_code
from repro.hls.graph import build_operation_graph
from repro.hls.scheduler import Schedule, schedule_graph
from repro.hw.accelerator import AcceleratorDesign, AcceleratorModel
from repro.hw.cu import GRU_TDM_SPEEDUP

__all__ = ["HLSResult", "HLSFramework"]


@dataclass(frozen=True)
class HLSResult:
    """Everything the HLS flow produces for one design point."""

    spec: RNNSpec
    accel: AccelSpec
    graph: nx.DiGraph
    schedule: Schedule
    code: str
    design: AcceleratorDesign

    @property
    def frame_cycles(self) -> float:
        return self.schedule.frame_cycles

    @property
    def latency_us(self) -> float:
        return self.frame_cycles * self.accel.clock_period_ns / 1000.0

    def summary(self) -> dict[str, float]:
        return {
            "num_ops": float(self.graph.number_of_nodes()),
            "num_stages": float(self.schedule.num_stages),
            "frame_cycles": self.frame_cycles,
            "latency_us": self.latency_us,
            "num_pes": float(self.design.num_pes),
            "code_lines": float(self.code.count("\n") + 1),
        }


class HLSFramework:
    """Template-based design automation for RNN FPGA implementations."""

    def __init__(
        self,
        spec: RNNSpec,
        accel: AccelSpec,
        pe_efficiency: float = 1.0,
    ):
        self.spec = spec
        self.accel = accel
        self.pe_efficiency = pe_efficiency

    def operation_graph(self) -> nx.DiGraph:
        return build_operation_graph(self.spec)

    def build(self) -> HLSResult:
        graph = self.operation_graph()
        design = AcceleratorModel(
            self.spec, self.accel, pe_efficiency=self.pe_efficiency
        ).build()
        if self.spec.cell_type == "gru":
            efficiency = self.pe_efficiency * GRU_TDM_SPEEDUP
            overhead_count = 2
        else:
            efficiency = self.pe_efficiency
            overhead_count = None
        schedule = schedule_graph(
            graph,
            self.accel,
            design.pes_per_cu,
            pe_efficiency=efficiency,
            stage_overhead_count=overhead_count,
        )
        code = generate_code(self.spec, self.accel, graph, schedule)
        return HLSResult(
            spec=self.spec,
            accel=self.accel,
            graph=graph,
            schedule=schedule,
            code=code,
            design=design,
        )
