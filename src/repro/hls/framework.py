"""End-to-end HLS framework driver (Fig. 13).

``build_hls(spec, accel)`` runs the paper's full flow —
template generator → graph generator → operation scheduler → code generator
— and returns an :class:`HLSResult` bundling the operation graph, the
schedule, the generated C source, and the performance/resource summary that
the paper's "Perf. & Resource Models" box feeds back into design selection.

The schedule's cycle count is the same quantity the analytic CU model of
:mod:`repro.hw.cu` computes; the two are cross-validated in
``tests/hls/test_framework.py`` (they must agree within a small tolerance,
since the scheduler prices the same work on the same engines).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import networkx as nx

from repro.config import AccelSpec, RNNSpec
from repro.hls.codegen import generate_code
from repro.hls.graph import build_operation_graph
from repro.hls.scheduler import Schedule, schedule_graph
from repro.hw.accelerator import AcceleratorDesign, build_design
from repro.hw.cu import GRU_TDM_SPEEDUP

__all__ = ["HLSResult", "HLSFramework", "build_hls"]


@dataclass(frozen=True)
class HLSResult:
    """Everything the HLS flow produces for one design point."""

    spec: RNNSpec
    accel: AccelSpec
    graph: nx.DiGraph
    schedule: Schedule
    code: str
    design: AcceleratorDesign

    @property
    def frame_cycles(self) -> float:
        return self.schedule.frame_cycles

    @property
    def latency_us(self) -> float:
        return self.frame_cycles * self.accel.clock_period_ns / 1000.0

    def summary(self) -> dict[str, float]:
        return {
            "num_ops": float(self.graph.number_of_nodes()),
            "num_stages": float(self.schedule.num_stages),
            "frame_cycles": self.frame_cycles,
            "latency_us": self.latency_us,
            "num_pes": float(self.design.num_pes),
            "code_lines": float(self.code.count("\n") + 1),
        }


def build_hls(
    spec: RNNSpec,
    accel: AccelSpec,
    pe_efficiency: float = 1.0,
    design: AcceleratorDesign | None = None,
) -> HLSResult:
    """Run the full Fig. 13 flow — the canonical (non-deprecated) path.

    :class:`repro.api.engine.Engine` memoizes this call keyed on the frozen
    ``(spec, accel)`` pair, so repeated codegen over a sweep builds once.
    ``design`` lets a caller that already sized the accelerator (the engine's
    design cache) skip re-running the Phase-II model.
    """
    graph = build_operation_graph(spec)
    if design is None:
        design = build_design(spec, accel, pe_efficiency=pe_efficiency)
    if spec.cell_type == "gru":
        efficiency = pe_efficiency * GRU_TDM_SPEEDUP
        overhead_count = 2
    else:
        efficiency = pe_efficiency
        overhead_count = None
    schedule = schedule_graph(
        graph,
        accel,
        design.pes_per_cu,
        pe_efficiency=efficiency,
        stage_overhead_count=overhead_count,
    )
    code = generate_code(spec, accel, graph, schedule)
    return HLSResult(
        spec=spec,
        accel=accel,
        graph=graph,
        schedule=schedule,
        code=code,
        design=design,
    )


class HLSFramework:
    """Template-based design automation for RNN FPGA implementations.

    .. deprecated::
        Superseded by ``repro.api.Design(...).codegen()`` (cached) and
        :func:`build_hls`; kept as a working shim.
    """

    def __init__(
        self,
        spec: RNNSpec,
        accel: AccelSpec,
        pe_efficiency: float = 1.0,
        *,
        _warn: bool = True,
    ):
        if _warn:
            warnings.warn(
                "HLSFramework is deprecated; use repro.api.Design(...)."
                "codegen() or repro.hls.framework.build_hls()",
                DeprecationWarning,
                stacklevel=2,
            )
        self.spec = spec
        self.accel = accel
        self.pe_efficiency = pe_efficiency

    def operation_graph(self) -> nx.DiGraph:
        return build_operation_graph(self.spec)

    def build(self) -> HLSResult:
        return build_hls(self.spec, self.accel, self.pe_efficiency)
