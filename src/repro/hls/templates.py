"""Primitive-operation templates (Fig. 13, "Template Generator").

Each RNN primitive — the block matrix-vector product, point-wise vector ops,
and the PWL activations — gets a template bundling (i) a work model the
scheduler prices, (ii) a resource model, and (iii) a C/C++ code snippet the
code generator instantiates.  The set mirrors the paper's list: "tanh,
sigmoid σ, point-wise vector addition, point-wise multiplication, and
'FFT→element-wise multiplication→IFFT'".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.pe import ProcessingElement

__all__ = ["OpTemplate", "TEMPLATES", "get_template", "matvec_work", "pointwise_work"]


@dataclass(frozen=True)
class OpTemplate:
    """A schedulable primitive: which engine runs it and how its work scales."""

    name: str
    engine: str  # "pe_array" | "pointwise" | "none"
    description: str
    code_template: str


def matvec_work(rows: int, cols: int, block_size: int, bits: int) -> float:
    """PE-cycles of one block matrix-vector product (FFT→mult→acc→IFFT)."""
    if block_size < 2:
        raise ConfigError("matvec template requires a circulant block size >= 2")
    pe = ProcessingElement(block_size, bits)
    p = -(-rows // block_size)
    q = -(-cols // block_size)
    # Block products plus the decoupled q input FFTs and p output IFFTs.
    return p * q * pe.cycles_per_block + p + q


def pointwise_work(width: int, bits: int) -> float:
    """Lane-operations of one point-wise vector op (mult/add/activation)."""
    return width * (bits / 12.0)


_MATVEC_CODE = """\
void {name}(const fixed_t x[{cols}], fixed_t y[{rows}]) {{
#pragma HLS INLINE off
    // FFT -> element-wise multiplication -> accumulate -> IFFT (Eqn. 4)
    complex_t x_spec[{q}][{half_bins}];
    fft_blocks_{block}: for (int j = 0; j < {q}; j++) {{
#pragma HLS PIPELINE II=1
        rfft{block}(&x[j * {block}], x_spec[j]);
    }}
    acc_rows_{name}: for (int i = 0; i < {p}; i++) {{
        complex_t acc[{half_bins}];
        init_acc: for (int k = 0; k < {half_bins}; k++) acc[k] = 0;
        acc_cols: for (int j = 0; j < {q}; j++) {{
#pragma HLS PIPELINE II={ii}
            cmac{block}(W_{name}[i][j], x_spec[j], acc);
        }}
        irfft{block}(acc, &y[i * {block}]);
    }}
}}
"""

_POINTWISE_MUL_CODE = """\
void {name}(const fixed_t a[{width}], const fixed_t b[{width}],
            fixed_t out[{width}]) {{
#pragma HLS INLINE off
    loop_{name}: for (int i = 0; i < {width}; i++) {{
#pragma HLS UNROLL factor={lanes}
        out[i] = fx_mul(a[i], b[i]);
    }}
}}
"""

_POINTWISE_ADD_CODE = """\
void {name}(const fixed_t a[{width}], const fixed_t b[{width}],
            fixed_t out[{width}]) {{
#pragma HLS INLINE off
    loop_{name}: for (int i = 0; i < {width}; i++) {{
#pragma HLS UNROLL factor={lanes}
        out[i] = fx_add(a[i], b[i]);
    }}
}}
"""

_ACTIVATION_CODE = """\
void {name}(const fixed_t x[{width}], fixed_t out[{width}]) {{
#pragma HLS INLINE off
    // Piecewise-linear {function} with {segments} segments, saturating
    loop_{name}: for (int i = 0; i < {width}; i++) {{
#pragma HLS PIPELINE II=1
        out[i] = pwl_{function}(x[i]);
    }}
}}
"""

_BUFFER_CODE = """\
void {name}(const fixed_t src[{width}], fixed_t dst[{width}]) {{
#pragma HLS INLINE off
    // Double-buffer swap between CGPipe stages
    loop_{name}: for (int i = 0; i < {width}; i++) {{
#pragma HLS UNROLL factor={lanes}
        dst[i] = src[i];
    }}
}}
"""

TEMPLATES: dict[str, OpTemplate] = {
    "block_matvec": OpTemplate(
        "block_matvec",
        engine="pe_array",
        description="FFT -> element-wise multiply -> accumulate -> IFFT",
        code_template=_MATVEC_CODE,
    ),
    "pointwise_mul": OpTemplate(
        "pointwise_mul",
        engine="pointwise",
        description="element-wise vector multiplication",
        code_template=_POINTWISE_MUL_CODE,
    ),
    "pointwise_add": OpTemplate(
        "pointwise_add",
        engine="pointwise",
        description="element-wise vector addition",
        code_template=_POINTWISE_ADD_CODE,
    ),
    "sigmoid": OpTemplate(
        "sigmoid",
        engine="pointwise",
        description="piecewise-linear logistic activation",
        code_template=_ACTIVATION_CODE,
    ),
    "tanh": OpTemplate(
        "tanh",
        engine="pointwise",
        description="piecewise-linear tanh activation",
        code_template=_ACTIVATION_CODE,
    ),
    "buffer": OpTemplate(
        "buffer",
        engine="pointwise",
        description="double-buffer transfer between CGPipe stages",
        code_template=_BUFFER_CODE,
    ),
    "source": OpTemplate(
        "source", engine="none", description="graph input", code_template=""
    ),
    "sink": OpTemplate(
        "sink", engine="none", description="graph output", code_template=""
    ),
}


def get_template(name: str) -> OpTemplate:
    if name not in TEMPLATES:
        raise ConfigError(f"unknown op template {name!r}; known: {sorted(TEMPLATES)}")
    return TEMPLATES[name]
