"""The ``repro lint`` subcommand: run the analyzer, honour the baseline.

Exit codes (the CI contract):

* ``0`` — no non-baselined findings,
* ``1`` — findings the baseline does not excuse,
* ``2`` — a file failed to parse (the analyzer could not do its job).

``--update-baseline`` rewrites the baseline to match the current tree —
keeping existing reasons, stamping new entries ``TODO``, dropping stale
ones — and exits 0 so the workflow is: run, review, justify, commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Iterable, Sequence

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.core import Report, analyze_paths

__all__ = ["add_lint_parser", "run_lint", "split_codes"]

DEFAULT_BASELINE = "tools/lint_baseline.json"


def split_codes(values: Iterable[str] | None) -> list[str] | None:
    """Flatten repeated/comma-separated ``--select REP001,REP002`` values."""
    if not values:
        return None
    codes = [
        code.strip()
        for value in values
        for code in value.replace(",", " ").split()
        if code.strip()
    ]
    return codes or None


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "lint",
        help="run the repro static analyzer (REP001-REP006) over source paths",
        description=(
            "Statically check project invariants: lock discipline (REP001), "
            "async hygiene (REP002), bit-exactness (REP003), the deprecation "
            "firewall (REP004), exception hygiene (REP005) and doc drift "
            "(REP006).  Exits 0 when clean, 1 on non-baselined findings, "
            "2 when a file cannot be parsed."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to analyze (directories recurse over *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only run these checkers (comma/space separated, repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="skip these checkers (comma/space separated, repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"reviewed-findings baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to the current findings (reasons kept, "
            "stale entries dropped, new entries stamped TODO) and exit 0"
        ),
    )
    return parser


def _emit_text(report: Report, out: IO[str], err: IO[str]) -> None:
    for failure in report.parse_failures:
        print(failure.describe(), file=err)
    for finding in report.findings:
        print(finding.describe(), file=out)
    summary = report.to_dict()["summary"]
    print(
        "repro lint: {files} file(s), {findings} finding(s), "
        "{suppressed} suppressed, {baselined} baselined".format(**summary),
        file=out,
    )
    if report.stale_baseline:
        print(
            f"repro lint: {report.stale_baseline} stale baseline entr"
            f"{'y' if report.stale_baseline == 1 else 'ies'} "
            "(fixed findings still listed; run --update-baseline)",
            file=err,
        )


def run_lint(
    args: argparse.Namespace,
    out: IO[str] | None = None,
    err: IO[str] | None = None,
) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    report = analyze_paths(
        args.paths,
        select=split_codes(args.select),
        ignore=split_codes(args.ignore),
    )

    if args.update_baseline:
        baseline = Baseline.load(args.baseline)
        refreshed = baseline.updated_for(report)
        refreshed.save()
        print(
            f"repro lint: baseline {refreshed.path} updated "
            f"({len(refreshed.entries)} entr"
            f"{'y' if len(refreshed.entries) == 1 else 'ies'})",
            file=out,
        )
        return 0 if not report.parse_failures else 2

    if not args.no_baseline:
        report = apply_baseline(report, Baseline.load(args.baseline))

    if args.format == "json":
        json.dump(report.to_dict(), out, indent=2, sort_keys=True)
        print(file=out)
        for failure in report.parse_failures:
            print(failure.describe(), file=err)
    else:
        _emit_text(report, out, err)
    return report.exit_code
