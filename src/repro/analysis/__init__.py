"""repro.analysis — the project-invariant static analyzer behind ``repro lint``.

The paper's reproduction contracts (byte-identical fixed-point results,
a non-blocking serving loop, thread-safe caches, a retired legacy API)
are enforced mechanically here, not just where a test happens to look.
See :mod:`repro.analysis.core` for the framework and
``src/repro/analysis/checkers/`` for the rules (REP001–REP006).

Typical use::

    from repro.analysis import analyze_paths
    report = analyze_paths(["src"])
    assert report.exit_code == 0, report.findings

or from the command line: ``repro lint src/ --format json``.
"""

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.core import (
    AnalysisError,
    CHECKER_REGISTRY,
    Checker,
    FileContext,
    Finding,
    ParseFailure,
    Report,
    analyze_paths,
    clear_parse_cache,
    iter_python_files,
    load_file,
    parse_cache_info,
    register_checker,
)

__all__ = [
    "AnalysisError",
    "Baseline",
    "CHECKER_REGISTRY",
    "Checker",
    "FileContext",
    "Finding",
    "ParseFailure",
    "Report",
    "analyze_paths",
    "apply_baseline",
    "clear_parse_cache",
    "iter_python_files",
    "load_file",
    "parse_cache_info",
    "register_checker",
]
