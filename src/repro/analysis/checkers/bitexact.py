"""REP003 — dtype and ordering hygiene in ``# bit-exact`` modules.

The fixed-vs-float byte-identity claim (paper Sec. VII) survives only if
the numeric modules never let a dtype or a reduction order float free.
A module opts in with a ``# bit-exact`` marker comment near its top;
inside such modules this checker flags:

* numpy array *creation* without an explicit ``dtype=`` —
  ``np.array/asarray/zeros/ones/empty/full/arange/linspace/eye/identity/
  fromiter`` (``np.arange`` in particular is platform-dependent: C long);
  the ``*_like`` functions inherit their dtype and are exempt;
* Python's builtin ``sum(...)`` — it reduces left-to-right through
  scalar intermediates, a different rounding sequence from
  ``np.sum``/``np.add.reduce`` and easy to perturb by reordering;
* iterating a ``set``/``frozenset`` (literal or call) in a ``for`` or a
  comprehension — set order varies across processes (string hash
  randomization), so any reduction fed from it is run-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, FileContext, Finding, register_checker

__all__ = ["BitExactChecker"]

MARKER = "bit-exact"

#: numpy creation calls that take ``dtype=`` and default it.
CREATORS = frozenset({
    "array", "asarray", "zeros", "ones", "empty", "full",
    "arange", "linspace", "eye", "identity", "fromiter",
})


def _numpy_aliases(tree: ast.Module) -> set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


@register_checker
class BitExactChecker(Checker):
    code = "REP003"
    name = "bit-exactness"
    description = (
        "in '# bit-exact' modules: numpy creation calls carry an explicit "
        "dtype, no builtin sum() over arrays, no set-ordered iteration"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.has_marker(MARKER):
            return
        numpy_names = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, numpy_names)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iter(ctx, generator.iter)

    # ------------------------------------------------------------------
    def _check_call(
        self, ctx: FileContext, call: ast.Call, numpy_names: set[str]
    ) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "sum":
            yield self.finding(
                ctx,
                call,
                "builtin sum() reduces through scalar intermediates in "
                "argument order; in a bit-exact module spell the reduction "
                "with np.sum/np.add.reduce (explicit dtype) or justify it "
                "with '# repro: ignore[REP003] <reason>'",
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in numpy_names
            and func.attr in CREATORS
        ):
            if any(kw.arg == "dtype" for kw in call.keywords):
                return
            # np.array's second positional argument IS dtype.
            if func.attr in ("array", "asarray", "fromiter") and len(call.args) >= 2:
                return
            yield self.finding(
                ctx,
                call,
                f"np.{func.attr}(...) without an explicit dtype in a "
                "bit-exact module; pin it (np.arange defaults to the "
                "platform C long, creation defaults drift with input types)",
            )

    def _check_iter(self, ctx: FileContext, source: ast.expr) -> Iterator[Finding]:
        is_set = isinstance(source, ast.Set) or (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Name)
            and source.func.id in ("set", "frozenset")
        )
        if is_set:
            yield self.finding(
                ctx,
                source,
                "iterating a set in a bit-exact module: element order varies "
                "across processes (hash randomization), so any ordered "
                "reduction fed from it is run-dependent; sort it first",
            )
