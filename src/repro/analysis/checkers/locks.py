"""REP001 — lock discipline for annotated shared state.

An attribute assignment carrying ``# guarded-by: <lock>`` declares that
``self.<attr>`` may only be touched while ``self.<lock>`` is held::

    self._cache = {}          # guarded-by: _lock

Every read or write of a guarded attribute must then sit inside a
``with self.<lock>:`` block in the same function.  Two escape hatches:

* ``__init__`` is exempt — the object is not shared until the
  constructor returns;
* a helper the callers only invoke with the lock already held is
  annotated on its ``def`` line: ``def _insert(self):  # holds-lock: _lock``.

This is the defect class PR 5's review round found by hand (counters
read outside the engine lock, state checked without the condition); the
checker finds it on every commit instead.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.core import Checker, FileContext, Finding, register_checker

__all__ = ["LockDisciplineChecker"]

_GUARDED = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_HOLDS = re.compile(r"#\s*holds-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is an ``self.attr`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _holds_locks(ctx: FileContext, func: ast.AST) -> frozenset[str]:
    """Locks a function declares held via ``# holds-lock:`` on its def line."""
    held = set()
    for line in range(func.lineno, getattr(func, "body", [func])[0].lineno + 1):
        for match in _HOLDS.finditer(ctx.comment(line)):
            held.add(match.group(1))
    return frozenset(held)


@register_checker
class LockDisciplineChecker(Checker):
    code = "REP001"
    name = "lock-discipline"
    description = (
        "attributes annotated '# guarded-by: <lock>' are only touched "
        "inside 'with self.<lock>:' (or in functions annotated "
        "'# holds-lock: <lock>')"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(ctx, cls)

    # ------------------------------------------------------------------
    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = self._guarded_attrs(ctx, cls)
        if not guarded:
            return
        for func in self._methods(cls):
            if func.name == "__init__":
                continue
            yield from self._check_function(ctx, func, guarded)

    @staticmethod
    def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for stmt in cls.body:
            if isinstance(stmt, _FUNCTIONS):
                yield stmt

    def _guarded_attrs(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> dict[str, str]:
        """``{attr: lock}`` from annotated ``self.attr = ...`` assignments."""
        guarded: dict[str, str] = {}
        for node in ast.walk(cls):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            match = _GUARDED.search(ctx.comment(node.lineno))
            if match is None:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    guarded[attr] = match.group(1)
        return guarded

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        held_by_func: dict[int, frozenset[str]] = {}
        for node in ast.walk(func):
            attr = _self_attr(node)
            if attr is None or attr not in guarded:
                continue
            lock = guarded[attr]
            # The scope that must prove it holds the lock is the *nearest*
            # enclosing function: a closure (worker thread body, callback)
            # runs later, when an outer `with` no longer helps.
            scope = func
            withs: list[ast.AST] = []
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                    withs.append(ancestor)
                if isinstance(ancestor, _FUNCTIONS):
                    scope = ancestor
                    break
            if scope.name == "__init__":
                continue
            if id(scope) not in held_by_func:
                held_by_func[id(scope)] = _holds_locks(ctx, scope)
            if lock in held_by_func[id(scope)]:
                continue
            if any(self._with_takes_lock(stmt, lock) for stmt in withs):
                continue
            yield self.finding(
                ctx,
                node,
                f"'self.{attr}' is guarded by 'self.{lock}' but is accessed "
                f"outside 'with self.{lock}:' (wrap the access, or annotate "
                f"the enclosing function '# holds-lock: {lock}' if every "
                "caller already holds it)",
            )

    @staticmethod
    def _with_takes_lock(stmt: ast.AST, lock: str) -> bool:
        items = getattr(stmt, "items", ())
        return any(_self_attr(item.context_expr) == lock for item in items)
