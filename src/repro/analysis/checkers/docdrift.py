"""REP006 — doc drift: wire-protocol op names must appear in their spec.

``repro.runtime.net.protocol.OPS`` is the single source of truth for
what a v1 request may carry; ``docs/runtime.md`` is the spec clients are
written against.  When the binary framing lands and grows new ops, the
spec must move in lockstep — so the linkage is declared in the source::

    OPS = ("ping", "stats", ...)  # documented-in: docs/runtime.md

Any assignment of a tuple/list/set of string constants annotated
``# documented-in: <path>`` is checked: the path is resolved against the
repository root (nearest ancestor with ``pyproject.toml``/``.git``), the
file must exist, and every name must appear backtick-quoted in it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    register_checker,
    repo_root_of,
)

__all__ = ["DocDriftChecker"]

TAG = "documented-in"


def _string_elements(node: ast.expr) -> list[str] | None:
    """The string constants of a tuple/list/set literal, else None."""
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


@register_checker
class DocDriftChecker(Checker):
    code = "REP006"
    name = "doc-drift"
    description = (
        "names in collections annotated '# documented-in: <doc>' (e.g. the "
        "wire-protocol ops) must all appear backtick-quoted in that document"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
            else:
                continue
            doc_rel = ctx.annotation(node.lineno, TAG)
            if doc_rel is None:
                continue
            yield from self._check_names(ctx, node, value, doc_rel)

    def _check_names(
        self, ctx: FileContext, node: ast.AST, value: ast.expr, doc_rel: str
    ) -> Iterator[Finding]:
        names = _string_elements(value)
        if names is None:
            yield self.finding(
                ctx,
                node,
                f"'# documented-in: {doc_rel}' annotates something that is "
                "not a literal tuple/list/set of strings; the checker cannot "
                "extract names to verify",
            )
            return
        root = repo_root_of(ctx.path)
        if root is None:
            yield self.finding(
                ctx,
                node,
                f"cannot resolve '{doc_rel}': no repository root "
                "(pyproject.toml/.git) above this file",
            )
            return
        doc_path = root / doc_rel
        if not doc_path.is_file():
            yield self.finding(
                ctx,
                node,
                f"documentation file '{doc_rel}' does not exist under {root}",
            )
            return
        text = doc_path.read_text(encoding="utf-8")
        for name in names:
            if f"`{name}`" not in text:
                yield self.finding(
                    ctx,
                    node,
                    f"op '{name}' is not documented in {doc_rel} "
                    f"(expected a backtick-quoted `{name}`); the spec and "
                    "the wire protocol must move in lockstep",
                )
