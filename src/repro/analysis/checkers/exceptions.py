"""REP005 — exception hygiene: no silently-swallowed failures.

The worker/reaper/drain paths of the serving stack are exactly where a
swallowed exception turns into a hung client or a leaked admission slot
(PR 5 found two by hand).  This checker flags:

* bare ``except:`` anywhere — it catches ``KeyboardInterrupt`` and
  ``SystemExit`` too, so even a log-and-continue handler must name
  ``Exception``;
* ``except Exception:`` / ``except BaseException:`` handlers whose body
  does nothing (``pass`` / ``...`` / ``continue``) — the failure
  vanishes without a trace.

A teardown path that genuinely must not propagate (best-effort socket
close during drain) documents itself inline::

    except Exception:  # repro: ignore[REP005] best-effort close; reader path cleans up
        pass
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Checker, FileContext, Finding, register_checker

__all__ = ["ExceptionHygieneChecker"]

_BROAD = ("Exception", "BaseException")


def _names_broad(node: ast.expr | None) -> bool:
    """True when the except clause catches Exception/BaseException."""
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(_names_broad(item) for item in node.elts)
    return False


def _body_swallows(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing with the failure."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register_checker
class ExceptionHygieneChecker(Checker):
    code = "REP005"
    name = "exception-hygiene"
    description = (
        "no bare 'except:' and no do-nothing 'except Exception:' handlers "
        "(silently swallowed failures)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                    "name the exception (at minimum 'except Exception:') and "
                    "handle or log it",
                )
            elif _names_broad(node.type) and _body_swallows(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "broad exception handler silently swallows the failure; "
                    "narrow the type, handle it, or justify the swallow with "
                    "'# repro: ignore[REP005] <reason>'",
                )
