"""REP004 — the deprecation firewall around the legacy framework shims.

``AcceleratorModel``, ``HLSFramework``, ``ERNNFramework`` and the
``asr.pipeline`` evaluation wrappers exist solely for *external* callers
mid-migration; they warn on use and will be deleted.  Internal code
reaching through them re-entrenches exactly what the facade retired —
and silences nothing, because the shims suppress their own warning when
called from inside the library.  This checker flags any ``src/`` import
or attribute reference to a shim outside its defining module and the
public re-export ``__init__`` files.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, FileContext, Finding, register_checker

__all__ = ["DeprecationFirewallChecker"]

#: Shim class -> (defining module suffix, blessed replacement).
SHIM_CLASSES: dict[str, tuple[str, str]] = {
    "AcceleratorModel": (
        "repro/hw/accelerator.py",
        "repro.api.Design(...).price() or repro.hw.accelerator.build_design()",
    ),
    "HLSFramework": (
        "repro/hls/framework.py",
        "repro.api.Design(...).codegen() or repro.hls.framework.build_hls()",
    ),
    "ERNNFramework": (
        "repro/core/ernn.py",
        "repro.api.Design(...) or repro.core.flow.run_two_phase_flow()",
    ),
}

#: Deprecated asr.pipeline wrappers -> blessed replacement.
SHIM_PIPELINE_FUNCS: dict[str, str] = {
    "evaluate_per": "repro.runtime.evaluate_per",
    "evaluate_frame_accuracy": "repro.runtime.evaluate_frame_accuracy",
}

#: Files allowed to name the shims: their definitions and the public
#: re-export surfaces kept for external callers.
ALLOWED_SUFFIXES = (
    "repro/hw/accelerator.py",
    "repro/hls/framework.py",
    "repro/core/ernn.py",
    "repro/asr/pipeline.py",
    "repro/__init__.py",
    "repro/asr/__init__.py",
    "repro/core/__init__.py",
    "repro/hls/__init__.py",
    "repro/hw/__init__.py",
)


def _is_allowed(ctx: FileContext) -> bool:
    posix = ctx.path.as_posix()
    return any(posix.endswith(suffix) for suffix in ALLOWED_SUFFIXES)


@register_checker
class DeprecationFirewallChecker(Checker):
    code = "REP004"
    name = "deprecation-firewall"
    description = (
        "internal code must not use the DeprecationWarning shims "
        "(AcceleratorModel, HLSFramework, ERNNFramework, asr.pipeline "
        "evaluation wrappers)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if _is_allowed(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in SHIM_CLASSES:
                    yield self._shim_class_finding(ctx, node, node.id)

    # ------------------------------------------------------------------
    def _check_import(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        module = node.module or ""
        for alias in node.names:
            if alias.name in SHIM_CLASSES and module.startswith("repro"):
                yield self._shim_class_finding(ctx, node, alias.name)
            elif alias.name in SHIM_PIPELINE_FUNCS and (
                module.endswith("asr.pipeline") or module.endswith("repro.asr")
            ):
                yield self._pipeline_finding(ctx, node, alias.name)

    def _check_attribute(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterator[Finding]:
        if node.attr in SHIM_CLASSES:
            yield self._shim_class_finding(ctx, node, node.attr)
        elif node.attr in SHIM_PIPELINE_FUNCS:
            chain = ast.dump(node.value)
            if "'pipeline'" in chain or "'asr'" in chain:
                yield self._pipeline_finding(ctx, node, node.attr)

    def _shim_class_finding(
        self, ctx: FileContext, node: ast.AST, name: str
    ) -> Finding:
        _, replacement = SHIM_CLASSES[name]
        return self.finding(
            ctx,
            node,
            f"'{name}' is a deprecation shim for external callers only; "
            f"internal code uses {replacement}",
        )

    def _pipeline_finding(
        self, ctx: FileContext, node: ast.AST, name: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"'asr.pipeline.{name}' is a deprecation shim; internal code "
            f"calls {SHIM_PIPELINE_FUNCS[name]} (same values, also accepts "
            "CompiledModel artifacts)",
        )
