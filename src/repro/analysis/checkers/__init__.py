"""Built-in project checkers; importing this package registers them all.

One module per rule family, each self-registering into
:data:`repro.analysis.core.CHECKER_REGISTRY` via ``@register_checker`` —
the catalog with bad/good examples lives in ``docs/analysis.md``.
"""

from __future__ import annotations

from repro.analysis.checkers import (  # noqa: F401 — imported for registration
    asynchrony,
    bitexact,
    deprecation,
    docdrift,
    exceptions,
    locks,
)

__all__ = [
    "asynchrony",
    "bitexact",
    "deprecation",
    "docdrift",
    "exceptions",
    "locks",
]
