"""REP002 — no blocking calls inside ``async def`` bodies.

The asyncio parent of :mod:`repro.runtime.net.server` multiplexes every
connection on one event loop; a single ``time.sleep`` or synchronous
``subprocess`` call there stalls *all* clients at once.  This checker
flags known-blocking stdlib calls lexically inside an ``async def``:
``time.sleep``, blocking socket/select/subprocess/os entry points, the
``open``/``input`` builtins, and synchronous ``queue.Queue``
construction (its ``get``/``put`` block by design).

Calls inside a *nested synchronous* function are not flagged — those run
wherever the closure is eventually invoked (usually an executor thread),
which is exactly how blocking work is supposed to leave the loop.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, FileContext, Finding, register_checker

__all__ = ["AsyncBlockingChecker"]

#: Dotted call name -> what to do instead.
BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "await asyncio.sleep(...)",
    "socket.create_connection": "asyncio.open_connection(...)",
    "socket.getaddrinfo": "loop.getaddrinfo(...)",
    "select.select": "asyncio's own readiness notifications",
    "subprocess.run": "asyncio.create_subprocess_exec(...)",
    "subprocess.call": "asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "asyncio.create_subprocess_exec(...)",
    "subprocess.Popen": "asyncio.create_subprocess_exec(...)",
    "subprocess.getoutput": "asyncio.create_subprocess_exec(...)",
    "os.system": "asyncio.create_subprocess_shell(...)",
    "os.popen": "asyncio.create_subprocess_shell(...)",
    "os.wait": "asyncio child-process watchers",
    "os.waitpid": "asyncio child-process watchers",
    "urllib.request.urlopen": "a thread via loop.run_in_executor(...)",
    "queue.Queue": "asyncio.Queue (stdlib queue get/put block the loop)",
    "queue.SimpleQueue": "asyncio.Queue (stdlib queue get/put block the loop)",
}

#: Blocking builtins (file and terminal I/O hold the whole loop).
BLOCKING_BUILTINS: dict[str, str] = {
    "open": "loop.run_in_executor(...) for file I/O",
    "input": "a thread via loop.run_in_executor(...)",
}

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _import_maps(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(module aliases, imported names) -> canonical dotted prefixes."""
    modules: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                modules[local] = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, names


def _dotted(node: ast.expr) -> str | None:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_checker
class AsyncBlockingChecker(Checker):
    code = "REP002"
    name = "async-blocking"
    description = (
        "no blocking stdlib calls (time.sleep, sync sockets/subprocess/"
        "file I/O, stdlib queues) inside 'async def' bodies"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        modules, names = _import_maps(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node, modules, names)

    def _check_async_body(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        modules: dict[str, str],
        names: dict[str, str],
    ) -> Iterator[Finding]:
        for call in self._calls_in_scope(func):
            dotted = self._resolve(call.func, modules, names)
            if dotted is None:
                continue
            advice = BLOCKING_CALLS.get(dotted) or BLOCKING_BUILTINS.get(dotted)
            if advice is None:
                continue
            yield self.finding(
                ctx,
                call,
                f"blocking call '{dotted}' inside 'async def {func.name}' "
                f"stalls the whole event loop; use {advice}",
            )

    @classmethod
    def _calls_in_scope(cls, func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Calls in ``func``'s own body, not in nested sync functions."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNCTIONS):
                continue  # separate scope: nested async defs walk on their own
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _resolve(
        func: ast.expr, modules: dict[str, str], names: dict[str, str]
    ) -> str | None:
        if isinstance(func, ast.Name):
            if func.id in names:
                return names[func.id]
            if func.id in BLOCKING_BUILTINS:
                return func.id
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in modules and rest:
            return f"{modules[head]}.{rest}"
        if head in names and rest:
            return f"{names[head]}.{rest}"
        return dotted
