"""The reviewed-findings baseline: grandfathered violations with reasons.

A finding is either fixed, suppressed inline next to the code it excuses
(``# repro: ignore[CODE] reason``), or recorded here — a JSON file
(``tools/lint_baseline.json``) listing findings the team has looked at
and decided to carry, each with a one-line justification.  ``repro
lint`` fails only on findings *not* in the baseline, so the gate can
land on an imperfect tree without a flag day, while every new violation
still breaks the build.

Entries match on ``(file, code, message)`` — stable across pure
line-number drift — and **expire**: when the underlying violation
disappears, ``--update-baseline`` drops the entry, so the baseline only
ever shrinks unless a human deliberately re-runs the update on a tree
with new findings (and then has a ``TODO`` reason to replace).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import AnalysisError, Finding, Report

__all__ = ["Baseline", "UNJUSTIFIED", "apply_baseline"]

_VERSION = 1

#: Placeholder reason stamped on fresh ``--update-baseline`` entries; a
#: committed baseline should never contain it (docs/analysis.md workflow).
UNJUSTIFIED = "TODO: justify or fix this finding"


@dataclass
class Baseline:
    """The parsed baseline file: finding keys -> one-line reasons."""

    path: Path
    entries: dict[tuple[str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise AnalysisError(f"unreadable baseline {path}: {error}") from None
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise AnalysisError(
                f"baseline {path} has an unsupported format "
                f"(want version {_VERSION})"
            )
        entries: dict[tuple[str, str, str], str] = {}
        for item in payload.get("findings", ()):
            try:
                key = (str(item["file"]), str(item["code"]), str(item["message"]))
                entries[key] = str(item.get("reason", UNJUSTIFIED))
            except (KeyError, TypeError) as error:
                raise AnalysisError(
                    f"baseline {path} entry missing file/code/message: {error}"
                ) from None
        return cls(path=path, entries=entries)

    def save(self) -> None:
        findings = [
            {"file": file, "code": code, "message": message, "reason": reason}
            for (file, code, message), reason in sorted(self.entries.items())
        ]
        payload = {
            "version": _VERSION,
            "comment": (
                "Reviewed repro-lint findings carried on purpose; every entry "
                "needs a one-line reason.  Maintained by "
                "`repro lint ... --update-baseline`; entries expire (are "
                "dropped) when the finding disappears."
            ),
            "findings": findings,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def updated_for(self, report: Report) -> "Baseline":
        """A baseline matching ``report``: reasons kept, stale entries dropped."""
        entries = {
            finding.key(): self.entries.get(finding.key(), UNJUSTIFIED)
            for finding in report.findings
        }
        return Baseline(path=self.path, entries=entries)


def apply_baseline(report: Report, baseline: Baseline) -> Report:
    """Split baselined findings out of ``report`` (mutates and returns it)."""
    kept: list[Finding] = []
    matched: set[tuple[str, str, str]] = set()
    for finding in report.findings:
        if finding.key() in baseline.entries:
            matched.add(finding.key())
            report.baselined += 1
        else:
            kept.append(finding)
    report.findings = kept
    report.stale_baseline = len(set(baseline.entries) - matched)
    return report
