"""The static-analysis core: findings, file contexts, and the checker registry.

The test suite enforces the project's invariants only where a test happens
to look; this package enforces them *mechanically* at every commit.  A
:class:`Checker` is one rule (``REP001`` lock discipline, ``REP002`` async
hygiene, ...) registered in :data:`CHECKER_REGISTRY` — the same
alias-aware :class:`repro.api.registry.Registry` the platform/cell/
activation extension points use, so adding a project rule is one
``@register_checker`` away, exactly like adding a platform.

A :class:`FileContext` is one parsed source file: the AST (with parent
links), the raw lines, and the comment stream — checkers read *comments*
as machine-checkable annotations (``# guarded-by: _lock``,
``# bit-exact``, ``# documented-in: docs/runtime.md``).  Contexts are
served from a per-file parse cache keyed by ``(mtime_ns, size)``, so
repeated analysis (the CLI, the test suite, editor integrations) parses
each file once.

Findings on a line carrying ``# repro: ignore[CODE] reason`` are
suppressed at the source — the justification lives next to the code it
excuses.  Everything else either gets fixed or goes in the reviewed
baseline (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.api.registry import Registry
from repro.errors import ConfigError, ReproError

__all__ = [
    "AnalysisError",
    "Checker",
    "CHECKER_REGISTRY",
    "Finding",
    "FileContext",
    "ParseFailure",
    "Report",
    "analyze_paths",
    "clear_parse_cache",
    "iter_python_files",
    "load_file",
    "parse_cache_info",
    "register_checker",
    "repo_root_of",
]

#: Inline suppression: ``# repro: ignore[REP001] reason`` (codes comma-split).
_SUPPRESS = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")


class AnalysisError(ReproError):
    """The analyzer itself was misused (bad path, unknown checker code)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def describe(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift."""
        return (self.file, self.code, self.message)


@dataclass(frozen=True)
class ParseFailure:
    """A file the analyzer could not parse (reported, exit code 2)."""

    file: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.file}:{self.line}: PARSE {self.message}"

    def to_dict(self) -> dict:
        return {"file": self.file, "line": self.line, "message": self.message}


class FileContext:
    """One parsed Python source file plus its comment annotations."""

    def __init__(self, path: Path, display: str, source: str):
        self.path = path
        self.display = display
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=display)
        self._parents: dict[int, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self.comments: dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(StringIO(source).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:
            pass  # ast.parse succeeded; a tail error only costs comments

    # -- tree navigation ------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parent chain from ``node`` (exclusive) up to the module."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    # -- comment annotations --------------------------------------------
    def comment(self, line: int) -> str:
        """The comment on ``line`` ('' when the line has none)."""
        return self.comments.get(line, "")

    def annotation(self, line: int, tag: str) -> str | None:
        """The value of a ``# <tag>: value`` annotation on ``line``."""
        match = re.search(
            rf"#\s*{re.escape(tag)}:\s*(\S+)", self.comment(line)
        )
        return match.group(1) if match else None

    def has_marker(self, tag: str) -> bool:
        """True when any comment line is exactly ``# <tag>`` (plus prose)."""
        pattern = re.compile(rf"^#\s*{re.escape(tag)}\b")
        return any(pattern.match(text) for text in self.comments.values())

    def suppressed_codes(self, line: int) -> frozenset[str]:
        """Codes excused on ``line`` via ``# repro: ignore[...]``."""
        match = _SUPPRESS.search(self.comment(line))
        if not match:
            return frozenset()
        return frozenset(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )


class Checker:
    """Base class for one project rule.

    Subclasses set ``code`` (``REPnnn``), ``name`` and ``description``, and
    implement :meth:`check` yielding :class:`Finding`s for one file.  The
    shared :meth:`finding` helper stamps the file/code so messages stay
    uniform.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=ctx.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


#: All registered checkers, keyed by code (alias: lowercase name).
CHECKER_REGISTRY = Registry("checker")


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator: instantiate and register one checker by its code."""
    if not cls.code or not cls.name:
        raise ConfigError(f"checker {cls.__name__} needs a code and a name")
    CHECKER_REGISTRY.register(cls.code, cls(), aliases=(cls.name,))
    return cls


# ----------------------------------------------------------------------
# Per-file parse cache.
# ----------------------------------------------------------------------

_parse_cache: dict[str, tuple[tuple[int, int], FileContext]] = {}
_parse_hits = 0
_parse_misses = 0


def clear_parse_cache() -> None:
    global _parse_hits, _parse_misses
    _parse_cache.clear()
    _parse_hits = _parse_misses = 0


def parse_cache_info() -> dict[str, int]:
    return {
        "entries": len(_parse_cache),
        "hits": _parse_hits,
        "misses": _parse_misses,
    }


def load_file(path: Path | str, display: str | None = None) -> FileContext:
    """Parse one file, served from the stat-keyed cache when unchanged."""
    global _parse_hits, _parse_misses
    path = Path(path)
    display = display if display is not None else _display_path(path)
    key = str(path.resolve())
    stat = path.stat()
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _parse_cache.get(key)
    if cached is not None and cached[0] == signature:
        _parse_hits += 1
        return cached[1]
    _parse_misses += 1
    ctx = FileContext(path, display, path.read_text(encoding="utf-8"))
    _parse_cache[key] = (signature, ctx)
    return ctx


def _display_path(path: Path) -> str:
    """Posix path relative to the CWD when possible (stable finding keys)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def repo_root_of(path: Path) -> Path | None:
    """Nearest ancestor holding ``pyproject.toml`` or ``.git`` (or None)."""
    current = path.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file() or (candidate / ".git").exists():
            return candidate
    return None


# ----------------------------------------------------------------------
# Path expansion and the analysis driver.
# ----------------------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list."""
    seen: dict[str, Path] = {}
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in sub.parts):
                    continue
                seen.setdefault(str(sub.resolve()), sub)
        elif path.is_file():
            seen.setdefault(str(path.resolve()), path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(seen.values(), key=lambda p: p.as_posix())


@dataclass
class Report:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    parse_failures: list[ParseFailure] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: int = 0

    @property
    def exit_code(self) -> int:
        """CLI contract: clean 0, findings 1, parse failures 2."""
        if self.parse_failures:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "repro lint",
            "findings": [f.to_dict() for f in self.findings],
            "parse_failures": [p.to_dict() for p in self.parse_failures],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline": self.stale_baseline,
                "exit_code": self.exit_code,
            },
        }


def resolve_checkers(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Checker]:
    """The checkers to run, honouring ``--select``/``--ignore``."""
    codes = list(select) if select else list(CHECKER_REGISTRY.names())
    chosen = []
    for code in codes:
        try:
            chosen.append(
                (CHECKER_REGISTRY.canonical_name(code), CHECKER_REGISTRY.get(code))
            )
        except ReproError as error:
            raise AnalysisError(str(error)) from None
    dropped = set()
    for code in ignore or ():
        try:
            dropped.add(CHECKER_REGISTRY.canonical_name(code))
        except ReproError as error:
            raise AnalysisError(str(error)) from None
    return [checker for code, checker in chosen if code not in dropped]


def analyze_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    progress: Callable[[str], Any] | None = None,
) -> Report:
    """Run the selected checkers over every Python file under ``paths``."""
    # Import for side effect: the built-in checkers register themselves.
    import repro.analysis.checkers  # noqa: F401

    checkers = resolve_checkers(select, ignore)
    report = Report()
    for path in iter_python_files(paths):
        if progress is not None:
            progress(path.as_posix())
        try:
            ctx = load_file(path)
        except SyntaxError as error:
            report.parse_failures.append(
                ParseFailure(
                    file=_display_path(path),
                    line=error.lineno or 1,
                    message=error.msg or "invalid syntax",
                )
            )
            continue
        except OSError as error:
            report.parse_failures.append(
                ParseFailure(file=_display_path(path), line=1, message=str(error))
            )
            continue
        report.files += 1
        for checker in checkers:
            for finding in checker.check(ctx):
                excused = ctx.suppressed_codes(finding.line)
                if finding.code in excused:
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.file, f.line, f.col, f.code))
    return report
