"""Ablations for the design choices DESIGN.md calls out.

* :func:`admm_vs_direct` — the paper's central training claim (Sec. VIII-B2):
  ADMM from a pretrained model degrades accuracy less than training the
  circulant parametrization from scratch (E-RNN 0.14% vs C-LSTM 0.32% at
  block 8).
* :func:`decoupling_ablation` — the Sec. V computation-reduction techniques
  (FFT-IFFT decoupling, real-FFT symmetry, trivial twiddles), switched off
  one at a time.
* :func:`quantization_ablation` — the Sec. VII-D bit-width sweep on a
  trained model (12 bits should cost < ~0.1% at paper scale; small scale
  shows the same knee).
* :func:`phase1_trial_count` — Phase I's headline: ~5 training trials
  instead of a full grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RNNSpec
from repro.core.cost_model import layer_multiplications
from repro.core.phase1 import PhaseIConfig, PhaseIOptimizer, PhaseIResult
from repro.experiments.common import ExperimentHarness
from repro.hw.quantize import quantization_sweep
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "AdmmAblation",
    "admm_vs_direct",
    "decoupling_ablation",
    "quantization_ablation",
    "phase1_trial_count",
]


@dataclass(frozen=True)
class AdmmAblation:
    """ADMM-vs-direct degradations at one block size."""

    block_size: int
    baseline_per: float
    admm_per: float
    direct_per: float

    @property
    def admm_degradation(self) -> float:
        return self.admm_per - self.baseline_per

    @property
    def direct_degradation(self) -> float:
        return self.direct_per - self.baseline_per

    def describe(self) -> str:
        return (
            f"block {self.block_size}: baseline {self.baseline_per:.2f}%, "
            f"E-RNN (ADMM) {self.admm_per:.2f}% ({self.admm_degradation:+.2f}), "
            f"C-LSTM (direct) {self.direct_per:.2f}% "
            f"({self.direct_degradation:+.2f})  "
            f"[paper at block 8: +0.14 vs +0.32]"
        )


def admm_vs_direct(
    harness: ExperimentHarness,
    layer_sizes: tuple[int, ...] = (48,),
    block_size: int = 8,
) -> AdmmAblation:
    dense_spec = harness.make_spec("lstm", layer_sizes)
    circ_spec = dense_spec.with_block_sizes(
        tuple(block_size for _ in layer_sizes)
    )
    return AdmmAblation(
        block_size=block_size,
        baseline_per=harness.measure_per(dense_spec),
        admm_per=harness.measure_per(circ_spec, flavor="ernn"),
        direct_per=harness.measure_per(circ_spec, flavor="direct"),
    )


def decoupling_ablation(
    layer_size: int = 1024, block_size: int = 8
) -> dict[str, float]:
    """Real-multiplication counts with each Sec. V technique toggled off."""
    full = layer_multiplications(layer_size, layer_size, block_size).total
    variants = {
        "all techniques": full,
        "no FFT-IFFT decoupling": layer_multiplications(
            layer_size, layer_size, block_size, decoupling=False
        ).total,
        "no real-FFT symmetry": layer_multiplications(
            layer_size, layer_size, block_size, real_symmetry=False
        ).total,
        "no trivial-twiddle savings": layer_multiplications(
            layer_size, layer_size, block_size, twiddle_savings=False
        ).total,
        "dense (block 1)": float(layer_size * layer_size),
    }
    return variants


def quantization_ablation(
    harness: ExperimentHarness,
    layer_sizes: tuple[int, ...] = (48,),
    block_size: int = 4,
    bits_list: tuple[int, ...] = (16, 12, 10, 8, 6),
) -> dict[int, float]:
    """PER vs bit width on the harness's compressed model."""
    _, test = harness.datasets()
    dense_spec = harness.make_spec("lstm", layer_sizes)
    circ_spec = dense_spec.with_block_sizes(tuple(block_size for _ in layer_sizes))
    # Reuse the harness flow to obtain a trained structured model.
    harness.measure_per(circ_spec)  # warms the dense cache
    from repro.core.flow import ernn_compress

    dense_model: StackedRNNClassifier = harness.dense_model(dense_spec)
    train, _ = harness.datasets()
    result = ernn_compress(dense_model, circ_spec, train)
    return quantization_sweep(result.model, test, bits_list)


def phase1_trial_count(
    harness: ExperimentHarness,
    baseline_spec: RNNSpec | None = None,
    accuracy_budget: float = 5.0,
) -> PhaseIResult:
    """Run Phase I against the harness trainer and report the trial log.

    The scaled corpus has coarser PER granularity than TIMIT, so the budget
    is proportionally wider; the claim under test is the *trial count*
    (≈ 5) and the bounded search, not the absolute budget.
    """
    if baseline_spec is None:
        baseline_spec = harness.make_spec("lstm", (32, 32))
    config = PhaseIConfig(
        accuracy_budget=accuracy_budget,
        platform="XCKU060",
        max_block=16,
    )
    optimizer = PhaseIOptimizer(baseline_spec, harness.trainer(), config)
    return optimizer.run()
