"""Table I: comparison among LSTM-based RNN models.

The paper's grid — three layer configurations × block sizes (including
mixed per-layer blocks like 4−8) — scaled by ``SCALE_FACTOR`` (÷16):
256³→16³, 512²→32², 1024²→64² (projection 512→32).  Every row is trained
with the E-RNN flow (dense pretrain → ADMM → structured retrain) and scored
with corpus PER on held-out speakers.

The claims this table must preserve (Sec. IV):

* block ≤ 4 → no degradation (sometimes an improvement);
* block 8 → small degradation; block 16 → moderate;
* degradation grows monotonically-ish with block size within a layer config;
* compressing blocks beats shrinking layers at comparable parameter counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentHarness

__all__ = ["Table1Row", "LSTM_GRID", "PAPER_TABLE1_PER", "run_table1", "format_rows"]


@dataclass(frozen=True)
class GridEntry:
    """One row's architecture knobs (paper Table I columns 2-5)."""

    row_id: int
    layer_sizes: tuple[int, ...]
    block_sizes: tuple[int, ...]
    peephole: bool
    projection: bool


# The paper's 16 rows, layer sizes ÷16 (projection 512 → 32).
LSTM_GRID: tuple[GridEntry, ...] = (
    GridEntry(1, (16, 16, 16), (), False, False),
    GridEntry(2, (16, 16, 16), (2, 2, 2), False, False),
    GridEntry(3, (16, 16, 16), (4, 4, 4), False, False),
    GridEntry(4, (32, 32), (), True, False),
    GridEntry(5, (32, 32), (4, 4), True, False),
    GridEntry(6, (32, 32), (4, 8), True, False),
    GridEntry(7, (32, 32), (8, 4), True, False),
    GridEntry(8, (32, 32), (8, 8), True, False),
    GridEntry(9, (64, 64), (), True, True),
    GridEntry(10, (64, 64), (4, 4), True, True),
    GridEntry(11, (64, 64), (4, 8), True, True),
    GridEntry(12, (64, 64), (8, 4), True, True),
    GridEntry(13, (64, 64), (8, 8), True, True),
    GridEntry(14, (64, 64), (8, 16), True, True),
    GridEntry(15, (64, 64), (16, 8), True, True),
    GridEntry(16, (64, 64), (16, 16), True, True),
)

#: The paper's published PER per row (for the side-by-side print).
PAPER_TABLE1_PER: dict[int, float] = {
    1: 20.83, 2: 20.75, 3: 20.85, 4: 20.53, 5: 20.57, 6: 20.85, 7: 20.98,
    8: 21.01, 9: 20.01, 10: 20.01, 11: 20.05, 12: 20.10, 13: 20.14,
    14: 20.22, 15: 20.29, 16: 20.32,
}


@dataclass(frozen=True)
class Table1Row:
    """One measured row next to its paper reference."""

    row_id: int
    layer_sizes: tuple[int, ...]
    block_sizes: tuple[int, ...]
    per: float
    degradation: float | None
    paper_per: float
    paper_degradation: float | None


def _baseline_row_id(entry: GridEntry, grid: tuple[GridEntry, ...]) -> int:
    """The dense row sharing this entry's layer configuration."""
    for candidate in grid:
        if candidate.layer_sizes == entry.layer_sizes and not candidate.block_sizes:
            return candidate.row_id
    raise LookupError(f"no dense baseline for {entry}")


def run_grid(
    harness: ExperimentHarness,
    grid: tuple[GridEntry, ...],
    paper_per: dict[int, float],
    cell_type: str,
) -> list[Table1Row]:
    """Measure every row of a Table I/II-style grid."""
    measured: dict[int, float] = {}
    rows: list[Table1Row] = []
    for entry in grid:
        projection = entry.layer_sizes[0] // 2 if entry.projection else None
        spec = harness.make_spec(
            cell_type,
            entry.layer_sizes,
            entry.block_sizes,
            peephole=entry.peephole,
            projection_size=projection,
        )
        measured[entry.row_id] = harness.measure_per(spec)
    for entry in grid:
        base_id = _baseline_row_id(entry, grid)
        per = measured[entry.row_id]
        degradation = None if entry.row_id == base_id else per - measured[base_id]
        paper = paper_per[entry.row_id]
        paper_base = paper_per[base_id]
        rows.append(
            Table1Row(
                row_id=entry.row_id,
                layer_sizes=entry.layer_sizes,
                block_sizes=entry.block_sizes,
                per=per,
                degradation=degradation,
                paper_per=paper,
                paper_degradation=(
                    None if entry.row_id == base_id else paper - paper_base
                ),
            )
        )
    return rows


def run_table1(harness: ExperimentHarness) -> list[Table1Row]:
    return run_grid(harness, LSTM_GRID, PAPER_TABLE1_PER, "lstm")


def format_rows(rows: list[Table1Row], title: str) -> str:
    lines = [
        title,
        f"{'ID':>3} | {'Layers':>12} | {'Blocks':>10} | {'PER %':>7} | "
        f"{'degr':>6} | {'paper PER':>9} | {'paper degr':>10}",
        "-" * 76,
    ]
    for row in rows:
        layers = "-".join(map(str, row.layer_sizes))
        blocks = "-".join(map(str, row.block_sizes)) if row.block_sizes else "dense"
        degr = f"{row.degradation:+.2f}" if row.degradation is not None else "-"
        paper_degr = (
            f"{row.paper_degradation:+.2f}"
            if row.paper_degradation is not None
            else "-"
        )
        lines.append(
            f"{row.row_id:>3} | {layers:>12} | {blocks:>10} | {row.per:>7.2f} | "
            f"{degr:>6} | {row.paper_per:>9.2f} | {paper_degr:>10}"
        )
    return "\n".join(lines)
