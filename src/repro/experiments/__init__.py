"""Experiment harness shared by the benchmark suite (one module per table/figure)."""

from repro.experiments.common import SCALE_FACTOR, ExperimentHarness, ExperimentSettings

__all__ = ["SCALE_FACTOR", "ExperimentHarness", "ExperimentSettings"]
