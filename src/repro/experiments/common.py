"""Shared experiment harness: corpus, training, caching.

Accuracy experiments (Tables I-II, the ADMM ablation, Phase I) train many
RNNs.  The harness keeps that affordable and reproducible:

* one deterministic synthetic corpus per :class:`ExperimentSettings`;
* dense baselines cached per architecture (block-size rows reuse them, the
  way the paper's Phase I reuses one pretrained model per layer size);
* every measured PER cached in-process and, optionally, on disk through
  the shared :class:`repro.api.diskcache.DiskCache` tier (the ``per``
  namespace under ``REPRO_CACHE_DIR`` / ``~/.cache/repro-ernn``; set
  ``REPRO_NO_CACHE=1`` to re-measure from scratch).  Keys include the
  full settings, so changing any training budget invalidates cleanly —
  and concurrent benchmark runs share one atomic-rename-safe store.

Scale: layer sizes are the paper's ÷16 (1024→64, 512→32, 256→16) so numpy
training finishes in minutes; block sizes are the paper's own.  DESIGN.md §2
records why this preserves the orderings Tables I-II assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.api.diskcache import DiskCache
from repro.asr.features import FeatureConfig, FeatureExtractor
from repro.asr.phones import PhoneSet
from repro.asr.pipeline import (
    PreparedDataset,
    TrainConfig,
    prepare_dataset,
    train_model,
)
from repro.runtime.evaluate import evaluate_per
from repro.asr.timit import CorpusConfig, SyntheticTIMIT
from repro.config import RNNSpec
from repro.core.admm import ADMMConfig
from repro.core.flow import ernn_compress
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier

__all__ = ["ExperimentSettings", "ExperimentHarness", "SCALE_FACTOR"]

#: Paper layer sizes divided by this give the reproduction's layer sizes.
SCALE_FACTOR = 16


@dataclass(frozen=True)
class ExperimentSettings:
    """Corpus and training budgets shared by all accuracy experiments."""

    num_phones: int = 16
    num_speakers: int = 10
    utterances_per_speaker: int = 10
    test_speakers: int = 3
    sample_rate: int = 8000
    noise_level: float = 0.25
    corpus_seed: int = 3
    num_filters: int = 13
    dense_epochs: int = 25
    admm_epochs: int = 8
    retrain_epochs: int = 12
    direct_epochs: int = 20  # C-LSTM-style from-scratch training
    batch_size: int = 8
    learning_rate: float = 5e-3
    seed: int = 7

    @classmethod
    def fast(cls) -> "ExperimentSettings":
        """Micro settings for the test suite (seconds, not minutes)."""
        return cls(
            num_phones=8,
            num_speakers=4,
            utterances_per_speaker=4,
            test_speakers=1,
            dense_epochs=4,
            admm_epochs=2,
            retrain_epochs=2,
            direct_epochs=4,
        )

    def cache_key(self) -> str:
        return json.dumps(self.__dict__, sort_keys=True)


def _spec_key(spec: RNNSpec) -> str:
    return spec.describe()


class ExperimentHarness:
    """Trains and evaluates specs on the shared corpus with caching."""

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        cache_path: Path | str | None = None,
    ):
        self.settings = settings if settings is not None else ExperimentSettings()
        self._train: PreparedDataset | None = None
        self._test: PreparedDataset | None = None
        self._dense_models: dict[str, StackedRNNClassifier] = {}
        self._per_cache: dict[str, float] = {}
        # The persistent tier is the library-wide DiskCache (``per``
        # namespace); ``cache_path`` overrides the root *directory* and
        # REPRO_NO_CACHE disables it entirely.  Fail loudly on the legacy
        # single-file store rather than silently caching nothing.
        if cache_path is not None and Path(cache_path).is_file():
            raise ConfigError(
                f"cache_path now names a cache directory, but {cache_path} "
                "is a file (the legacy .bench_cache.json store); delete it "
                "or point at a directory"
            )
        self._disk = DiskCache.from_env(root=cache_path, namespace="per")

    # ------------------------------------------------------------------
    # Disk cache
    # ------------------------------------------------------------------
    def _disk_key(self, memo_key: str) -> str | None:
        if self._disk is None:
            return None
        return self._disk.key("per", self.settings.cache_key(), memo_key)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def datasets(self) -> tuple[PreparedDataset, PreparedDataset]:
        if self._train is None:
            cfg = self.settings
            phones = PhoneSet.folded().subset(cfg.num_phones)
            corpus = SyntheticTIMIT(
                CorpusConfig(
                    phone_set=phones,
                    num_speakers=cfg.num_speakers,
                    utterances_per_speaker=cfg.utterances_per_speaker,
                    test_speakers=cfg.test_speakers,
                    sample_rate=cfg.sample_rate,
                    phones_per_utterance=(5, 9),
                    noise_level=cfg.noise_level,
                    seed=cfg.corpus_seed,
                )
            )
            extractor = FeatureExtractor(
                FeatureConfig(
                    sample_rate=cfg.sample_rate, num_filters=cfg.num_filters
                )
            )
            extractor.fit_normalizer(corpus.train)
            self._train = prepare_dataset(corpus.train, extractor, phones)
            self._test = prepare_dataset(corpus.test, extractor, phones)
        assert self._test is not None
        return self._train, self._test

    @property
    def feature_dim(self) -> int:
        return self.datasets()[0].feature_dim

    @property
    def num_classes(self) -> int:
        return len(self.datasets()[0].phone_set)

    def make_spec(
        self,
        cell_type: str,
        layer_sizes: tuple[int, ...],
        block_sizes: tuple[int, ...] = (),
        peephole: bool = False,
        projection_size: int | None = None,
        io_block_size: int | None = None,
    ) -> RNNSpec:
        """Spec bound to the harness corpus dimensions."""
        return RNNSpec(
            cell_type=cell_type,
            input_size=self.feature_dim,
            layer_sizes=layer_sizes,
            output_size=self.num_classes,
            block_sizes=block_sizes,
            peephole=peephole,
            projection_size=projection_size,
            io_block_size=io_block_size,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _train_config(self, epochs: int) -> TrainConfig:
        cfg = self.settings
        return TrainConfig(
            epochs=epochs,
            batch_size=cfg.batch_size,
            learning_rate=cfg.learning_rate,
            lr_decay=0.96,
            seed=cfg.seed,
        )

    def dense_model(self, spec: RNNSpec) -> StackedRNNClassifier:
        """Train (or fetch) the dense baseline for an architecture."""
        dense_spec = spec.with_block_sizes(()).with_io_block_size(None)
        key = _spec_key(dense_spec)
        if key not in self._dense_models:
            train, _ = self.datasets()
            model = StackedRNNClassifier(
                dense_spec, rng=np.random.default_rng(self.settings.seed)
            )
            train_model(model, train, self._train_config(self.settings.dense_epochs))
            self._dense_models[key] = model
        return self._dense_models[key]

    def measure_per(self, spec: RNNSpec, flavor: str = "ernn") -> float:
        """Test PER for a spec under a training flavor.

        * ``"ernn"`` — dense baseline for dense specs; pretrained + ADMM +
          structured retrain for circulant specs (the E-RNN flow).
        * ``"direct"`` — structured training from scratch (the C-LSTM flavor;
          circulant specs only).
        """
        key = f"{flavor}|{_spec_key(spec)}"
        if key in self._per_cache:
            return self._per_cache[key]
        disk_key = self._disk_key(key)
        if disk_key is not None:
            stored = self._disk.get(disk_key)
            if isinstance(stored, float):
                self._per_cache[key] = stored
                return stored

        train, test = self.datasets()
        cfg = self.settings
        if not spec.is_block_circulant:
            model = self.dense_model(spec)
            per = evaluate_per(model, test)
        elif flavor == "direct":
            model = StackedRNNClassifier(
                spec, structured=True, rng=np.random.default_rng(cfg.seed)
            )
            train_model(model, train, self._train_config(cfg.direct_epochs))
            per = evaluate_per(model, test)
        else:
            dense = self.dense_model(spec)
            result = ernn_compress(
                dense,
                spec,
                train,
                admm_config=ADMMConfig(rho=0.05, rho_growth=1.4),
                admm_train=replace(
                    self._train_config(cfg.admm_epochs),
                    learning_rate=2e-3,
                    admm_update_every=1,
                ),
                retrain=replace(
                    self._train_config(cfg.retrain_epochs),
                    learning_rate=3e-3,
                    lr_decay=0.92,
                ),
                rng=np.random.default_rng(cfg.seed),
            )
            per = evaluate_per(result.model, test)

        self._per_cache[key] = per
        if disk_key is not None:
            try:
                self._disk.put(disk_key, float(per))
            except OSError:
                pass
        return per

    def trainer(self, flavor: str = "ernn"):
        """``spec -> PER`` callable for the Phase-I optimizer."""

        def train_spec(spec: RNNSpec) -> float:
            return self.measure_per(spec, flavor=flavor)

        return train_spec
