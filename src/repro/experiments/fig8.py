"""Fig. 8: normalized multiplication count vs block size.

Regenerates both panels (layer size 512 and 1024) from the cost model and
checks the paper's two qualitative claims: the curve starts near 0.5 at
block size 2 and converges around block size 32-64, bounding the Phase-I
search from above.
"""

from __future__ import annotations

from repro.core.cost_model import fig8_curve, recommended_block_upper_bound

__all__ = ["LAYER_SIZES", "BLOCK_SIZES", "run_fig8", "format_fig8"]

LAYER_SIZES = (512, 1024)
BLOCK_SIZES = (2, 4, 8, 16, 32, 64, 128, 256)


def run_fig8() -> dict[int, dict[int, float]]:
    """{layer_size: {block_size: normalized multiplications}}."""
    return {size: fig8_curve(size, BLOCK_SIZES) for size in LAYER_SIZES}


def format_fig8(curves: dict[int, dict[int, float]]) -> str:
    lines = ["Fig. 8: normalized # multiplications vs block size"]
    header = "layer size | " + " | ".join(f"{b:>6d}" for b in BLOCK_SIZES)
    lines.append(header)
    lines.append("-" * len(header))
    for size, curve in curves.items():
        values = " | ".join(f"{curve[b]:6.4f}" for b in BLOCK_SIZES)
        bound = recommended_block_upper_bound(size)
        lines.append(f"{size:>10d} | {values}   (converges at {bound})")
    lines.append(
        "paper: starts at ~0.5, converges at block size 32-64 -> upper bound"
    )
    # ASCII rendition of the two panels.
    for size, curve in curves.items():
        lines.append(f"\nlayer {size}:")
        peak = max(curve.values())
        for block in BLOCK_SIZES:
            bar = "#" * int(round(40 * curve[block] / peak))
            lines.append(f"  {block:>4d} | {bar} {curve[block]:.4f}")
    return "\n".join(lines)
