"""Table IV: comparison of the two FPGA platforms.

Static resource totals (reproduced verbatim in :mod:`repro.hw.platform`)
plus the derived quantities the rest of the reproduction computes from them
— BRAM capacity in MB (the "4-8 MB" of Sec. VI-B) and the per-platform PE
capacity for the two paper block sizes.
"""

from __future__ import annotations

from repro.config import AccelSpec
from repro.experiments.table3 import lstm_workload
from repro.hw.accelerator import pe_capacity
from repro.hw.platform import ADM_PCIE_7V3, XCKU060, FPGAPlatform

__all__ = ["PAPER_TABLE4", "run_table4", "format_table4"]

#: Published Table IV rows: (DSP, BRAM, LUT, FF, process).
PAPER_TABLE4: dict[str, tuple[int, int, int, int, int]] = {
    "ADM-PCIE-7V3": (3600, 1470, 859_200, 429_600, 28),
    "XCKU060": (2760, 1080, 331_680, 663_360, 20),
}


def run_table4() -> dict[str, dict[str, float]]:
    """Platform rows plus derived capacities."""
    rows: dict[str, dict[str, float]] = {}
    # The paper's Table IV covers exactly these two boards; iterate them
    # explicitly rather than the live platform registry so user-registered
    # platforms don't leak into the reproduction.
    for platform in (ADM_PCIE_7V3, XCKU060):
        name = platform.name
        entry: dict[str, float] = {
            "dsp": platform.dsp,
            "bram_blocks": platform.bram_blocks,
            "lut": platform.lut,
            "ff": platform.ff,
            "process_nm": platform.process_nm,
            "bram_mb": platform.bram_bytes / 1e6,
        }
        for block in (8, 16):
            entry[f"pe_capacity_fft{block}"] = pe_capacity(
                lstm_workload(block), AccelSpec(name)
            )
        rows[name] = entry
    return rows


def format_table4(rows: dict[str, dict[str, float]]) -> str:
    lines = [
        "Table IV: platform comparison (model == paper for rows 1-5)",
        f"{'Platform':>14} | {'DSP':>5} | {'BRAM':>5} | {'LUT':>7} | "
        f"{'FF':>7} | {'nm':>3} | {'BRAM MB':>7} | {'#PE fft8':>8} | {'#PE fft16':>9}",
        "-" * 92,
    ]
    for name, entry in rows.items():
        lines.append(
            f"{name:>14} | {entry['dsp']:>5.0f} | {entry['bram_blocks']:>5.0f} | "
            f"{entry['lut']:>7.0f} | {entry['ff']:>7.0f} | "
            f"{entry['process_nm']:>3.0f} | {entry['bram_mb']:>7.2f} | "
            f"{entry['pe_capacity_fft8']:>8.0f} | {entry['pe_capacity_fft16']:>9.0f}"
        )
    return "\n".join(lines)


def verify_against_paper() -> bool:
    """Resource totals must equal the published Table IV exactly."""
    boards = {ADM_PCIE_7V3.name: ADM_PCIE_7V3, XCKU060.name: XCKU060}
    for name, (dsp, bram, lut, ff, process) in PAPER_TABLE4.items():
        platform: FPGAPlatform = boards[name]
        if (platform.dsp, platform.bram_blocks, platform.lut, platform.ff,
                platform.process_nm) != (dsp, bram, lut, ff, process):
            return False
    return True
