"""Table III: detailed FPGA comparison — ESE vs C-LSTM vs E-RNN.

Runs every hardware configuration of the paper's headline table through the
analytic models at the paper's *exact* dimensions (LSTM-1024 w/ projection
512, GRU-1024, input 153 — no scaling on the hardware side):

* ESE (pruned sparse LSTM, KU060) — :mod:`repro.baselines.ese`;
* C-LSTM FFT8/FFT16 (16-bit, unoptimized PEs, 7V3);
* E-RNN LSTM FFT8/FFT16 and GRU FFT8/FFT16 on both platforms.

The headline ratios the reproduction must preserve (Sec. VIII-B):
E-RNN FFT8 ≈ 13× ESE performance / ≈ 23× energy efficiency; FFT16 ≈ 24× /
36×; GRU ≈ 26× / 37.4×; E-RNN ≈ 1.3× / 1.2× over C-LSTM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.clstm import CLSTM_WEIGHT_BITS
from repro.baselines.ese import ESEAcceleratorModel
from repro.config import AccelSpec, RNNSpec
from repro.core.compression import (
    compression_ratio,
    ese_effective_compression,
    layer_matrix_params,
)
from repro.hw.accelerator import CLSTM_PE_EFFICIENCY, build_design
from repro.hw.report import ImplementationReport, format_table

__all__ = [
    "PAPER_TABLE3",
    "PaperColumn",
    "lstm_workload",
    "gru_workload",
    "run_table3",
    "format_comparison",
]

#: The ESE/Google LSTM acoustic-model dimensions used throughout Table III.
PAPER_INPUT = 153
PAPER_HIDDEN = 1024
PAPER_PROJECTION = 512
PAPER_OUTPUT = 39


def lstm_workload(block_size: int) -> RNNSpec:
    """LSTM-1024 with projection-512 at a given block size (dense if 1)."""
    return RNNSpec(
        "lstm",
        PAPER_INPUT,
        (PAPER_HIDDEN,),
        PAPER_OUTPUT,
        block_sizes=(block_size,) if block_size > 1 else (),
        peephole=True,
        projection_size=PAPER_PROJECTION,
    )


def gru_workload(block_size: int) -> RNNSpec:
    """GRU-1024 at a given block size."""
    return RNNSpec(
        "gru",
        PAPER_INPUT,
        (PAPER_HIDDEN,),
        PAPER_OUTPUT,
        block_sizes=(block_size,),
    )


@dataclass(frozen=True)
class PaperColumn:
    """Published Table III values for one configuration."""

    label: str
    latency_us: float
    fps: float
    power_watts: float | None
    per_degradation: float


PAPER_TABLE3: dict[str, PaperColumn] = {
    "ESE": PaperColumn("ESE", 57.0, 17_544, 41.0, 0.30),
    "C-LSTM FFT8 (7V3)": PaperColumn("C-LSTM FFT8 (7V3)", 16.7, 179_687, 22.0, 0.32),
    "E-RNN FFT8 (KU060)": PaperColumn("E-RNN FFT8 (KU060)", 13.7, 231_514, None, 0.14),
    "E-RNN FFT8 (7V3)": PaperColumn("E-RNN FFT8 (7V3)", 12.9, 240_389, 24.0, 0.14),
    "E-RNN FFT16 (KU060)": PaperColumn("E-RNN FFT16 (KU060)", 7.4, 429_327, None, 0.31),
    "E-RNN FFT16 (7V3)": PaperColumn("E-RNN FFT16 (7V3)", 8.3, 382_510, 25.0, 0.31),
    "E-RNN GRU FFT8 (KU060)": PaperColumn(
        "E-RNN GRU FFT8 (KU060)", 10.5, 284_540, None, 0.18
    ),
    "E-RNN GRU FFT8 (7V3)": PaperColumn(
        "E-RNN GRU FFT8 (7V3)", 10.5, 284_463, 22.0, 0.18
    ),
    "E-RNN GRU FFT16 (KU060)": PaperColumn(
        "E-RNN GRU FFT16 (KU060)", 6.7, 445_167, None, 0.33
    ),
    "E-RNN GRU FFT16 (7V3)": PaperColumn(
        "E-RNN GRU FFT16 (7V3)", 6.5, 464_582, 29.0, 0.33
    ),
}


def _ese_report() -> ImplementationReport:
    design = ESEAcceleratorModel(lstm_workload(1)).build()
    dense_m = layer_matrix_params(lstm_workload(1), compressed=False) / 1e6
    return ImplementationReport(
        label="ESE",
        cell="LSTM-1024 proj-512 (pruned)",
        platform="XCKU060",
        quant_bits=12,
        params_top_layer_m=dense_m / design.config.prune_ratio * 2,  # w + index
        compression_ratio=ese_effective_compression(),
        utilization=design.utilization,
        latency_us=design.latency_us,
        fps=design.fps,
        power_watts=design.power_watts,
        per_degradation=PAPER_TABLE3["ESE"].per_degradation,
    )


def _circulant_report(
    label: str,
    spec: RNNSpec,
    platform: str,
    bits: int,
    pe_efficiency: float,
    per_degradation: float | None,
) -> ImplementationReport:
    accel = AccelSpec(platform, weight_bits=bits, input_bits=bits)
    design = build_design(spec, accel, pe_efficiency=pe_efficiency)
    return ImplementationReport(
        label=label,
        cell=spec.describe(),
        platform=platform,
        quant_bits=bits,
        params_top_layer_m=layer_matrix_params(spec) / 1e6,
        compression_ratio=compression_ratio(spec),
        utilization=design.utilization,
        latency_us=design.latency_us,
        fps=design.fps,
        power_watts=design.power_watts,
        per_degradation=per_degradation,
    )


def run_table3(
    measured_degradations: dict[str, float] | None = None,
) -> list[ImplementationReport]:
    """All ten Table III columns through the models.

    ``measured_degradations`` (optional) maps column labels to PER
    degradations measured by the Table I/II experiments; when absent, the
    paper's published degradations are attached so the printed table stays
    complete.
    """
    degradations = {
        label: column.per_degradation for label, column in PAPER_TABLE3.items()
    }
    if measured_degradations:
        degradations.update(measured_degradations)

    reports = [_ese_report()]
    for block in (8, 16):
        reports.append(
            _circulant_report(
                f"C-LSTM FFT{block} (7V3)" if block == 8 else f"C-LSTM FFT{block}*",
                lstm_workload(block),
                "ADM-PCIE-7V3",
                CLSTM_WEIGHT_BITS,
                CLSTM_PE_EFFICIENCY,
                degradations.get("C-LSTM FFT8 (7V3)") if block == 8 else None,
            )
        )
    for cell, factory in (("", lstm_workload), ("GRU ", gru_workload)):
        for block in (8, 16):
            for platform, tag in (("XCKU060", "KU060"), ("ADM-PCIE-7V3", "7V3")):
                label = f"E-RNN {cell}FFT{block} ({tag})"
                reports.append(
                    _circulant_report(
                        label,
                        factory(block),
                        platform,
                        12,
                        1.0,
                        degradations.get(label),
                    )
                )
    return reports


def format_comparison(reports: list[ImplementationReport]) -> str:
    """Model table plus the paper-vs-model ratio summary."""
    lines = [format_table(reports, title="Table III (model)"), ""]
    ese = next(r for r in reports if r.label == "ESE")
    lines.append("Headline ratios vs ESE (paper in parentheses):")
    paper_ese = PAPER_TABLE3["ESE"]
    for report in reports:
        if report.label == "ESE":
            continue
        paper = PAPER_TABLE3.get(report.label)
        perf = report.fps / ese.fps
        eff = (
            report.energy_efficiency / ese.energy_efficiency
            if report.energy_efficiency and ese.energy_efficiency
            else float("nan")
        )
        if paper is not None:
            paper_perf = paper.fps / paper_ese.fps
            lines.append(
                f"  {report.label:28s} perf {perf:6.1f}x (paper {paper_perf:5.1f}x)"
                f"  energy-eff {eff:6.1f}x"
            )
        else:
            lines.append(
                f"  {report.label:28s} perf {perf:6.1f}x  energy-eff {eff:6.1f}x"
            )
    return "\n".join(lines)
