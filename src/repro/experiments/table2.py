"""Table II: comparison among GRU-based RNN models.

Same grid structure as Table I (see :mod:`repro.experiments.table1`) with
GRU cells — no peepholes, no projection, and the small config's block sizes
are 4/8 rather than 2/4, exactly as in the paper.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentHarness
from repro.experiments.table1 import GridEntry, Table1Row, format_rows, run_grid

__all__ = ["GRU_GRID", "PAPER_TABLE2_PER", "run_table2", "format_rows"]

GRU_GRID: tuple[GridEntry, ...] = (
    GridEntry(1, (16, 16, 16), (), False, False),
    GridEntry(2, (16, 16, 16), (4, 4, 4), False, False),
    GridEntry(3, (16, 16, 16), (8, 8, 8), False, False),
    GridEntry(4, (32, 32), (), False, False),
    GridEntry(5, (32, 32), (4, 4), False, False),
    GridEntry(6, (32, 32), (4, 8), False, False),
    GridEntry(7, (32, 32), (8, 4), False, False),
    GridEntry(8, (32, 32), (8, 8), False, False),
    GridEntry(9, (64, 64), (), False, False),
    GridEntry(10, (64, 64), (4, 4), False, False),
    GridEntry(11, (64, 64), (4, 8), False, False),
    GridEntry(12, (64, 64), (8, 4), False, False),
    GridEntry(13, (64, 64), (8, 8), False, False),
    GridEntry(14, (64, 64), (8, 16), False, False),
    GridEntry(15, (64, 64), (16, 8), False, False),
    GridEntry(16, (64, 64), (16, 16), False, False),
)

PAPER_TABLE2_PER: dict[int, float] = {
    1: 20.72, 2: 20.81, 3: 20.88, 4: 20.51, 5: 20.55, 6: 20.73, 7: 20.89,
    8: 20.95, 9: 20.02, 10: 20.03, 11: 20.08, 12: 20.13, 13: 20.20,
    14: 20.25, 15: 20.31, 16: 20.36,
}


def run_table2(harness: ExperimentHarness) -> list[Table1Row]:
    return run_grid(harness, GRU_GRID, PAPER_TABLE2_PER, "gru")
