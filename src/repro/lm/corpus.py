"""Character vocabularies and corpus windows for LM training.

A :class:`CharVocab` is an ordered, deduplicated character set; token id
``i`` is the i-th character in sorted order, so the mapping is a pure
function of the character *set* and two hosts building a vocab from the
same text agree on every id without coordination.  The vocab rides inside
the compiled artifact (:class:`repro.runtime.model.LMMeta`) so a serving
node can decode generated ids without seeing the corpus.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = ["CharVocab", "DEMO_TEXT", "lm_batches"]


# A small self-hosted corpus for demos, selftests, and CI smoke: enough
# structure (repeated vocabulary, punctuation, newlines) for a tiny
# char-LM to pick up local statistics in a few epochs.
DEMO_TEXT = (
    "the recurrent network reads one character at a time and keeps a "
    "hidden state.\nthe hidden state is the memory of the sequence.\n"
    "a block circulant matrix turns a dense multiply into short fft "
    "products.\nthe fixed point backend emulates the fpga datapath bit "
    "by bit.\nthe server batches rows from many sessions into one "
    "step.\nthe gateway routes sessions to backends by consistent "
    "hash.\nthe journal replays every acknowledged row after a "
    "failover.\nthe same seed must always produce the same "
    "characters.\n"
) * 4


class CharVocab:
    """An immutable character-id mapping with strict encode/decode."""

    __slots__ = ("_chars", "_index")

    def __init__(self, chars: Sequence[str]):
        chars = tuple(chars)
        if not chars:
            raise ConfigError("a vocab needs at least one character")
        for ch in chars:
            if not isinstance(ch, str) or len(ch) != 1:
                raise ConfigError(f"vocab entries must be single chars: {ch!r}")
        if len(set(chars)) != len(chars):
            raise ConfigError("vocab characters must be unique")
        self._chars = chars
        self._index = {ch: i for i, ch in enumerate(chars)}

    @classmethod
    def from_text(cls, text: str) -> "CharVocab":
        """Build the canonical (sorted) vocab of every character in ``text``."""
        if not text:
            raise ConfigError("cannot build a vocab from empty text")
        return cls(sorted(set(text)))

    @property
    def size(self) -> int:
        return len(self._chars)

    @property
    def chars(self) -> tuple[str, ...]:
        return self._chars

    def encode(self, text: str) -> np.ndarray:
        """Map text to int64 token ids; unknown characters are an error."""
        try:
            ids = [self._index[ch] for ch in text]
        except KeyError as error:
            raise ConfigError(
                f"character {error.args[0]!r} is not in the vocab"
            ) from None
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids) -> str:
        """Map token ids back to text; out-of-range ids are an error."""
        ids = np.asarray(ids)
        if ids.dtype == object or not np.issubdtype(ids.dtype, np.integer):
            raise ConfigError(f"token ids must be integers, got {ids.dtype!s}")
        pieces = []
        for token in ids.reshape(-1).tolist():
            if not 0 <= token < len(self._chars):
                raise ConfigError(
                    f"token id {token} outside vocab of size {len(self._chars)}"
                )
            pieces.append(self._chars[token])
        return "".join(pieces)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharVocab) and self._chars == other._chars

    def __hash__(self) -> int:
        return hash(self._chars)

    def __repr__(self) -> str:
        return f"CharVocab(size={len(self._chars)})"


def lm_batches(
    tokens: np.ndarray,
    seq_len: int,
    batch_size: int,
    rng: np.random.Generator,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(inputs, targets)`` windows of shape ``(seq_len, B)`` int64.

    Windows are the non-overlapping ``seq_len`` strides of the corpus,
    shuffled each epoch by ``rng``; ``targets`` is ``inputs`` shifted one
    character ahead (next-character prediction).  The final batch may be
    narrower than ``batch_size``.
    """
    tokens = np.ascontiguousarray(np.asarray(tokens, dtype=np.int64))
    if seq_len < 1 or batch_size < 1:
        raise ConfigError("seq_len and batch_size must be positive")
    if tokens.ndim != 1 or tokens.shape[0] < seq_len + 1:
        raise ConfigError(
            f"corpus of {tokens.shape} is too short for seq_len={seq_len}"
        )
    starts = np.arange(0, tokens.shape[0] - seq_len, seq_len, dtype=np.int64)
    rng.shuffle(starts)
    for begin in range(0, starts.shape[0], batch_size):
        chunk = starts[begin : begin + batch_size]
        inputs = np.stack([tokens[s : s + seq_len] for s in chunk], axis=1)
        targets = np.stack(
            [tokens[s + 1 : s + seq_len + 1] for s in chunk], axis=1
        )
        yield inputs, targets
