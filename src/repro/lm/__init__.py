"""Character-level RNN language modeling: the second first-class workload.

The E-RNN paper's claim is multi-application — ASR *and* language
modeling on the same block-circulant hardware.  This package supplies the
LM side: corpus handling (:mod:`repro.lm.corpus`), deterministic seeded
sampling (:mod:`repro.lm.sampling`), and a tiny training loop
(:mod:`repro.lm.train`) that fits a char-LM as a plain
:class:`~repro.nn.rnn.StackedRNNClassifier` with
``input_size == output_size == vocab_size`` — token ids enter as one-hot
rows, so the first cell's input weights are the embedding and the
classifier head is the LM head, and both runtime backends serve the model
unchanged.
"""

from repro.lm.corpus import DEMO_TEXT, CharVocab, lm_batches
from repro.lm.sampling import sample_token, validate_sampling
from repro.lm.train import (
    LMTrainConfig,
    LMTrainingHistory,
    build_char_lm,
    train_char_lm,
)

__all__ = [
    "CharVocab",
    "DEMO_TEXT",
    "lm_batches",
    "sample_token",
    "validate_sampling",
    "LMTrainConfig",
    "LMTrainingHistory",
    "build_char_lm",
    "train_char_lm",
]
