"""Tiny char-LM training: fit a StackedRNNClassifier for next-char prediction.

The LM is deliberately *not* a new model class.  Token ids are fed as
one-hot float64 rows, so ``input_size == output_size == vocab_size`` and
the first cell's input weight matrix is the embedding while the existing
``Linear`` classifier is the LM head.  Everything downstream — ADMM
block-circulant projection, ``compile()`` to either backend, serving —
applies to the LM because it is the same architecture the ASR path trains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import RNNSpec
from repro.errors import TrainingError
from repro.lm.corpus import lm_batches
from repro.nn.loss import cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "LMTrainConfig",
    "LMTrainingHistory",
    "build_char_lm",
    "train_char_lm",
]


@dataclass(frozen=True)
class LMTrainConfig:
    """Hyper-parameters for the char-LM fit (fixture-corpus scale)."""

    seq_len: int = 16
    batch_size: int = 8
    epochs: int = 4
    learning_rate: float = 0.01
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    lr_decay: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError("epochs must be at least 1")
        if self.seq_len < 1 or self.batch_size < 1:
            raise TrainingError("seq_len and batch_size must be positive")
        if not 0 < self.lr_decay <= 1.0:
            raise TrainingError("lr_decay must be in (0, 1]")


@dataclass
class LMTrainingHistory:
    """Per-epoch loss trace plus throughput for the bench trajectory."""

    losses: list[float] = field(default_factory=list)
    tokens_trained: int = 0
    seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def tokens_per_sec(self) -> float:
        if self.seconds <= 0.0:
            return float("nan")
        return self.tokens_trained / self.seconds


def build_char_lm(
    vocab_size: int,
    layer_sizes: tuple[int, ...] = (64,),
    cell_type: str = "gru",
    block_sizes: tuple[int, ...] = (),
    seed: int = 0,
) -> StackedRNNClassifier:
    """Construct an untrained char-LM (``input == output == vocab_size``).

    With non-trivial ``block_sizes`` the model is built *structured*
    (direct C-LSTM-style circulant training), so the result compiles to
    the fixed backend without an ADMM pass — the right scale for the
    fixture corpora this trains on.
    """
    spec = RNNSpec(
        cell_type=cell_type,
        input_size=vocab_size,
        layer_sizes=tuple(layer_sizes),
        output_size=vocab_size,
        block_sizes=tuple(block_sizes),
    )
    return StackedRNNClassifier(
        spec,
        structured=spec.is_block_circulant,
        rng=np.random.default_rng(seed),
    )


def train_char_lm(
    model: StackedRNNClassifier,
    tokens: np.ndarray,
    config: LMTrainConfig,
) -> LMTrainingHistory:
    """Fit ``model`` on a token stream with Adam next-char cross-entropy."""
    vocab_size = model.spec.input_size
    if model.spec.output_size != vocab_size:
        raise TrainingError(
            "a char-LM needs input_size == output_size == vocab_size, got "
            f"{model.spec.input_size} vs {model.spec.output_size}"
        )
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(
        model.parameters(),
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
    )
    identity = np.eye(vocab_size, dtype=np.float64)
    history = LMTrainingHistory()
    started = time.perf_counter()
    for epoch in range(config.epochs):
        optimizer.lr = config.learning_rate * (config.lr_decay**epoch)
        epoch_loss = 0.0
        epoch_tokens = 0
        for inputs, targets in lm_batches(
            tokens, config.seq_len, config.batch_size, rng
        ):
            optimizer.zero_grad()
            logits = model(identity[inputs])
            loss = cross_entropy(logits, targets)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            count = int(targets.size)
            epoch_loss += loss.item() * count
            epoch_tokens += count
        if epoch_tokens == 0:
            raise TrainingError("corpus produced no training batches")
        history.losses.append(epoch_loss / epoch_tokens)
        history.tokens_trained += epoch_tokens
    history.seconds = time.perf_counter() - started
    return history
