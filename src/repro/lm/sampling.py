"""Seeded temperature/top-k sampling for LM generation.

Determinism is a *served* contract here, not a convenience: the same seed
must yield the same token stream whether generation runs in-process, via
the micro-batching server, over the wire in a spawned worker, or replayed
through a gateway failover — that byte-gate is what makes generation
journal-replayable.  So everything below is pinned: the RNG is
``np.random.default_rng(seed)`` (PCG64 — stable stream across platforms
and process start methods), all arithmetic is float64, ties in top-k are
broken by a *stable* sort, and the inverse-CDF draw consumes exactly one
``rng.random()`` per sampled token.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

import math

import numpy as np

from repro.errors import ConfigError

__all__ = ["sample_token", "validate_sampling"]


def validate_sampling(temperature: float, top_k: int) -> tuple[float, int]:
    """Normalize sampling knobs; raise :class:`ConfigError` when malformed.

    ``temperature <= 0`` selects greedy decoding (argmax, lowest index on
    ties); ``top_k == 0`` disables the top-k cut.
    """
    try:
        temperature = float(temperature)
    except (TypeError, ValueError):
        raise ConfigError(f"temperature is not a number: {temperature!r}") from None
    if math.isnan(temperature) or math.isinf(temperature):
        raise ConfigError(f"temperature must be finite, got {temperature!r}")
    if not isinstance(top_k, (int, np.integer)) or isinstance(top_k, bool):
        raise ConfigError(f"top_k must be an integer, got {top_k!r}")
    top_k = int(top_k)
    if top_k < 0:
        raise ConfigError(f"top_k must be >= 0, got {top_k}")
    return temperature, top_k


def sample_token(
    logits: np.ndarray,
    *,
    temperature: float,
    top_k: int,
    rng: np.random.Generator,
) -> int:
    """Draw one token id from a ``(C,)`` logits row.

    Greedy when ``temperature <= 0``; otherwise softmax over
    ``logits / temperature`` restricted to the ``top_k`` highest entries
    (all entries when ``top_k`` is 0 or >= C), sampled by inverse CDF with
    a single ``rng.random()`` draw.
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    if logits.shape[0] < 1:
        raise ConfigError("cannot sample from an empty logits row")
    if not np.all(np.isfinite(logits)):
        raise ConfigError("logits contain NaN or Inf; refusing to sample")
    if temperature <= 0.0:
        return int(np.argmax(logits))
    scaled = logits / np.float64(temperature)
    if 0 < top_k < scaled.shape[0]:
        # Stable sort pins tie order to the lower index, so the kept set
        # is identical everywhere the logits bytes are.
        keep = np.argsort(-scaled, kind="stable")[:top_k]
    else:
        keep = np.arange(scaled.shape[0], dtype=np.int64)
    kept = scaled[keep]
    kept = kept - np.max(kept)
    weights = np.exp(kept)
    probs = weights / np.sum(weights)
    draw = rng.random()
    cursor = int(np.searchsorted(np.cumsum(probs), draw, side="right"))
    if cursor >= keep.shape[0]:
        cursor = keep.shape[0] - 1
    return int(keep[cursor])
