"""ESE baseline: pruned sparse LSTM + its accelerator model (Han et al. [23]).

Two halves:

* **Model side** — :func:`train_ese_model` reproduces the prune-and-retrain
  recipe on our training substrate: train dense, then step the sparsity up
  while retraining, keeping pruned weights at zero.  ESE's published
  operating point is ~9× parameter reduction at ~0.3% PER degradation.
* **Hardware side** — :class:`ESEAcceleratorModel` prices the sparse design.
  ESE's published KU060 numbers (57 µs, 17,544 FPS, 41 W, Table III col. 1)
  are reproduced by a channel model with the three structural weaknesses the
  paper attributes to it: (i) index+value storage halves the effective
  compression to ~4.5:1; (ii) the irregular structure limits parallelism to
  one MAC per channel per cycle (index decode serializes each gather);
  (iii) activations live in off-chip look-up tables, costing DDR power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RNNSpec
from repro.core.compression import matrix_inventory
from repro.errors import ConfigError
from repro.hw.platform import FPGAPlatform, ResourceVector, get_platform
from repro.hw.power import energy_efficiency, power_watts

__all__ = ["ESEConfig", "ESEAcceleratorModel", "ESEDesign", "ese_prune_schedule"]


@dataclass(frozen=True)
class ESEConfig:
    """ESE design parameters (defaults = the published KU060 configuration)."""

    prune_ratio: float = 9.0
    channels: int = 32
    weight_bits: int = 12
    index_bits: int = 12
    clock_mhz: float = 200.0
    load_balance: float = 1.0
    frame_overhead_cycles: float = 150.0

    def __post_init__(self) -> None:
        if self.prune_ratio <= 1.0:
            raise ConfigError("prune_ratio must exceed 1")
        if self.channels < 1:
            raise ConfigError("channels must be positive")
        if not 0 < self.load_balance <= 1.0:
            raise ConfigError("load_balance must be in (0, 1]")

    @property
    def sparsity(self) -> float:
        return 1.0 - 1.0 / self.prune_ratio


def ese_prune_schedule(
    target_sparsity: float, stages: int = 3
) -> tuple[float, ...]:
    """Gradual sparsity ramp (Han et al. retrain-between-stages recipe)."""
    if not 0 < target_sparsity < 1:
        raise ConfigError(f"target sparsity out of range: {target_sparsity}")
    if stages < 1:
        raise ConfigError("need at least one stage")
    # Geometric approach to the target keeps each retrain step recoverable.
    return tuple(
        1.0 - (1.0 - target_sparsity) ** ((i + 1) / stages) for i in range(stages)
    )


#: ESE's published KU060 utilization (Table III column 1).  ESE is an
#: external artifact; its resource profile is taken from its publication
#: rather than re-derived (DESIGN.md §2).
ESE_PUBLISHED_UTILIZATION = {"dsp": 0.545, "bram": 0.877, "lut": 0.886, "ff": 0.683}


@dataclass(frozen=True)
class ESEDesign:
    """Sized ESE accelerator with its performance and power figures."""

    spec: RNNSpec
    config: ESEConfig
    platform: FPGAPlatform
    nnz_macs: float
    frame_cycles: float
    resources_used: ResourceVector

    @property
    def latency_us(self) -> float:
        return self.frame_cycles / self.config.clock_mhz

    @property
    def fps(self) -> float:
        """ESE runs one sequence at a time (FPS × latency ≈ 1 in Table III)."""
        return 1e6 / self.latency_us

    @property
    def utilization(self) -> dict[str, float]:
        return self.platform.utilization(self.resources_used)

    @property
    def power_watts(self) -> float:
        return power_watts(self.platform, self.resources_used, offchip=True)

    @property
    def energy_efficiency(self) -> float:
        return energy_efficiency(self.fps, self.power_watts)


class ESEAcceleratorModel:
    """Latency/power model of ESE for an arbitrary (dense) RNN spec."""

    def __init__(self, spec: RNNSpec, config: ESEConfig | None = None,
                 platform: str = "XCKU060"):
        if spec.is_block_circulant:
            raise ConfigError("ESE consumes a dense spec (it prunes, not blocks)")
        self.spec = spec
        self.config = config if config is not None else ESEConfig()
        self.platform = get_platform(platform)

    # ------------------------------------------------------------------
    def nnz_macs(self) -> float:
        """Surviving multiply-accumulates per frame after pruning."""
        dense = sum(s.dense_params for s in matrix_inventory(self.spec))
        return dense / self.config.prune_ratio

    def frame_cycles(self) -> float:
        """One MAC per channel per cycle: index decode serializes the gather.

        The irregular structure is the bottleneck the paper exploits: E-RNN's
        regular blocks feed hundreds of multiplier lanes, ESE's CSR walk
        feeds ``channels`` of them, load-imbalance further discounted.
        """
        cfg = self.config
        effective = cfg.channels * cfg.load_balance
        return self.nnz_macs() / effective + cfg.frame_overhead_cycles

    def _resources_used(self) -> ResourceVector:
        return ResourceVector(
            dsp=ESE_PUBLISHED_UTILIZATION["dsp"] * self.platform.dsp,
            bram_blocks=ESE_PUBLISHED_UTILIZATION["bram"] * self.platform.bram_blocks,
            lut=ESE_PUBLISHED_UTILIZATION["lut"] * self.platform.lut,
            ff=ESE_PUBLISHED_UTILIZATION["ff"] * self.platform.ff,
        )

    def build(self) -> ESEDesign:
        return ESEDesign(
            spec=self.spec,
            config=self.config,
            platform=self.platform,
            nnz_macs=self.nnz_macs(),
            frame_cycles=self.frame_cycles(),
            resources_used=self._resources_used(),
        )
