"""Comparison systems: ESE (pruned sparse LSTM) and C-LSTM (direct circulant)."""

from repro.baselines.clstm import CLSTM_WEIGHT_BITS, build_clstm_model, clstm_accelerator
from repro.baselines.ese import (
    ESE_PUBLISHED_UTILIZATION,
    ESEAcceleratorModel,
    ESEConfig,
    ESEDesign,
    ese_prune_schedule,
)
from repro.baselines.pruning import (
    PruningManager,
    SparseStorage,
    csr_storage_bits,
    magnitude_mask,
)

__all__ = [
    "CLSTM_WEIGHT_BITS",
    "build_clstm_model",
    "clstm_accelerator",
    "ESE_PUBLISHED_UTILIZATION",
    "ESEAcceleratorModel",
    "ESEConfig",
    "ESEDesign",
    "ese_prune_schedule",
    "PruningManager",
    "SparseStorage",
    "csr_storage_bits",
    "magnitude_mask",
]
