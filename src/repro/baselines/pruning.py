"""Magnitude pruning: the compression technique behind the ESE baseline.

ESE [23] compresses its LSTM with the Han et al. prune-and-retrain recipe:
iteratively zero the smallest-magnitude weights, then retrain the survivors.
This module provides the masking machinery plus the sparse-storage
accounting the paper uses against ESE ("at least one index per weight",
Table III footnote a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module, Parameter

__all__ = [
    "magnitude_mask",
    "PruningManager",
    "SparseStorage",
    "csr_storage_bits",
]


def magnitude_mask(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean keep-mask retaining the largest-magnitude ``1 - sparsity``.

    ``sparsity`` is the fraction of weights to *remove*.  Ties at the
    threshold are kept, so the achieved sparsity is ≤ the request.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ConfigError(f"sparsity must be in [0, 1), got {sparsity}")
    weights = np.asarray(weights)
    if sparsity == 0.0:
        return np.ones(weights.shape, dtype=bool)
    threshold = np.quantile(np.abs(weights), sparsity)
    return np.abs(weights) >= threshold


@dataclass(frozen=True)
class SparseStorage:
    """Storage cost of a pruned matrix in ESE's index+value encoding."""

    nnz: int
    dense_params: int
    weight_bits: int
    index_bits: int

    @property
    def total_bits(self) -> int:
        return self.nnz * (self.weight_bits + self.index_bits)

    @property
    def effective_compression(self) -> float:
        """Dense bits over sparse bits — ESE's honest compression ratio."""
        dense_bits = self.dense_params * self.weight_bits
        return dense_bits / self.total_bits if self.total_bits else float("inf")

    @property
    def density(self) -> float:
        return self.nnz / self.dense_params if self.dense_params else 0.0


def csr_storage_bits(
    weights: np.ndarray, weight_bits: int = 12, index_bits: int = 12
) -> SparseStorage:
    """Account a pruned dense matrix as relative-indexed CSR (ESE's format)."""
    weights = np.asarray(weights)
    return SparseStorage(
        nnz=int(np.count_nonzero(weights)),
        dense_params=int(weights.size),
        weight_bits=weight_bits,
        index_bits=index_bits,
    )


class PruningManager:
    """Holds keep-masks for a model's large matrices and re-applies them.

    Workflow (Han et al. / ESE):

    .. code-block:: python

        manager = PruningManager(model.parameters_to_prune())
        for stage_sparsity in (0.5, 0.75, 0.89):
            manager.prune_to(stage_sparsity)
            for epoch in range(retrain_epochs):
                ...train...; optimizer.step(); manager.apply()

    ``apply()`` must run after every optimizer step so pruned weights stay
    zero while the survivors retrain.
    """

    def __init__(self, parameters: list[tuple[str, Parameter]]):
        if not parameters:
            raise ConfigError("PruningManager needs at least one parameter")
        self._parameters = list(parameters)
        self._masks: dict[str, np.ndarray] = {
            name: np.ones(param.data.shape, dtype=bool)
            for name, param in self._parameters
        }

    @classmethod
    def for_model(cls, model: Module) -> "PruningManager":
        """Prune every weight matrix (≥ 2-D parameter) of a model."""
        chosen = [
            (name, param)
            for name, param in model.named_parameters()
            if param.data.ndim >= 2
        ]
        return cls(chosen)

    # ------------------------------------------------------------------
    def prune_to(self, sparsity: float) -> None:
        """Recompute masks at a global per-matrix sparsity and apply them."""
        for name, param in self._parameters:
            self._masks[name] = magnitude_mask(param.data, sparsity)
        self.apply()

    def apply(self) -> None:
        for name, param in self._parameters:
            param.data *= self._masks[name]

    # ------------------------------------------------------------------
    def mask(self, name: str) -> np.ndarray:
        return self._masks[name]

    def nnz(self) -> int:
        return int(sum(mask.sum() for mask in self._masks.values()))

    def density(self) -> float:
        total = sum(mask.size for mask in self._masks.values())
        return self.nnz() / total if total else 0.0

    def storage(
        self, weight_bits: int = 12, index_bits: int = 12
    ) -> SparseStorage:
        """Aggregate index+value storage over all pruned matrices."""
        total_params = sum(m.size for m in self._masks.values())
        return SparseStorage(
            nnz=self.nnz(),
            dense_params=total_params,
            weight_bits=weight_bits,
            index_bits=index_bits,
        )
