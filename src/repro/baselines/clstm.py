"""C-LSTM baseline (Wang et al. [24]): direct circulant training + hardware.

C-LSTM pioneered block-circulant LSTMs on FPGAs, but with two gaps the
E-RNN paper closes:

* **Training** — C-LSTM trains the circulant parametrization *directly* by
  gradient descent (and its FFT-domain training is "not compatible with
  recent progress in stochastic gradient descent (e.g., ADAM)", Sec. I).
  Starting structured loses the pretrained dense solution, which is why its
  PER degradation is higher than ADMM's at the same block size (0.32% vs
  0.14% at block 8).  :func:`build_clstm_model` builds the structured model
  that :func:`repro.asr.pipeline.train_model` then trains from scratch, with
  plain momentum SGD for fidelity to the baseline.
* **Hardware** — same block-circulant datapath but 16-bit quantization and
  no PE-level optimization; modeled by
  :class:`repro.hw.accelerator.AcceleratorModel` with
  ``CLSTM_PE_EFFICIENCY`` and ``weight_bits=16``.
"""

from __future__ import annotations

import numpy as np

from repro.config import AccelSpec, RNNSpec
from repro.errors import ConfigError
from repro.hw.accelerator import CLSTM_PE_EFFICIENCY, AcceleratorDesign, build_design
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "build_clstm_model",
    "clstm_accelerator",
    "CLSTM_WEIGHT_BITS",
]

#: C-LSTM's published quantization (Table III row "Quantization").
CLSTM_WEIGHT_BITS = 16


def build_clstm_model(
    spec: RNNSpec, rng: np.random.Generator | None = None
) -> StackedRNNClassifier:
    """Structured model trained from scratch — the C-LSTM training style."""
    if not spec.is_block_circulant:
        raise ConfigError("C-LSTM requires a block-circulant spec")
    return StackedRNNClassifier(spec, structured=True, rng=rng)


def clstm_accelerator(
    spec: RNNSpec, platform: str = "ADM-PCIE-7V3"
) -> AcceleratorDesign:
    """C-LSTM's hardware implementation of a circulant spec."""
    accel = AccelSpec(platform, weight_bits=CLSTM_WEIGHT_BITS,
                      input_bits=CLSTM_WEIGHT_BITS)
    return build_design(spec, accel, pe_efficiency=CLSTM_PE_EFFICIENCY)
