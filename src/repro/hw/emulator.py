"""Functional CU emulator: inference exactly as the accelerator computes it.

The training stack computes float math; the FPGA computes something else —
pre-transformed weight spectra in BRAM, fixed-point element-wise products,
accumulation in the frequency domain, one IFFT per output block (FFT-IFFT
decoupling), PWL activations.  This module executes *that* computation:

* weights are stored as quantized half-spectra (``rfft`` of the defining
  vectors), the BRAM layout of Sec. V-A1;
* each frame performs: quantize inputs → FFT per input block → spectral
  MAC over the block grid → IFFT per output block → point-wise stage with
  PWL σ/tanh;
* every intermediate value is projected onto a fixed-point grid.

The emulator's outputs match the float model within quantization tolerance
(``tests/hw/test_emulator.py``), which is the end-to-end evidence that the
hardware would compute the same PER the accuracy experiments measured.

Two execution strategies share one numerical definition:

* :meth:`CUEmulator.forward` (default) is **batched**: per layer, the
  input-to-hidden spectral products for all ``T`` frames are hoisted into
  stacked FFT/quantize passes before the recurrent loop (the cuDNN
  restructuring), and per-frame bookkeeping runs through the vectorized
  format helpers of :mod:`repro.hw.fixed_point`.
* :meth:`CUEmulator.forward_reference` is the **per-frame oracle**: the
  straightforward frame-major loop calling :meth:`SpectralWeights.matvec`
  once per matrix per frame.

Both paths produce *byte-identical* logits (test-enforced).  That works
because every data-dependent fixed-point format is fit per frame in both
paths, and because the spectral MAC — the one operation whose floating-point
rounding could depend on operand shape — always executes at per-frame shape
``(B, blocks, bins)`` through the same GEMM call, even inside the hoisted
batch.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.hw.activation import PiecewiseLinearActivation, pwl_sigmoid, pwl_tanh
from repro.hw.fixed_point import (
    FixedPointFormat,
    fit_frac_bits_from_stats,
    rowwise_fit_frac_bits,
    rowwise_quantize,
)
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.rnn import StackedRNNClassifier

__all__ = ["SpectralWeights", "CUEmulator"]


def _complex_rowwise_frac_bits(spectra: np.ndarray, bits: int) -> np.ndarray:
    """Per-row format over a complex array's real *and* imaginary parts.

    Matches ``FixedPointFormat.fit(concatenate([real, imag]), bits)`` row by
    row: a complex128 array viewed as float64 interleaves exactly those
    components.
    """
    return rowwise_fit_frac_bits(
        spectra.view(np.float64).reshape(len(spectra), -1), bits
    )


@dataclass(frozen=True)
class SpectralWeights:
    """One matrix's BRAM image: quantized ``FFT(w_ij)`` half-spectra."""

    spectra: np.ndarray  # (p, q, Lb//2 + 1) complex
    block_size: int
    out_features: int
    in_features: int

    @classmethod
    def from_layer(
        cls, layer: CirculantLinear, bits: int
    ) -> "SpectralWeights":
        """Transform and quantize a trained circulant layer's vectors."""
        spectra = np.fft.rfft(layer.weight_vectors.data, axis=-1)
        parts = np.concatenate([spectra.real.ravel(), spectra.imag.ravel()])
        fmt = FixedPointFormat.fit(parts, bits)
        quantized = fmt.quantize(spectra.real) + 1j * fmt.quantize(spectra.imag)
        return cls(
            spectra=quantized,
            block_size=layer.block_size,
            out_features=layer.out_features,
            in_features=layer.in_features,
        )

    @property
    def bram_bits(self) -> float:
        """Stored bits at 12-bit words (two words per complex bin)."""
        return 2 * self.spectra.size * 12

    @cached_property
    def _mac_operand(self) -> np.ndarray:
        """The spectra laid out for the GEMM MAC: ``(bins, q, p)`` contiguous."""
        return np.ascontiguousarray(self.spectra.transpose(2, 1, 0))

    @property
    def padded_in(self) -> int:
        return self.spectra.shape[1] * self.block_size

    def _spectral_mac(self, x_spec: np.ndarray) -> np.ndarray:
        """Frequency-domain multiply-accumulate over the block grid.

        ``x_spec`` is one frame's ``(batch, q, bins)`` spectrum; returns
        ``(batch, p, bins)``.  This is the decoupled-IFFT accumulation of
        Sec. V-A1 expressed as ``bins`` stacked GEMMs.  Every caller —
        per-frame or hoisted — passes single-frame shapes, so the BLAS
        kernel (and therefore the floating-point reduction order) is
        identical across execution strategies.
        """
        return np.matmul(
            x_spec.transpose(2, 0, 1), self._mac_operand
        ).transpose(1, 2, 0)

    def _check_width(self, x: np.ndarray) -> None:
        if x.shape[-1] != self.in_features:
            raise ConfigError(
                f"expected input width {self.in_features}, got {x.shape}"
            )

    def matvec(self, x: np.ndarray, bits: int) -> np.ndarray:
        """The PE pipeline: FFT → spectral MAC → IFFT, all quantized.

        This is the reference-oracle path: one frame, formats fit through
        the scalar :class:`FixedPointFormat` API.
        """
        block = self.block_size
        padded_in = self.padded_in
        self._check_width(x)
        batch_shape = x.shape[:-1]
        x = x.reshape(-1, x.shape[-1])
        if padded_in != x.shape[-1]:
            x = np.pad(x, ((0, 0), (0, padded_in - x.shape[-1])))
        x_fmt = FixedPointFormat.fit(
            x if x.size else np.ones(1, dtype=np.float64), bits
        )
        x_blocks = x_fmt.quantize(x).reshape(x.shape[0], -1, block)

        x_spec = np.fft.rfft(x_blocks, axis=-1)
        spec_parts = np.concatenate([x_spec.real.ravel(), x_spec.imag.ravel()])
        spec_fmt = FixedPointFormat.fit(
            spec_parts if spec_parts.size else np.ones(1, dtype=np.float64), bits
        )
        x_spec = spec_fmt.quantize(x_spec.real) + 1j * spec_fmt.quantize(
            x_spec.imag
        )

        # Spectral multiply-accumulate over the block grid (decoupled IFFT:
        # accumulation happens in the frequency domain, Sec. V-A1).
        acc = self._spectral_mac(x_spec)
        y = np.fft.irfft(acc, n=block, axis=-1)
        y = y.reshape(x.shape[0], -1)[:, : self.out_features]
        y_fmt = FixedPointFormat.fit(
            y if y.size else np.ones(1, dtype=np.float64), bits
        )
        return y_fmt.quantize(y).reshape(batch_shape + (self.out_features,))

    def matvec_step(self, x: np.ndarray, bits: int) -> np.ndarray:
        """One recurrent step, byte-identical to :meth:`matvec` but lean.

        Same pipeline, but the three data-dependent formats are derived
        from range statistics (one min/max pass each) and applied with the
        fused clip-rint-divide projection — no ``abs`` temporaries, no
        ``concatenate`` copies, no int64 round-trips.
        """
        block = self.block_size
        self._check_width(x)
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            return self.matvec(x, bits)
        batch_shape = x.shape[:-1]
        x = x.reshape(-1, x.shape[-1])
        if self.padded_in != x.shape[-1]:
            x = np.pad(x, ((0, 0), (0, self.padded_in - x.shape[-1])))

        min_int = -(2 ** (bits - 1))
        max_int = 2 ** (bits - 1) - 1

        x_frac = fit_frac_bits_from_stats(
            max(float(x.max()), -float(x.min())), float(x.min()), bits
        )
        scale = 2.0**x_frac
        x_blocks = (
            np.clip(np.rint(x * scale), min_int, max_int) / scale
        ).reshape(x.shape[0], -1, block)

        x_spec = np.fft.rfft(x_blocks, axis=-1)
        parts = x_spec.view(np.float64)
        s_frac = fit_frac_bits_from_stats(
            max(float(parts.max()), -float(parts.min())), float(parts.min()), bits
        )
        scale = 2.0**s_frac
        x_spec = (np.clip(np.rint(parts * scale), min_int, max_int) / scale).view(
            np.complex128
        )

        acc = self._spectral_mac(x_spec)
        y = np.fft.irfft(acc, n=block, axis=-1)
        y = y.reshape(x.shape[0], -1)[:, : self.out_features]
        y_frac = fit_frac_bits_from_stats(
            max(float(y.max()), -float(y.min())), float(y.min()), bits
        )
        scale = 2.0**y_frac
        y = np.clip(np.rint(y * scale), min_int, max_int) / scale
        return y.reshape(batch_shape + (self.out_features,))

    def matvec_frames(self, x: np.ndarray, bits: int) -> np.ndarray:
        """Hoisted product for a whole ``(T, B, in)`` sequence at once.

        Byte-identical to calling :meth:`matvec` frame by frame: the input,
        spectrum, and output formats are fit *per frame* (vectorized), the
        FFT/IFFT batch over all frames (each trailing vector transforms
        independently), and the spectral MAC runs per frame so the GEMM
        shape matches the per-frame path exactly.
        """
        if x.ndim != 3:
            raise ConfigError(f"expected (T, B, in) input, got {x.shape}")
        self._check_width(x)
        frames, batch = x.shape[0], x.shape[1]
        block = self.block_size
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            out = [self.matvec(x[t], bits) for t in range(frames)]
            return (
                np.stack(out)
                if out
                else np.empty((0, batch, self.out_features), dtype=np.float64)
            )
        if self.padded_in != x.shape[-1]:
            x = np.pad(x, ((0, 0), (0, 0), (0, self.padded_in - x.shape[-1])))

        x_frac = rowwise_fit_frac_bits(x, bits)
        x_blocks = rowwise_quantize(x, x_frac, bits).reshape(
            frames, batch, -1, block
        )
        x_spec = np.fft.rfft(x_blocks, axis=-1)

        s_frac = _complex_rowwise_frac_bits(x_spec, bits)
        parts = rowwise_quantize(x_spec.view(np.float64), s_frac, bits)
        x_spec = np.ascontiguousarray(parts).view(np.complex128)

        acc = np.empty(
            (frames, batch, self.spectra.shape[0], x_spec.shape[-1]),
            dtype=np.complex128,
        )
        for t in range(frames):
            acc[t] = self._spectral_mac(x_spec[t])

        y = np.fft.irfft(acc, n=block, axis=-1)
        y = y.reshape(frames, batch, -1)[..., : self.out_features]
        y_frac = rowwise_fit_frac_bits(y, bits)
        return rowwise_quantize(y, y_frac, bits)


class CUEmulator:
    """Executes a structured LSTM/GRU stack the way the CU does.

    Built from a *trained structured model*; single-layer and multi-layer
    stacks are supported.  Limitations match the hardware: the model must be
    block-circulant (dense layers have no BRAM spectra to load).
    """

    def __init__(
        self,
        model: StackedRNNClassifier,
        weight_bits: int = 12,
        pwl_segments: int = 16,
    ):
        if not model.structured:
            raise ConfigError("the emulator needs a structured (circulant) model")
        self.spec: RNNSpec = model.spec
        self.bits = weight_bits
        self.sigmoid: PiecewiseLinearActivation = pwl_sigmoid(pwl_segments)
        self.tanh: PiecewiseLinearActivation = pwl_tanh(pwl_segments)

        self._layers: list[dict] = []
        for cell in model.cells:
            entry: dict = {"cell_type": self.spec.cell_type}
            for attr, layer, _role in cell.weight_layer_roles():
                if not isinstance(layer, CirculantLinear):
                    raise ConfigError(
                        f"{attr} is dense; the CU stores circulant spectra only"
                    )
                entry[attr] = SpectralWeights.from_layer(layer, weight_bits)
            if self.spec.cell_type == "lstm":
                entry["bias"] = cell.bias.data.copy()
                entry["hidden"] = cell.hidden_size
                entry["output"] = cell.output_size
                if self.spec.peephole:
                    entry["peep"] = (
                        cell.peep_ic.weight.data.copy(),
                        cell.peep_fc.weight.data.copy(),
                        cell.peep_oc.weight.data.copy(),
                    )
            else:
                entry["bias_zr"] = cell.bias_zr.data.copy()
                entry["bias_c"] = cell.bias_c.data.copy()
                entry["hidden"] = cell.hidden_size
            self._layers.append(entry)
        self._classifier_w = model.classifier.weight.data.copy()
        self._classifier_b = model.classifier.bias.data.copy()

    # ------------------------------------------------------------------
    # Point-wise stages, shared verbatim by both execution strategies.
    # ------------------------------------------------------------------
    def _lstm_pointwise(self, entry: dict, wx, y_prev, c_prev, mv):
        """Gate math for one frame given the input-side product ``wx``.

        ``mv(weights, x)`` performs the recurrent-side products: the oracle
        passes :meth:`SpectralWeights.matvec`, the batched path the
        byte-identical lean :meth:`SpectralWeights.matvec_step`.
        """
        hidden = entry["hidden"]
        gates = wx + mv(entry["w_r"], y_prev) + entry["bias"]
        z_i = gates[..., 0 * hidden : 1 * hidden]
        z_f = gates[..., 1 * hidden : 2 * hidden]
        z_g = gates[..., 2 * hidden : 3 * hidden]
        z_o = gates[..., 3 * hidden : 4 * hidden]
        if "peep" in entry:
            w_ic, w_fc, w_oc = entry["peep"]
            z_i = z_i + w_ic * c_prev
            z_f = z_f + w_fc * c_prev
        gate_i = self.sigmoid(z_i)
        gate_f = self.sigmoid(z_f)
        candidate = self.tanh(z_g)
        cell = gate_f * c_prev + candidate * gate_i
        if "peep" in entry:
            z_o = z_o + w_oc * cell
        gate_o = self.sigmoid(z_o)
        m = gate_o * self.tanh(cell)
        if "w_ym" in entry:
            y = mv(entry["w_ym"], m)
        else:
            y = m
        return y, y, cell

    def _gru_pointwise(self, entry: dict, w_zr, w_cx, c_prev, mv):
        """Gate math for one frame given both input-side products."""
        hidden = entry["hidden"]
        gates = w_zr + mv(entry["w_zr_c"], c_prev) + entry["bias_zr"]
        z = self.sigmoid(gates[..., :hidden])
        r = self.sigmoid(gates[..., hidden:])
        candidate = self.tanh(
            w_cx + mv(entry["w_cc"], r * c_prev) + entry["bias_c"]
        )
        cell = (1.0 - z) * c_prev + z * candidate
        return cell, cell

    def _mv_reference(self, weights: SpectralWeights, x: np.ndarray):
        return weights.matvec(x, self.bits)

    def _mv_step(self, weights: SpectralWeights, x: np.ndarray):
        return weights.matvec_step(x, self.bits)

    # ------------------------------------------------------------------
    # Per-frame oracle.
    # ------------------------------------------------------------------
    def _lstm_frame(self, entry: dict, x, y_prev, c_prev):
        wx = entry["w_x"].matvec(x, self.bits)
        return self._lstm_pointwise(entry, wx, y_prev, c_prev, self._mv_reference)

    def _gru_frame(self, entry: dict, x, c_prev):
        w_zr = entry["w_zr_x"].matvec(x, self.bits)
        w_cx = entry["w_cx"].matvec(x, self.bits)
        return self._gru_pointwise(entry, w_zr, w_cx, c_prev, self._mv_reference)

    def forward_reference(self, inputs: np.ndarray) -> np.ndarray:
        """Frame-major per-frame emulation — the reference oracle.

        Every matrix product goes through :meth:`SpectralWeights.matvec`
        once per frame.  Kept as the simple, obviously-hardware-shaped
        implementation the batched path is verified against byte-for-byte.
        """
        inputs = self._check_inputs(inputs)
        frames, batch, _ = inputs.shape
        states = self._initial_states(batch)
        logits = np.empty(
            (frames, batch, self._classifier_w.shape[0]), dtype=np.float64
        )
        for t in range(frames):
            value = inputs[t]
            for index, entry in enumerate(self._layers):
                if entry["cell_type"] == "lstm":
                    y_prev, c_prev = states[index]
                    value, y_new, c_new = self._lstm_frame(
                        entry, value, y_prev, c_prev
                    )
                    states[index] = (y_new, c_new)
                else:
                    value, states[index] = self._gru_frame(
                        entry, value, states[index]
                    )
            logits[t] = value @ self._classifier_w.T + self._classifier_b
        return logits

    # ------------------------------------------------------------------
    # Batched (layer-major) path.
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """(T, B, D) features → (T, B, C) logits, hardware-faithfully.

        Layer-major: for each layer, the input-to-hidden spectral products
        of all frames are computed in one hoisted pass, then the recurrent
        loop consumes them.  Byte-identical to
        :meth:`forward_reference` (test-enforced).
        """
        inputs = self._check_inputs(inputs)
        frames, batch, _ = inputs.shape
        value_seq = inputs
        for entry in self._layers:
            if entry["cell_type"] == "lstm":
                value_seq = self._run_lstm_layer(entry, value_seq)
            else:
                value_seq = self._run_gru_layer(entry, value_seq)
        logits = np.empty(
            (frames, batch, self._classifier_w.shape[0]), dtype=np.float64
        )
        for t in range(frames):
            logits[t] = value_seq[t] @ self._classifier_w.T + self._classifier_b
        return logits

    def _run_lstm_layer(self, entry: dict, value_seq: np.ndarray) -> np.ndarray:
        frames, batch = value_seq.shape[0], value_seq.shape[1]
        wx_all = entry["w_x"].matvec_frames(value_seq, self.bits)
        y_prev = np.zeros((batch, entry["output"]), dtype=np.float64)
        c_prev = np.zeros((batch, entry["hidden"]), dtype=np.float64)
        out = np.empty((frames, batch, entry["output"]), dtype=np.float64)
        for t in range(frames):
            value, y_prev, c_prev = self._lstm_pointwise(
                entry, wx_all[t], y_prev, c_prev, self._mv_step
            )
            out[t] = value
        return out

    def _run_gru_layer(self, entry: dict, value_seq: np.ndarray) -> np.ndarray:
        frames, batch = value_seq.shape[0], value_seq.shape[1]
        w_zr_all = entry["w_zr_x"].matvec_frames(value_seq, self.bits)
        w_cx_all = entry["w_cx"].matvec_frames(value_seq, self.bits)
        c_prev = np.zeros((batch, entry["hidden"]), dtype=np.float64)
        out = np.empty((frames, batch, entry["hidden"]), dtype=np.float64)
        for t in range(frames):
            value, c_prev = self._gru_pointwise(
                entry, w_zr_all[t], w_cx_all[t], c_prev, self._mv_step
            )
            out[t] = value
        return out

    # ------------------------------------------------------------------
    # Streaming / serving surface (consumed by repro.runtime).
    # ------------------------------------------------------------------
    def initial_states(self, batch: int) -> list:
        """Fresh zero hidden/cell state for a ``batch``-wide stream.

        The returned structure is what :meth:`step` and :meth:`step_rows`
        thread through the recurrence; treat it as opaque.
        """
        return self._initial_states(batch)

    def step(self, frame: np.ndarray, states: list) -> tuple[np.ndarray, list]:
        """One recurrent step: ``(B, D)`` frame + states → logits, new states.

        Byte-identical to the corresponding frame of :meth:`forward` /
        :meth:`forward_reference`: every product goes through the lean
        :meth:`SpectralWeights.matvec_step` (proven byte-identical to the
        oracle ``matvec``), the point-wise stages are shared verbatim, and
        the classifier GEMM runs at the same per-frame shape.
        """
        frame = np.asarray(frame, dtype=np.float64)
        if frame.ndim != 2:
            raise ConfigError(f"expected a (B, D) frame, got {frame.shape}")
        new_states = list(states)
        value = frame
        for index, entry in enumerate(self._layers):
            if entry["cell_type"] == "lstm":
                y_prev, c_prev = new_states[index]
                wx = entry["w_x"].matvec_step(value, self.bits)
                value, y_new, c_new = self._lstm_pointwise(
                    entry, wx, y_prev, c_prev, self._mv_step
                )
                new_states[index] = (y_new, c_new)
            else:
                w_zr = entry["w_zr_x"].matvec_step(value, self.bits)
                w_cx = entry["w_cx"].matvec_step(value, self.bits)
                value, new_states[index] = self._gru_pointwise(
                    entry, w_zr, w_cx, new_states[index], self._mv_step
                )
        logits = value @ self._classifier_w.T + self._classifier_b
        return logits, new_states

    def _mv_rows(self, weights: SpectralWeights, rows: np.ndarray) -> np.ndarray:
        """Row-*isolated* spectral products: row ``r`` ≡ a batch-1 matvec.

        Feeding ``(R, D)`` rows to :meth:`SpectralWeights.matvec_frames` as
        ``R`` frames of batch 1 fits every data-dependent format over one
        row only and runs each spectral MAC at the ``(bins, 1, q)`` GEMM
        shape — exactly the shapes a standalone batch-1 :meth:`step`
        produces, so the bytes cannot differ.
        """
        return weights.matvec_frames(rows[:, None, :], self.bits)[:, 0]

    def step_rows(
        self, frames: np.ndarray, row_states: list
    ) -> tuple[np.ndarray, list]:
        """Micro-batched step over ``R`` *independent* batch-1 streams.

        ``frames`` is ``(R, D)``, ``row_states[r]`` a state produced by
        ``initial_states(1)`` (or a previous step) for stream ``r``.  Row
        ``r`` of the result is byte-identical to
        ``step(frames[r:r+1], row_states[r])`` — the row-isolation contract
        that lets :class:`repro.runtime.Server` coalesce concurrent session
        pushes without perturbing any stream's bits.  FFTs, quantization
        and the point-wise stages vectorize across rows (all element- or
        row-independent); the shape-sensitive GEMMs run per row.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ConfigError(f"expected (R, D) rows, got {frames.shape}")
        if len(frames) == 0:
            raise ConfigError("step_rows needs at least one row")
        rows = len(frames)
        new_row_states: list[list] = [list(states) for states in row_states]
        value = frames
        for index, entry in enumerate(self._layers):
            if entry["cell_type"] == "lstm":
                y_prev = np.concatenate(
                    [states[index][0] for states in row_states]
                )
                c_prev = np.concatenate(
                    [states[index][1] for states in row_states]
                )
                wx = self._mv_rows(entry["w_x"], value)
                value, y_new, c_new = self._lstm_pointwise(
                    entry, wx, y_prev, c_prev, self._mv_rows
                )
                for r in range(rows):
                    new_row_states[r][index] = (
                        y_new[r : r + 1].copy(),
                        c_new[r : r + 1].copy(),
                    )
            else:
                c_prev = np.concatenate(
                    [states[index] for states in row_states]
                )
                w_zr = self._mv_rows(entry["w_zr_x"], value)
                w_cx = self._mv_rows(entry["w_cx"], value)
                value, c_new = self._gru_pointwise(
                    entry, w_zr, w_cx, c_prev, self._mv_rows
                )
                for r in range(rows):
                    new_row_states[r][index] = c_new[r : r + 1].copy()
        # Classifier per row: a (1, H) @ (H, C) GEMM matches the shape a
        # standalone batch-1 step issues, keeping the reduction order pinned.
        logits = np.concatenate(
            [value[r : r + 1] @ self._classifier_w.T for r in range(rows)]
        )
        logits = logits + self._classifier_b
        return logits, new_row_states

    # ------------------------------------------------------------------
    def _check_inputs(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ConfigError(f"expected (T, B, D), got {inputs.shape}")
        return inputs

    def _initial_states(self, batch: int) -> list:
        states: list = []
        for entry in self._layers:
            if entry["cell_type"] == "lstm":
                states.append(
                    (
                        np.zeros((batch, entry["output"]), dtype=np.float64),
                        np.zeros((batch, entry["hidden"]), dtype=np.float64),
                    )
                )
            else:
                states.append(np.zeros((batch, entry["hidden"]), dtype=np.float64))
        return states

    def bram_weight_bits(self) -> float:
        """Total spectral-weight storage (cross-check for repro.hw.bram)."""
        # Scalar resource accounting, not datapath math: exact integer-valued
        # bit counts, so the reduction order cannot perturb any bits.
        return sum(  # repro: ignore[REP003] exact integer bit-count bookkeeping, not datapath arithmetic
            entry[key].bram_bits
            for entry in self._layers
            for key in entry
            if isinstance(entry[key], SpectralWeights)
        )
