"""Functional CU emulator: inference exactly as the accelerator computes it.

The training stack computes float math; the FPGA computes something else —
pre-transformed weight spectra in BRAM, fixed-point element-wise products,
accumulation in the frequency domain, one IFFT per output block (FFT-IFFT
decoupling), PWL activations.  This module executes *that* computation:

* weights are stored as quantized half-spectra (``rfft`` of the defining
  vectors), the BRAM layout of Sec. V-A1;
* each frame performs: quantize inputs → FFT per input block → spectral
  MAC over the block grid → IFFT per output block → point-wise stage with
  PWL σ/tanh;
* every intermediate value is projected onto a fixed-point grid.

The emulator's outputs match the float model within quantization tolerance
(``tests/hw/test_emulator.py``), which is the end-to-end evidence that the
hardware would compute the same PER the accuracy experiments measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.hw.activation import PiecewiseLinearActivation, pwl_sigmoid, pwl_tanh
from repro.hw.fixed_point import FixedPointFormat
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.rnn import StackedRNNClassifier

__all__ = ["SpectralWeights", "CUEmulator"]


@dataclass(frozen=True)
class SpectralWeights:
    """One matrix's BRAM image: quantized ``FFT(w_ij)`` half-spectra."""

    spectra: np.ndarray  # (p, q, Lb//2 + 1) complex
    block_size: int
    out_features: int
    in_features: int

    @classmethod
    def from_layer(
        cls, layer: CirculantLinear, bits: int
    ) -> "SpectralWeights":
        """Transform and quantize a trained circulant layer's vectors."""
        spectra = np.fft.rfft(layer.weight_vectors.data, axis=-1)
        parts = np.concatenate([spectra.real.ravel(), spectra.imag.ravel()])
        fmt = FixedPointFormat.fit(parts, bits)
        quantized = fmt.quantize(spectra.real) + 1j * fmt.quantize(spectra.imag)
        return cls(
            spectra=quantized,
            block_size=layer.block_size,
            out_features=layer.out_features,
            in_features=layer.in_features,
        )

    @property
    def bram_bits(self) -> float:
        """Stored bits at 12-bit words (two words per complex bin)."""
        return 2 * self.spectra.size * 12

    def matvec(self, x: np.ndarray, bits: int) -> np.ndarray:
        """The PE pipeline: FFT → spectral MAC → IFFT, all quantized."""
        block = self.block_size
        padded_in = self.spectra.shape[1] * block
        if x.shape[-1] != self.in_features:
            raise ConfigError(
                f"expected input width {self.in_features}, got {x.shape}"
            )
        batch_shape = x.shape[:-1]
        x = x.reshape(-1, x.shape[-1])
        if padded_in != x.shape[-1]:
            x = np.pad(x, ((0, 0), (0, padded_in - x.shape[-1])))
        x_fmt = FixedPointFormat.fit(x if x.size else np.ones(1), bits)
        x_blocks = x_fmt.quantize(x).reshape(x.shape[0], -1, block)

        x_spec = np.fft.rfft(x_blocks, axis=-1)
        spec_parts = np.concatenate([x_spec.real.ravel(), x_spec.imag.ravel()])
        spec_fmt = FixedPointFormat.fit(
            spec_parts if spec_parts.size else np.ones(1), bits
        )
        x_spec = spec_fmt.quantize(x_spec.real) + 1j * spec_fmt.quantize(
            x_spec.imag
        )

        # Spectral multiply-accumulate over the block grid (decoupled IFFT:
        # accumulation happens in the frequency domain, Sec. V-A1).
        acc = np.einsum("ijf,bjf->bif", self.spectra, x_spec)
        y = np.fft.irfft(acc, n=block, axis=-1)
        y = y.reshape(x.shape[0], -1)[:, : self.out_features]
        y_fmt = FixedPointFormat.fit(y if y.size else np.ones(1), bits)
        return y_fmt.quantize(y).reshape(batch_shape + (self.out_features,))


class CUEmulator:
    """Executes a structured LSTM/GRU stack the way the CU does.

    Built from a *trained structured model*; single-layer and multi-layer
    stacks are supported.  Limitations match the hardware: the model must be
    block-circulant (dense layers have no BRAM spectra to load).
    """

    def __init__(
        self,
        model: StackedRNNClassifier,
        weight_bits: int = 12,
        pwl_segments: int = 16,
    ):
        if not model.structured:
            raise ConfigError("the emulator needs a structured (circulant) model")
        self.spec: RNNSpec = model.spec
        self.bits = weight_bits
        self.sigmoid: PiecewiseLinearActivation = pwl_sigmoid(pwl_segments)
        self.tanh: PiecewiseLinearActivation = pwl_tanh(pwl_segments)

        self._layers: list[dict] = []
        for cell in model.cells:
            entry: dict = {"cell_type": self.spec.cell_type}
            for attr, layer, _role in cell.weight_layer_roles():
                if not isinstance(layer, CirculantLinear):
                    raise ConfigError(
                        f"{attr} is dense; the CU stores circulant spectra only"
                    )
                entry[attr] = SpectralWeights.from_layer(layer, weight_bits)
            if self.spec.cell_type == "lstm":
                entry["bias"] = cell.bias.data.copy()
                entry["hidden"] = cell.hidden_size
                entry["output"] = cell.output_size
                if self.spec.peephole:
                    entry["peep"] = (
                        cell.peep_ic.weight.data.copy(),
                        cell.peep_fc.weight.data.copy(),
                        cell.peep_oc.weight.data.copy(),
                    )
            else:
                entry["bias_zr"] = cell.bias_zr.data.copy()
                entry["bias_c"] = cell.bias_c.data.copy()
                entry["hidden"] = cell.hidden_size
            self._layers.append(entry)
        self._classifier_w = model.classifier.weight.data.copy()
        self._classifier_b = model.classifier.bias.data.copy()

    # ------------------------------------------------------------------
    def _lstm_frame(self, entry: dict, x, y_prev, c_prev):
        hidden = entry["hidden"]
        gates = (
            entry["w_x"].matvec(x, self.bits)
            + entry["w_r"].matvec(y_prev, self.bits)
            + entry["bias"]
        )
        z_i = gates[..., 0 * hidden : 1 * hidden]
        z_f = gates[..., 1 * hidden : 2 * hidden]
        z_g = gates[..., 2 * hidden : 3 * hidden]
        z_o = gates[..., 3 * hidden : 4 * hidden]
        if "peep" in entry:
            w_ic, w_fc, w_oc = entry["peep"]
            z_i = z_i + w_ic * c_prev
            z_f = z_f + w_fc * c_prev
        gate_i = self.sigmoid(z_i)
        gate_f = self.sigmoid(z_f)
        candidate = self.tanh(z_g)
        cell = gate_f * c_prev + candidate * gate_i
        if "peep" in entry:
            z_o = z_o + w_oc * cell
        gate_o = self.sigmoid(z_o)
        m = gate_o * self.tanh(cell)
        if "w_ym" in entry:
            y = entry["w_ym"].matvec(m, self.bits)
        else:
            y = m
        return y, y, cell

    def _gru_frame(self, entry: dict, x, c_prev):
        hidden = entry["hidden"]
        gates = (
            entry["w_zr_x"].matvec(x, self.bits)
            + entry["w_zr_c"].matvec(c_prev, self.bits)
            + entry["bias_zr"]
        )
        z = self.sigmoid(gates[..., :hidden])
        r = self.sigmoid(gates[..., hidden:])
        candidate = self.tanh(
            entry["w_cx"].matvec(x, self.bits)
            + entry["w_cc"].matvec(r * c_prev, self.bits)
            + entry["bias_c"]
        )
        cell = (1.0 - z) * c_prev + z * candidate
        return cell, cell

    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """(T, B, D) features → (T, B, C) logits, hardware-faithfully."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ConfigError(f"expected (T, B, D), got {inputs.shape}")
        frames, batch, _ = inputs.shape
        states: list = []
        for entry in self._layers:
            if entry["cell_type"] == "lstm":
                states.append(
                    (
                        np.zeros((batch, entry["output"])),
                        np.zeros((batch, entry["hidden"])),
                    )
                )
            else:
                states.append(np.zeros((batch, entry["hidden"])))
        logits = np.empty((frames, batch, self._classifier_w.shape[0]))
        for t in range(frames):
            value = inputs[t]
            for index, entry in enumerate(self._layers):
                if entry["cell_type"] == "lstm":
                    y_prev, c_prev = states[index]
                    value, y_new, c_new = self._lstm_frame(
                        entry, value, y_prev, c_prev
                    )
                    states[index] = (y_new, c_new)
                else:
                    value, states[index] = self._gru_frame(
                        entry, value, states[index]
                    )
            logits[t] = value @ self._classifier_w.T + self._classifier_b
        return logits

    def bram_weight_bits(self) -> float:
        """Total spectral-weight storage (cross-check for repro.hw.bram)."""
        return sum(
            entry[key].bram_bits
            for entry in self._layers
            for key in entry
            if isinstance(entry[key], SpectralWeights)
        )
