"""Piecewise-linear activation approximation (paper Sec. VIII-B1).

E-RNN implements sigmoid and tanh as piecewise-linear (PWL) interpolators
using only on-chip resources — one of the two reasons it beats ESE's
LUT-in-DDR activations.  :class:`PiecewiseLinearActivation` models the
approximation itself so accuracy experiments can run with the *exact*
function the hardware would compute, plus its LUT/FF cost for Phase II.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.hw.platform import ResourceVector

__all__ = ["PiecewiseLinearActivation", "pwl_sigmoid", "pwl_tanh"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class PiecewiseLinearActivation:
    """Uniform-breakpoint PWL approximation of a saturating activation.

    Inside ``[low, high]`` the function is linearly interpolated between
    ``segments + 1`` sampled breakpoints; outside it clamps to the exact
    saturation values — the "overflow precaution" box of Fig. 13.
    """

    name: str
    breakpoints: np.ndarray
    values: np.ndarray
    saturate_low: float
    saturate_high: float

    def __post_init__(self) -> None:
        if self.breakpoints.ndim != 1 or self.breakpoints.size < 2:
            raise ConfigError("need at least two breakpoints")
        if self.values.shape != self.breakpoints.shape:
            raise ConfigError("breakpoints/values shape mismatch")
        if not np.all(np.diff(self.breakpoints) > 0):
            raise ConfigError("breakpoints must be strictly increasing")

    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        name: str,
        function: Callable[[np.ndarray], np.ndarray],
        segments: int,
        input_range: tuple[float, float],
        saturation: tuple[float, float],
    ) -> "PiecewiseLinearActivation":
        if segments < 2:
            raise ConfigError("segments must be at least 2")
        low, high = input_range
        if low >= high:
            raise ConfigError("input range must be increasing")
        breakpoints = np.linspace(low, high, segments + 1)
        return cls(
            name=name,
            breakpoints=breakpoints,
            values=np.asarray(function(breakpoints), dtype=np.float64),
            saturate_low=saturation[0],
            saturate_high=saturation[1],
        )

    @property
    def segments(self) -> int:
        return self.breakpoints.size - 1

    # ------------------------------------------------------------------
    @cached_property
    def _slopes(self) -> np.ndarray:
        """Per-segment slope table — the hardware's second ROM column."""
        return np.diff(self.values) / np.diff(self.breakpoints)

    @cached_property
    def _inv_step(self) -> float | None:
        """1/step for uniform breakpoints, ``None`` when spacing varies."""
        steps = np.diff(self.breakpoints)
        if np.allclose(steps, steps[0], rtol=1e-9, atol=0.0):
            return float(1.0 / steps[0])
        return None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the PWL unit: segment select, slope multiply, add.

        Mirrors the hardware structure (comparator → table lookup → one
        multiply-add) instead of calling ``np.interp``, which re-derives
        each slope with a per-element division.  Uniform breakpoints (the
        ``from_function`` case) select segments arithmetically; irregular
        tables fall back to binary search.

        The arithmetic selection can pick the neighbouring segment for
        inputs within one ULP of a breakpoint; the PWL is continuous, so
        the value differs from ``np.interp`` by at most one ULP there and
        is identical everywhere else (test-pinned).  Both emulator
        execution paths and the benchmark seed baselines share this
        evaluation, so it cannot perturb any byte-identity invariant.
        """
        x = np.asarray(x, dtype=np.float64)
        breakpoints = self.breakpoints
        if self._inv_step is not None:
            index = ((x - breakpoints[0]) * self._inv_step).astype(np.int64)
            np.clip(index, 0, self.segments - 1, out=index)
        else:
            index = np.clip(
                np.searchsorted(breakpoints, x, side="right") - 1,
                0,
                self.segments - 1,
            )
        inside = (
            self._slopes[index] * (x - breakpoints[index]) + self.values[index]
        )
        inside = np.where(x == breakpoints[-1], self.values[-1], inside)
        result = np.where(x < breakpoints[0], self.saturate_low, inside)
        return np.where(x > breakpoints[-1], self.saturate_high, result)

    def max_error(
        self,
        reference: Callable[[np.ndarray], np.ndarray],
        num_samples: int = 20001,
    ) -> float:
        """Worst-case absolute error over a dense grid spanning the range
        (plus a margin into the saturation regions)."""
        low, high = self.breakpoints[0], self.breakpoints[-1]
        margin = 0.5 * (high - low)
        grid = np.linspace(low - margin, high + margin, num_samples)
        return float(np.max(np.abs(self(grid) - reference(grid))))

    # ------------------------------------------------------------------
    def resources(self, bits: int = 12) -> ResourceVector:
        """LUT/FF cost model of one PWL unit.

        One comparator tree (log2(segments) levels), one subtract, one
        multiply (slope), one add per lookup — small; dominated by the
        breakpoint/slope table, ``2 · (segments + 1)`` words wide ``bits``.
        Entirely on-chip: no BRAM blocks and no DSP are charged (slope
        multiply fits a LUT-based multiplier at 12 bits).
        """
        table_bits = 2 * (self.segments + 1) * bits
        lut = 12 * self.segments + table_bits / 6.0 + 5 * bits
        ff = 3 * bits + self.segments
        return ResourceVector(dsp=0.0, bram_blocks=0.0, lut=lut, ff=ff)


def pwl_sigmoid(segments: int = 16) -> PiecewiseLinearActivation:
    """PWL logistic function over [-8, 8] (σ saturates to 3e-4 outside)."""
    return PiecewiseLinearActivation.from_function(
        "sigmoid", _sigmoid, segments, (-8.0, 8.0), (0.0, 1.0)
    )


def pwl_tanh(segments: int = 16) -> PiecewiseLinearActivation:
    """PWL tanh over [-4, 4] (tanh saturates to ±1 − 7e-4 outside)."""
    return PiecewiseLinearActivation.from_function(
        "tanh", np.tanh, segments, (-4.0, 4.0), (-1.0, 1.0)
    )
