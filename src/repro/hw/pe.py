"""Processing-element model (paper Fig. 10 and Sec. VII-B).

A PE computes one circulant block product: FFT of the input block (weights
are pre-transformed in BRAM, Sec. V-A1), element-wise complex multiplication
against the stored spectrum, accumulation, and — after the accumulation,
thanks to FFT/IFFT decoupling — one IFFT per output block.

Resource model (calibrated once, DESIGN.md §5, then held fixed across every
configuration and platform):

* ``ΔDSP = 2·Lb + 3·max(log2 Lb − 2, 1)`` — ``2·Lb`` element-wise multiplier
  lanes (a Hermitian half-spectrum product is ``2·Lb − 2`` real mults, giving
  a two-cycle initiation interval) plus one complex twiddle multiplier per
  non-trivial FFT stage, time-shared between the FFT and IFFT phases.
* ``ΔLUT = (25·Lb − 40) · bits`` — butterfly adders, accumulator tree, muxes.
* ``ΔFF = (16·Lb + 50) · bits`` — pipeline and shift registers (Fig. 10's
  ``log2 N`` right-shifters).
* Each PE is fed by ``Lb`` dedicated BRAM banks holding its slice of the
  weight spectra (this is what makes Table III's BRAM utilization track PE
  count rather than model size).

The paper's PE-count rule ``#PE = min(⌊DSP/ΔDSP⌋, ⌊LUT/ΔLUT⌋)`` is applied in
:mod:`repro.hw.accelerator` after subtracting the CU/base overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import is_power_of_two
from repro.core.cost_model import elementwise_real_mults
from repro.errors import ConfigError
from repro.hw.fft_unit import FFTUnit
from repro.hw.platform import ResourceVector

__all__ = ["ProcessingElement"]


@dataclass(frozen=True)
class ProcessingElement:
    """PE sized for circulant blocks of ``block_size`` at ``bits`` precision."""

    block_size: int
    bits: int = 12

    def __post_init__(self) -> None:
        if self.block_size < 2 or not is_power_of_two(self.block_size):
            raise ConfigError(
                f"PE block size must be a power of two >= 2: {self.block_size}"
            )

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    @property
    def fft_unit(self) -> FFTUnit:
        return FFTUnit(self.block_size, self.bits)

    @property
    def dsp(self) -> int:
        stages = max(int(math.log2(self.block_size)) - 2, 1)
        return 2 * self.block_size + 3 * stages

    @property
    def lut(self) -> float:
        return (25 * self.block_size - 40) * self.bits

    @property
    def ff(self) -> float:
        return (16 * self.block_size + 50) * self.bits

    @property
    def bram_banks(self) -> int:
        """Dedicated weight-spectrum banks feeding this PE's lanes."""
        return self.block_size

    def resources(self) -> ResourceVector:
        return ResourceVector(
            dsp=float(self.dsp),
            bram_blocks=float(self.bram_banks),
            lut=self.lut,
            ff=self.ff,
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def mult_lanes(self) -> int:
        """Real multiplier lanes available for the element-wise product."""
        return 2 * self.block_size

    @property
    def cycles_per_block(self) -> int:
        """Initiation interval for one circulant block product.

        ``2·Lb − 2`` real multiplications over ``2·Lb`` lanes pipelines at one
        block per cycle only if the accumulator keeps up; the paper's adder
        tree takes the second cycle, giving II = 2 for every block size
        (matching the FFT8→FFT16 latency ratio of Table III, ~1.9×).
        """
        mults = elementwise_real_mults(self.block_size)
        return max(2, math.ceil(mults / self.mult_lanes) + 1)

    @property
    def pipeline_depth(self) -> int:
        """Fill latency: FFT + multiply + accumulate + IFFT."""
        return 2 * self.fft_unit.latency_cycles + 2

    def __repr__(self) -> str:
        return f"ProcessingElement(block={self.block_size}, bits={self.bits})"
