"""FPGA platform specifications (paper Table IV).

Resource totals are copied from Table IV verbatim.  BRAM is counted in 36 Kb
blocks (Xilinx RAMB36), giving the "4-8 MB BRAM" the paper quotes in Sec.
VI-B: 1470 blocks ≈ 6.6 MB for the 7V3, 1080 blocks ≈ 4.9 MB for the KU060.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.api.registry import PLATFORM_REGISTRY
from repro.errors import ConfigError

__all__ = ["FPGAPlatform", "PLATFORMS", "get_platform", "ADM_PCIE_7V3", "XCKU060"]

#: Bits per BRAM block (Xilinx RAMB36).
BRAM_BLOCK_BITS = 36 * 1024


@dataclass(frozen=True)
class FPGAPlatform:
    """Resource totals and process node of one FPGA board."""

    name: str
    dsp: int
    bram_blocks: int
    lut: int
    ff: int
    process_nm: int
    # Power-model constants (fit once against the paper's published board
    # measurements, see repro.hw.power): static watts and per-unit dynamic
    # coefficients in watts per *used* resource at 200 MHz.
    static_watts: float
    dsp_watts: float
    bram_watts: float
    lut_watts: float
    ff_watts: float
    #: Achievable utilization before routing fails timing at 200 MHz.  The
    #: large 28 nm Virtex-7 die congests earlier than the 20 nm KU060, which
    #: is why the paper's measured 7V3 utilizations sit consistently below
    #: its KU060 ones despite the bigger resource totals.
    routing_headroom: float = 0.96

    def __post_init__(self) -> None:
        if min(self.dsp, self.bram_blocks, self.lut, self.ff) <= 0:
            raise ConfigError(f"non-positive resource total on {self.name}")

    @property
    def bram_bits(self) -> int:
        return self.bram_blocks * BRAM_BLOCK_BITS

    @property
    def bram_bytes(self) -> float:
        return self.bram_bits / 8.0

    def utilization(self, used: "ResourceVector") -> dict[str, float]:
        """Fractional utilization per resource class (Table III rows 6-9)."""
        return {
            "dsp": used.dsp / self.dsp,
            "bram": used.bram_blocks / self.bram_blocks,
            "lut": used.lut / self.lut,
            "ff": used.ff / self.ff,
        }

    def fits(self, used: "ResourceVector") -> bool:
        return all(frac <= 1.0 for frac in self.utilization(used).values())


@dataclass(frozen=True)
class ResourceVector:
    """A resource consumption: DSPs, BRAM blocks, LUTs, flip-flops."""

    dsp: float = 0.0
    bram_blocks: float = 0.0
    lut: float = 0.0
    ff: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.dsp + other.dsp,
            self.bram_blocks + other.bram_blocks,
            self.lut + other.lut,
            self.ff + other.ff,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            self.dsp * factor,
            self.bram_blocks * factor,
            self.lut * factor,
            self.ff * factor,
        )


# Table IV rows.  Power constants are the one calibrated element (DESIGN.md
# §5): fit so the five published 7V3 board measurements and ESE's 41 W
# reproduce within ~10%, then held fixed across every configuration.
ADM_PCIE_7V3 = FPGAPlatform(
    name="ADM-PCIE-7V3",
    dsp=3600,
    bram_blocks=1470,
    lut=859_200,
    ff=429_600,
    process_nm=28,
    static_watts=8.0,
    dsp_watts=2.8e-3,
    bram_watts=3.0e-3,
    lut_watts=8.0e-6,
    ff_watts=2.0e-6,
    routing_headroom=0.90,
)

XCKU060 = FPGAPlatform(
    name="XCKU060",
    dsp=2760,
    bram_blocks=1080,
    lut=331_680,
    ff=663_360,
    process_nm=20,
    static_watts=6.0,
    dsp_watts=2.2e-3,
    bram_watts=2.4e-3,
    lut_watts=6.5e-6,
    ff_watts=1.6e-6,
    routing_headroom=0.96,
)

# The registry pre-seeds both Table IV boards (with their historical aliases)
# as lazy references back to this module; additional boards are added with
# repro.api.register_platform.  PLATFORMS is the same registry exposed under
# its legacy dict name — iteration, ``in`` and ``sorted(...)`` still work.
PLATFORMS: Mapping[str, FPGAPlatform] = PLATFORM_REGISTRY


def get_platform(name: str) -> FPGAPlatform:
    """Look up a platform by canonical name or registered alias."""
    return PLATFORM_REGISTRY.get(name)
