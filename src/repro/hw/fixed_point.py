"""Fixed-point number formats and quantization (paper Sec. VII-D).

The paper replaces floating point with fixed-point arithmetic, choosing the
integer/fractional split from the numerical range of inputs and trained
weights, with "an additional static scaling factor" per layer.
:class:`FixedPointFormat` models a signed two's-complement Q-format;
:meth:`FixedPointFormat.fit` implements the range analysis.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

__all__ = [
    "FixedPointFormat",
    "quantization_snr_db",
    "fit_frac_bits_from_stats",
    "rowwise_fit_frac_bits",
    "rowwise_quantize",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed point with ``total_bits`` bits, ``frac_bits`` fractional.

    Representable values are ``k / 2**frac_bits`` for integer ``k`` in
    ``[-2**(total_bits-1), 2**(total_bits-1) - 1]``.  ``frac_bits`` may
    exceed ``total_bits`` (or be negative): that encodes the per-layer static
    scaling factor the paper mentions — the hardware still moves
    ``total_bits``-wide integers.
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if not 2 <= self.total_bits <= 64:
            raise QuantizationError(f"total_bits out of range: {self.total_bits}")

    @property
    def scale(self) -> float:
        return float(2.0**self.frac_bits)

    @property
    def resolution(self) -> float:
        """Spacing between adjacent representable values."""
        return 1.0 / self.scale

    @property
    def min_int(self) -> int:
        return -(2 ** (self.total_bits - 1))

    @property
    def max_int(self) -> int:
        return 2 ** (self.total_bits - 1) - 1

    @property
    def min_value(self) -> float:
        return self.min_int / self.scale

    @property
    def max_value(self) -> float:
        return self.max_int / self.scale

    # ------------------------------------------------------------------
    def to_int(self, values: np.ndarray) -> np.ndarray:
        """Round-to-nearest integer codes with saturation."""
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint(values * self.scale)
        return np.clip(codes, self.min_int, self.max_int).astype(np.int64)

    def from_int(self, codes: np.ndarray) -> np.ndarray:
        # Deliberately dtype-preserving: int codes are range-checked below
        # and only then cast; forcing a dtype here would skip the check.
        codes = np.asarray(codes)  # repro: ignore[REP003] range check needs the caller's integer dtype intact
        if codes.size and (
            codes.min() < self.min_int or codes.max() > self.max_int
        ):
            raise QuantizationError("integer codes out of format range")
        return codes.astype(np.float64) / self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Project onto the representable grid (round-to-nearest, saturating)."""
        return self.from_int(self.to_int(values))

    def max_error(self, values: np.ndarray) -> float:
        return float(
            np.max(np.abs(self.quantize(values) - np.asarray(values, dtype=np.float64)))
        )

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, values: np.ndarray, total_bits: int) -> "FixedPointFormat":
        """Choose ``frac_bits`` so the value range is covered without overflow.

        This is the paper's range analysis: find the smallest integer width
        holding ``max |x|`` and give every remaining bit to the fraction.
        A zero array gets all-fractional precision.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise QuantizationError("cannot fit a format to an empty array")
        peak = float(np.max(np.abs(values)))
        if peak == 0.0:
            return cls(total_bits, total_bits - 1)
        # Need 2**(total_bits-1-frac) > peak  =>  frac < total-1-log2(peak).
        frac_bits = int(np.floor(total_bits - 1 - np.log2(peak) - 1e-12))
        fmt = cls(total_bits, frac_bits)
        # Guard against boundary rounding pushing past max_int.
        while np.any(np.abs(fmt.to_int(values)) > fmt.max_int):  # pragma: no cover
            frac_bits -= 1
            fmt = cls(total_bits, frac_bits)
        return fmt


def fit_frac_bits_from_stats(
    peak: float, vmin: float, total_bits: int
) -> int:
    """``FixedPointFormat.fit`` from range statistics alone, bit-exactly.

    ``peak`` is ``max |x|`` and ``vmin`` is ``min x`` over the values the
    format must hold.  The overflow guard in :meth:`FixedPointFormat.fit`
    triggers exactly when the most negative value rounds at or below
    ``min_int`` (positive overflow saturates to ``max_int`` and never
    trips the ``|code| > max_int`` check), so the whole fit reduces to
    scalar arithmetic on ``(peak, vmin)`` — the basis of the format caches
    that avoid re-scanning unchanged arrays.
    """
    if peak == 0.0:
        return total_bits - 1
    frac_bits = int(np.floor(total_bits - 1 - np.log2(peak) - 1e-12))
    min_int = -(2 ** (total_bits - 1))
    while np.rint(vmin * 2.0**frac_bits) <= min_int:
        frac_bits -= 1
    return frac_bits


def rowwise_fit_frac_bits(values: np.ndarray, total_bits: int) -> np.ndarray:
    """Vectorized per-row :meth:`FixedPointFormat.fit` over the leading axis.

    ``values`` has shape ``(R, ...)``; returns an int64 ``(R,)`` array where
    entry ``r`` equals ``FixedPointFormat.fit(values[r], total_bits).frac_bits``
    bit-exactly (same initial estimate, same boundary guard).
    """
    flat = np.asarray(values, dtype=np.float64).reshape(len(values), -1)
    if flat.shape[1] == 0:
        raise QuantizationError("cannot fit a format to an empty array")
    vmax = flat.max(axis=1)
    vmin = flat.min(axis=1)
    peak = np.maximum(vmax, -vmin)
    nonzero = peak > 0.0
    frac = np.full(len(flat), total_bits - 1, dtype=np.int64)
    if nonzero.any():
        frac[nonzero] = np.floor(
            total_bits - 1 - np.log2(peak[nonzero]) - 1e-12
        ).astype(np.int64)
    min_int = -(2 ** (total_bits - 1))
    while True:
        bad = nonzero & (np.rint(vmin * np.exp2(frac.astype(np.float64))) <= min_int)
        if not bad.any():
            return frac
        frac = frac - bad.astype(np.int64)


def rowwise_quantize(
    values: np.ndarray, frac_bits: np.ndarray, total_bits: int
) -> np.ndarray:
    """Per-row grid projection matching ``FixedPointFormat.quantize``.

    ``frac_bits[r]`` applies to ``values[r]``.  Skips the int64 round-trip of
    :meth:`FixedPointFormat.to_int`/``from_int`` — ``rint`` already yields
    integral floats below 2**53, so clip-and-divide lands on identical bytes.
    """
    values = np.asarray(values, dtype=np.float64)
    scale = np.exp2(frac_bits.astype(np.float64)).reshape(
        (len(frac_bits),) + (1,) * (values.ndim - 1)
    )
    out = values * scale
    np.rint(out, out=out)
    np.clip(out, -(2 ** (total_bits - 1)), 2 ** (total_bits - 1) - 1, out=out)
    out /= scale
    return out


def quantization_snr_db(values: np.ndarray, fmt: FixedPointFormat) -> float:
    """Signal-to-quantization-noise ratio in dB (diagnostic)."""
    values = np.asarray(values, dtype=np.float64)
    noise = values - fmt.quantize(values)
    signal_power = float(np.mean(values**2))
    noise_power = float(np.mean(noise**2))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)
