"""Board power model (Table III rows "Power" and "Energy Efficiency").

``P = P_static + Σ_r c_r · used_r (+ P_offchip)`` — static plus per-resource
dynamic coefficients at the paper's fixed 200 MHz, plus an off-chip subsystem
term for designs that traffic DDR at inference time (ESE's activation look-up
tables live off-chip; every E-RNN/C-LSTM design is fully on-chip).

Coefficients live on :class:`repro.hw.platform.FPGAPlatform`; they were fit
once against the paper's published board measurements (five E-RNN/C-LSTM
points on the 7V3 between 22 W and 29 W, ESE's 41 W on the KU060) and are
held fixed across every configuration.
"""

from __future__ import annotations

from repro.hw.platform import FPGAPlatform, ResourceVector

__all__ = ["power_watts", "energy_efficiency", "OFFCHIP_SUBSYSTEM_WATTS"]

#: DDR3 + index/activation traffic + board overhead of an off-chip design,
#: calibrated so the ESE baseline reproduces its published 41 W.
OFFCHIP_SUBSYSTEM_WATTS = 26.0


def power_watts(
    platform: FPGAPlatform,
    used: ResourceVector,
    offchip: bool = False,
) -> float:
    """Total board power for a design using ``used`` resources."""
    dynamic = (
        platform.dsp_watts * used.dsp
        + platform.bram_watts * used.bram_blocks
        + platform.lut_watts * used.lut
        + platform.ff_watts * used.ff
    )
    total = platform.static_watts + dynamic
    if offchip:
        total += OFFCHIP_SUBSYSTEM_WATTS
    return total


def energy_efficiency(fps: float, watts: float) -> float:
    """Frames per second per watt — the paper's efficiency metric."""
    if watts <= 0:
        raise ValueError(f"power must be positive, got {watts}")
    return fps / watts
