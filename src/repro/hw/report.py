"""Implementation reports: the columns of the paper's Table III.

:class:`ImplementationReport` carries everything one Table III column holds;
:func:`format_table` renders a list of reports as the table the benchmark
prints next to the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ImplementationReport", "format_table"]


@dataclass(frozen=True)
class ImplementationReport:
    """One accelerator configuration's results (one Table III column)."""

    label: str
    cell: str
    platform: str
    quant_bits: int
    params_top_layer_m: float
    compression_ratio: float
    utilization: dict[str, float]
    latency_us: float
    fps: float
    power_watts: float | None
    per_degradation: float | None = None
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def energy_efficiency(self) -> float | None:
        if self.power_watts is None or self.power_watts <= 0:
            return None
        return self.fps / self.power_watts


_ROWS = (
    ("RNN cell", lambda r: r.cell),
    ("Platform", lambda r: r.platform),
    ("Quantization", lambda r: f"{r.quant_bits}bit fixed"),
    ("Params top layer (M)", lambda r: f"{r.params_top_layer_m:.2f}"),
    ("Compression ratio", lambda r: f"{r.compression_ratio:.1f}:1"),
    ("DSP (%)", lambda r: f"{100 * r.utilization.get('dsp', 0):.1f}"),
    ("BRAM (%)", lambda r: f"{100 * r.utilization.get('bram', 0):.1f}"),
    ("LUT (%)", lambda r: f"{100 * r.utilization.get('lut', 0):.1f}"),
    ("FF (%)", lambda r: f"{100 * r.utilization.get('ff', 0):.1f}"),
    (
        "PER degradation (%)",
        lambda r: "-" if r.per_degradation is None else f"{r.per_degradation:.2f}",
    ),
    ("Latency (us)", lambda r: f"{r.latency_us:.1f}"),
    ("FPS", lambda r: f"{r.fps:,.0f}"),
    (
        "Power (W)",
        lambda r: "-" if r.power_watts is None else f"{r.power_watts:.0f}",
    ),
    (
        "Energy eff. (FPS/W)",
        lambda r: (
            "-"
            if r.energy_efficiency is None
            else f"{r.energy_efficiency:,.0f}"
        ),
    ),
)


def format_table(reports: list[ImplementationReport], title: str = "") -> str:
    """Render reports side by side, Table III style (configs as columns)."""
    if not reports:
        return "(no reports)"
    header = [""] + [r.label for r in reports]
    rows = [[name] + [extract(r) for r in reports] for name, extract in _ROWS]
    widths = [
        max(len(str(line[col])) for line in [header] + rows)
        for col in range(len(header))
    ]

    def render(line: list[str]) -> str:
        return " | ".join(str(cell).rjust(w) for cell, w in zip(line, widths))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render(header))
    lines.append(separator)
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
