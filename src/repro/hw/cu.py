"""Compute-unit timing model: the CGPipe stage algebra of Figs. 11-12.

A CU runs one input sequence; the recurrence (``y_t``/``c_t`` feeding frame
``t+1``) serializes consecutive frames, so a CU's frame latency *is* its
initiation interval and total FPS = ``#CU × f_clk / frame_cycles``.  This is
exactly what Table III shows: FPS × latency ≈ 3.0-3.2 for every E-RNN and
C-LSTM configuration — three compute units, no intra-sequence overlap.

Cycle budget per frame:

* **Matrix-vector stages** — every circulant block product occupies one PE
  for ``cycles_per_block`` cycles; the CU's PEs work the ``p × q`` block grid
  in parallel (TDM over blocks, Sec. VII-B).  FFT/IFFT decoupling adds ``q``
  input FFTs and ``p`` output IFFTs, also spread over the PEs.
* **Point-wise stage** — peepholes, gate combination, cell update and PWL
  activations on a ``POINTWISE_LANES``-wide multiplier-adder block.
* **Stage overhead** — pipeline fill/drain and double-buffer swap per CGPipe
  stage.  The LSTM CU has three stages (Fig. 11); the GRU CU fuses its two
  matrix stages onto the same hardware by TDM (Fig. 12, Sec. VII-C2), which
  both removes a stage boundary and keeps the PE array saturated across the
  ``W(rz)(xc)`` / ``W_c̃`` transition — modeled by ``GRU_TDM_SPEEDUP``
  (calibrated once against Table III's measured GRU/LSTM latency ratio).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import AccelSpec, RNNSpec
from repro.core.compression import MatrixShape, matrix_inventory
from repro.errors import ConfigError
from repro.hw.pe import ProcessingElement

__all__ = [
    "CUTiming",
    "ComputeUnitModel",
    "matrix_block_grid",
    "POINTWISE_LANES",
    "STAGE_OVERHEAD_CYCLES",
    "GRU_TDM_SPEEDUP",
]

#: Width of the CU's point-wise multiplier-adder block (Fig. 11, stage 2).
POINTWISE_LANES = 128

#: Pipeline fill/drain + double-buffer swap per CGPipe stage.
STAGE_OVERHEAD_CYCLES = 40

#: Throughput gain of the GRU CU's TDM-fused matrix stages over the LSTM CU's
#: three-stage pipeline (calibrated to Table III, see module docstring).
GRU_TDM_SPEEDUP = 1.35


def matrix_block_grid(shape: MatrixShape) -> tuple[int, int]:
    """(p, q) block grid of a matrix, padding partial blocks (Sec. III-A)."""
    block = max(shape.block_size, 1)
    return (-(-shape.rows // block), -(-shape.cols // block))


@dataclass(frozen=True)
class CUTiming:
    """Per-frame cycle breakdown of one compute unit."""

    matvec_cycles: float
    fft_cycles: float
    pointwise_cycles: float
    overhead_cycles: float

    @property
    def frame_cycles(self) -> float:
        return (
            self.matvec_cycles
            + self.fft_cycles
            + self.pointwise_cycles
            + self.overhead_cycles
        )


class ComputeUnitModel:
    """Frame-latency model of one CU executing an :class:`RNNSpec`."""

    def __init__(
        self,
        spec: RNNSpec,
        accel: AccelSpec,
        pes_per_cu: int,
        pe_efficiency: float = 1.0,
    ):
        if pes_per_cu < 1:
            raise ConfigError(f"need at least one PE per CU, got {pes_per_cu}")
        if not 0 < pe_efficiency <= 2.0:
            raise ConfigError(f"pe_efficiency out of range: {pe_efficiency}")
        if not spec.is_block_circulant:
            raise ConfigError(
                "the CU model prices circulant PEs; dense specs are handled "
                "by the baseline models"
            )
        self.spec = spec
        self.accel = accel
        self.pes_per_cu = pes_per_cu
        self.pe_efficiency = pe_efficiency
        self.matrices = matrix_inventory(spec)

    # ------------------------------------------------------------------
    @property
    def num_cgpipe_stages(self) -> int:
        """LSTM: three stages (Fig. 11); GRU: matrix stages TDM-fused (Fig. 12)."""
        return 3 if self.spec.cell_type == "lstm" else 2

    @property
    def tdm_speedup(self) -> float:
        return GRU_TDM_SPEEDUP if self.spec.cell_type == "gru" else 1.0

    # ------------------------------------------------------------------
    def total_block_ops(self) -> int:
        """Circulant block products per frame, all matrices."""
        total = 0
        for shape in self.matrices:
            if shape.block_size <= 1:
                raise ConfigError(f"matrix {shape.name} is dense in a circulant CU")
            p, q = matrix_block_grid(shape)
            total += p * q
        return total

    def matvec_pe_cycles(self) -> float:
        """PE-cycles of all block products (before dividing across PEs)."""
        total = 0.0
        for shape in self.matrices:
            pe = ProcessingElement(shape.block_size, self.accel.weight_bits)
            p, q = matrix_block_grid(shape)
            total += p * q * pe.cycles_per_block
        return total

    def fft_pe_cycles(self) -> float:
        """Decoupled input FFTs (q per matrix) and output IFFTs (p per matrix)."""
        total = 0.0
        for shape in self.matrices:
            p, q = matrix_block_grid(shape)
            total += p + q
        return total

    def pointwise_ops(self) -> int:
        """Point-wise multiplications + activation lookups per frame."""
        total = 0
        for hidden in self.spec.layer_sizes:
            if self.spec.cell_type == "lstm":
                mults = (3 * hidden if self.spec.peephole else 0) + 3 * hidden
                activations = 5 * hidden  # σ×3 gates, tanh(c), plus σ reuse
            else:
                mults = 3 * hidden  # r⊙c, (1−z)⊙c, z⊙c̃
                activations = 3 * hidden  # σ(z), σ(r), tanh(c̃)
            total += mults + activations
        return total

    # ------------------------------------------------------------------
    def timing(self) -> CUTiming:
        effective_pes = self.pes_per_cu * self.pe_efficiency * self.tdm_speedup
        matvec = self.matvec_pe_cycles() / effective_pes
        fft = self.fft_pe_cycles() / effective_pes
        # Wider fixed-point data proportionally narrows the point-wise block.
        width_factor = self.accel.weight_bits / 12.0
        pointwise = math.ceil(
            self.pointwise_ops() * width_factor / POINTWISE_LANES
        )
        overhead = STAGE_OVERHEAD_CYCLES * self.num_cgpipe_stages
        return CUTiming(matvec, fft, float(pointwise), float(overhead))

    def frame_cycles(self) -> float:
        return self.timing().frame_cycles
