"""ASIC projection of an E-RNN accelerator design (paper Sec. I: "The
proposed framework is also applicable to ASICs").

Takes a sized FPGA design and projects it to a standard-cell implementation
with first-order technology translation factors — the kind of estimate an
architecture paper uses to argue portability, not a sign-off flow:

* each DSP slice → a pipelined fixed-point multiplier-accumulator macro;
* each BRAM block → an SRAM macro of equal capacity;
* LUT/FF logic → NAND2-equivalent gates at a standard cell density;
* clock scales up (no programmable-routing overhead), dynamic power scales
  with the FPGA→ASIC efficiency gap (Kuon & Rose's classic ~3-4x dynamic
  power and ~3-5x frequency factors are the defaults).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.accelerator import AcceleratorDesign

__all__ = ["ASICProcess", "ASICProjection", "project_to_asic", "TSMC28_LIKE"]


@dataclass(frozen=True)
class ASICProcess:
    """Technology constants for a generic planar node."""

    name: str
    node_nm: int
    #: mm^2 per 18x18 pipelined MAC macro (incl. registers).
    mac_area_mm2: float
    #: mm^2 per 36 Kb single-port SRAM macro.
    sram_block_area_mm2: float
    #: mm^2 per kGE of random logic (NAND2-equivalent).
    logic_area_per_kge_mm2: float
    #: NAND2-equivalent gates per FPGA LUT (Kuon & Rose area gap folded in).
    gates_per_lut: float
    #: Achievable clock relative to the FPGA's 200 MHz.
    frequency_factor: float
    #: Dynamic power ratio ASIC/FPGA at iso-throughput.
    power_factor: float

    def __post_init__(self) -> None:
        if self.frequency_factor <= 0 or self.power_factor <= 0:
            raise ConfigError("scaling factors must be positive")


TSMC28_LIKE = ASICProcess(
    name="generic-28nm",
    node_nm=28,
    mac_area_mm2=0.0009,
    sram_block_area_mm2=0.012,
    logic_area_per_kge_mm2=0.0006,
    gates_per_lut=8.0,
    frequency_factor=4.0,
    power_factor=0.28,
)


@dataclass(frozen=True)
class ASICProjection:
    """First-order ASIC estimate derived from an FPGA design point."""

    design: AcceleratorDesign
    process: ASICProcess

    @property
    def clock_mhz(self) -> float:
        return self.design.accel.clock_mhz * self.process.frequency_factor

    @property
    def latency_us(self) -> float:
        """Same cycle count, faster clock."""
        return self.design.frame_cycles / self.clock_mhz

    @property
    def fps(self) -> float:
        return self.design.num_cus * self.clock_mhz * 1e6 / self.design.frame_cycles

    @property
    def area_mm2(self) -> float:
        used = self.design.resources_used
        mac_area = used.dsp * self.process.mac_area_mm2
        sram_area = used.bram_blocks * self.process.sram_block_area_mm2
        gates_kge = used.lut * self.process.gates_per_lut / 1000.0
        logic_area = gates_kge * self.process.logic_area_per_kge_mm2
        return mac_area + sram_area + logic_area

    @property
    def power_watts(self) -> float:
        """Dynamic share scaled by the technology factor; FPGA static lapses."""
        fpga_dynamic = (
            self.design.power_watts - self.design.platform.static_watts
        )
        # Power grows with frequency; efficiency factor shrinks it.
        return max(
            fpga_dynamic
            * self.process.power_factor
            * self.process.frequency_factor,
            0.1,
        )

    @property
    def energy_efficiency(self) -> float:
        return self.fps / self.power_watts

    def describe(self) -> str:
        return (
            f"ASIC projection ({self.process.name}) of "
            f"{self.design.spec.describe()}:\n"
            f"  {self.area_mm2:.1f} mm^2, {self.clock_mhz:.0f} MHz, "
            f"{self.latency_us:.2f} us/frame, {self.fps:,.0f} FPS, "
            f"{self.power_watts:.1f} W ({self.energy_efficiency:,.0f} FPS/W)"
        )


def project_to_asic(
    design: AcceleratorDesign, process: ASICProcess = TSMC28_LIKE
) -> ASICProjection:
    """Project a built FPGA design onto an ASIC process."""
    return ASICProjection(design=design, process=process)
