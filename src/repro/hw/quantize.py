"""Model quantization pass and degradation measurement (paper Sec. VII-D).

``quantized_copy`` projects every trained parameter onto a fitted fixed-point
grid (per-parameter Q-format — the paper's "additional static scaling factor"
per layer) and optionally swaps the exact sigmoid/tanh for the hardware's
piecewise-linear versions, producing the model the FPGA would actually
compute.  ``quantization_sweep`` reproduces the Sec. VII-D finding that 12
bits costs < 0.1% PER.
"""

from __future__ import annotations

import numpy as np

from repro.asr.pipeline import PreparedDataset
from repro.hw.activation import PiecewiseLinearActivation, pwl_sigmoid, pwl_tanh
from repro.hw.fixed_point import FixedPointFormat, fit_frac_bits_from_stats
from repro.nn.autograd import Tensor
from repro.nn.rnn import StackedRNNClassifier

__all__ = [
    "FitStatsCache",
    "quantize_state",
    "quantized_copy",
    "apply_pwl_activations",
    "quantize_features",
    "quantization_sweep",
]


class FitStatsCache:
    """Range statistics of a fixed set of parameters, scanned once.

    :meth:`FixedPointFormat.fit` is fully determined by ``max |x|`` and
    ``min x`` (see :func:`fit_frac_bits_from_stats`), so re-quantizing the
    *same* trained state at several bit widths — exactly what
    :func:`quantization_sweep` does — only needs one min/max pass per
    parameter, not one per ``(parameter, bits)`` pair.  Entries are keyed
    on parameter name and shape; the caller guarantees the values
    themselves are unchanged between uses (one cache per trained model).
    """

    def __init__(self) -> None:
        self._stats: dict[tuple[str, tuple[int, ...]], tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0

    def fit(self, name: str, values: np.ndarray, bits: int) -> FixedPointFormat:
        """``FixedPointFormat.fit(values, bits)``, stats memoized by name."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return FixedPointFormat.fit(values, bits)  # raises, like uncached
        key = (name, values.shape)
        stats = self._stats.get(key)
        if stats is None:
            self.misses += 1
            stats = (float(np.max(np.abs(values))), float(values.min()))
            self._stats[key] = stats
        else:
            self.hits += 1
        peak, vmin = stats
        return FixedPointFormat(bits, fit_frac_bits_from_stats(peak, vmin, bits))


def quantize_state(
    state: dict[str, np.ndarray],
    bits: int,
    fit_cache: FitStatsCache | None = None,
) -> tuple[dict[str, np.ndarray], dict[str, FixedPointFormat]]:
    """Quantize a state dict; returns new state and the per-parameter formats.

    ``fit_cache`` (optional) reuses range statistics across repeat calls on
    the same state — byte-identical to refitting from scratch.
    """
    quantized: dict[str, np.ndarray] = {}
    formats: dict[str, FixedPointFormat] = {}
    for name, values in state.items():
        if fit_cache is not None:
            fmt = fit_cache.fit(name, values, bits)
        else:
            fmt = FixedPointFormat.fit(values, bits)
        quantized[name] = fmt.quantize(values)
        formats[name] = fmt
    return quantized, formats


def _tensor_wrap(pwl: PiecewiseLinearActivation):
    """Lift a numpy PWL approximation to an inference-time Tensor op."""

    def apply(tensor: Tensor) -> Tensor:
        return Tensor(pwl(tensor.data))

    return apply


def apply_pwl_activations(
    model: StackedRNNClassifier,
    segments: int = 16,
) -> StackedRNNClassifier:
    """Swap every cell's σ/tanh for their PWL approximations (in place).

    Inference-only: the wrapped ops do not build gradient graphs.  Returns
    the model for chaining.
    """
    sigmoid = _tensor_wrap(pwl_sigmoid(segments))
    tanh = _tensor_wrap(pwl_tanh(segments))
    for cell in model.cells:
        cell.sigmoid_fn = sigmoid
        cell.tanh_fn = tanh
    return model


def quantized_copy(
    model: StackedRNNClassifier,
    weight_bits: int,
    pwl_segments: int | None = None,
    fit_cache: FitStatsCache | None = None,
) -> StackedRNNClassifier:
    """Fixed-point copy of a trained model (weights, optionally activations)."""
    copy = StackedRNNClassifier(
        model.spec, structured=model.structured, rng=np.random.default_rng(0)
    )
    quantized, _ = quantize_state(model.state_dict(), weight_bits, fit_cache)
    copy.load_state_dict(quantized)
    if pwl_segments is not None:
        apply_pwl_activations(copy, pwl_segments)
    return copy


def quantize_features(features: np.ndarray, bits: int) -> np.ndarray:
    """Quantize an input feature matrix (the paper quantizes inputs too)."""
    fmt = FixedPointFormat.fit(features, bits)
    return fmt.quantize(features)


def quantized_dataset(dataset: PreparedDataset, bits: int) -> PreparedDataset:
    """Dataset copy with fixed-point input features."""
    return PreparedDataset(
        features=[quantize_features(f, bits) for f in dataset.features],
        frame_labels=dataset.frame_labels,
        phone_sequences=dataset.phone_sequences,
        phone_set=dataset.phone_set,
    )


def quantization_sweep(
    model: StackedRNNClassifier,
    dataset: PreparedDataset,
    bits_list: tuple[int, ...] = (16, 14, 12, 10, 8, 6),
    pwl_segments: int | None = 16,
) -> dict[int, float]:
    """PER at each candidate bit width (weights + inputs + PWL activations).

    One :class:`FitStatsCache` spans the whole sweep: the trained state is
    range-scanned once and every bit width derives its formats from the
    cached statistics (byte-identical to refitting per width).

    Scoring runs through :func:`repro.runtime.evaluate_per` (imported
    lazily — this module is part of ``repro.hw``, which the runtime's
    fixed backend itself imports).
    """
    from repro.runtime.evaluate import evaluate_per

    results: dict[int, float] = {}
    fit_cache = FitStatsCache()
    for bits in bits_list:
        quantized = quantized_copy(model, bits, pwl_segments, fit_cache)
        results[bits] = evaluate_per(quantized, quantized_dataset(dataset, bits))
    return results
