"""BRAM storage model and the Phase-I fit check (paper Sec. VI-B, Step One).

Counts the bits a block-circulant RNN needs on-chip: weight spectra (the
pre-computed ``FFT(w_ij)`` of Sec. V-A1 — a real length-``Lb`` vector expands
to ``Lb/2 + 1`` complex bins, i.e. ``(Lb + 2)/Lb`` more words), biases and
peepholes, and the per-CU double buffers.  The fit check reproduces the
paper's Step-One conclusion: for the ASR LSTM, "a block size of 4 or 8 will
fit the whole RNN model into BRAM.  A block size 8 will be safer" — block 4
fits the 6.6 MB Virtex-7 but not the 4.9 MB KU060 once the input/output
share is reserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RNNSpec
from repro.core.compression import matrix_inventory
from repro.errors import FitError
from repro.hw.platform import FPGAPlatform

__all__ = [
    "StorageBreakdown",
    "weight_storage_bits",
    "buffer_storage_bits",
    "storage_breakdown",
    "fits_bram",
    "min_block_size_for_bram",
]

#: Share of BRAM the weights may use; the rest is reserved for input/output
#: buffers and intermediate results ("allocate certain portion of BRAM for
#: inputs/outputs", Sec. VI-B).
USABLE_FRACTION = 0.8

#: Physical-mapping slack: partitioning weights across banks wastes a little
#: of each 36 Kb block.
PARTITION_OVERHEAD = 1.1


def _spectrum_expansion(block_size: int) -> float:
    """Storage growth from keeping weights in the FFT domain."""
    if block_size <= 1:
        return 1.0
    return (block_size + 2) / block_size


def weight_storage_bits(
    spec: RNNSpec, bits: int, fft_domain: bool = True
) -> float:
    """Bits for all weight matrices (padded to whole blocks, spectra stored)."""
    total = 0.0
    for shape in matrix_inventory(spec):
        params = shape.compressed_params(pad=True)
        expansion = _spectrum_expansion(shape.block_size) if fft_domain else 1.0
        total += params * bits * expansion
    return total * PARTITION_OVERHEAD


def vector_storage_bits(spec: RNNSpec, bits: int) -> float:
    """Biases and peephole vectors (never compressed, Sec. III-A)."""
    total = 0
    for hidden in spec.layer_sizes:
        if spec.cell_type == "lstm":
            total += 4 * hidden  # b(ifco)
            if spec.peephole:
                total += 3 * hidden  # W_ic, W_fc, W_oc diagonals
        else:
            total += 3 * hidden  # b_zr (2H) + b_c̃ (H)
    return total * bits


def buffer_storage_bits(spec: RNNSpec, bits: int, num_cus: int = 3) -> float:
    """Per-CU double buffers for x, y/c and intermediate gate vectors."""
    widest = max((spec.input_size, *spec.layer_sizes))
    per_cu = 2 * (spec.input_size + 4 * widest + 2 * widest) * bits
    return num_cus * per_cu


@dataclass(frozen=True)
class StorageBreakdown:
    """On-chip storage demand in bits, by category."""

    weights: float
    vectors: float
    buffers: float

    @property
    def total(self) -> float:
        return self.weights + self.vectors + self.buffers


def storage_breakdown(
    spec: RNNSpec, bits: int, num_cus: int = 3, fft_domain: bool = True
) -> StorageBreakdown:
    return StorageBreakdown(
        weights=weight_storage_bits(spec, bits, fft_domain),
        vectors=vector_storage_bits(spec, bits),
        buffers=buffer_storage_bits(spec, bits, num_cus),
    )


def fits_bram(
    spec: RNNSpec,
    platform: FPGAPlatform,
    bits: int = 12,
    usable_fraction: float = USABLE_FRACTION,
) -> bool:
    """Phase-I sanity check: does the whole model fit on-chip?"""
    demand = storage_breakdown(spec, bits).total
    return demand <= platform.bram_bits * usable_fraction


def min_block_size_for_bram(
    spec: RNNSpec,
    platform: FPGAPlatform,
    bits: int = 12,
    max_block: int = 256,
    usable_fraction: float = USABLE_FRACTION,
) -> int:
    """Smallest power-of-two block size whose model fits BRAM (Step One).

    This is the *lower bound* of the Phase-I block-size search.  Raises
    :class:`FitError` when even ``max_block`` does not fit (the model is too
    large for the platform at any supported compression).
    """
    block = 1
    while block <= max_block:
        if all(size % block == 0 for size in spec.layer_sizes):
            candidate = spec.with_block_sizes(
                tuple(block for _ in spec.layer_sizes)
            )
            if fits_bram(candidate, platform, bits, usable_fraction):
                return block
        block *= 2
    raise FitError(
        f"{spec.describe()} does not fit {platform.name} BRAM even at "
        f"block size {max_block}"
    )
