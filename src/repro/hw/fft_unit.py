"""Hardware FFT stage model: resources and timing of one pipelined FFT.

A PE (paper Fig. 10) contains two FFT operators (the second implements the
IFFT via conjugation + right-shift).  This module prices one such operator:
DSP cost follows the non-trivial-twiddle accounting of
:mod:`repro.core.cost_model` — radix-2 stages 1-2 are multiplier-free, each
later stage carries one complex multiplier (3 DSP at ≤18-bit operands).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import is_power_of_two
from repro.errors import ConfigError
from repro.hw.platform import ResourceVector

__all__ = ["FFTUnit"]

#: DSP blocks per complex multiplier (3-multiplier decomposition).
DSP_PER_COMPLEX_MULT = 3


@dataclass(frozen=True)
class FFTUnit:
    """One pipelined radix-2 FFT of ``size`` points at ``bits`` precision."""

    size: int
    bits: int = 12

    def __post_init__(self) -> None:
        if self.size < 2 or not is_power_of_two(self.size):
            raise ConfigError(f"FFT size must be a power of two >= 2: {self.size}")
        if not 4 <= self.bits <= 32:
            raise ConfigError(f"unsupported FFT bit width {self.bits}")

    @property
    def stages(self) -> int:
        return int(math.log2(self.size))

    @property
    def multiplier_stages(self) -> int:
        """Stages that need a complex multiplier (stages 3..log2 N)."""
        return max(self.stages - 2, 0)

    @property
    def dsp(self) -> int:
        """At least one complex multiplier even for tiny FFTs (control/scale)."""
        return DSP_PER_COMPLEX_MULT * max(self.multiplier_stages, 1)

    def resources(self) -> ResourceVector:
        """DSP/LUT/FF of one streaming FFT operator.

        LUT: two adders per butterfly stage plus twiddle ROM mux;
        FF: stage pipeline registers.  Constants calibrated as part of the
        PE-level fit in :mod:`repro.hw.pe` (DESIGN.md §5).
        """
        lut = self.stages * 6 * self.bits + 40
        ff = self.stages * 4 * self.bits + 2 * self.bits
        return ResourceVector(dsp=float(self.dsp), lut=lut, ff=ff)

    @property
    def latency_cycles(self) -> int:
        """Pipeline fill: one cycle per stage plus I/O registering."""
        return self.stages + 2
