"""Whole-accelerator model: PE allocation, latency, FPS, power (Fig. 9).

Ties the pieces together for one (RNNSpec, AccelSpec, platform) triple:

1. **PE allocation** — the paper's rule ``#PE = min(⌊DSP/ΔDSP⌋, ⌊LUT/ΔLUT⌋)``
   (Sec. VII-B), extended with the BRAM-bank feed bound (each PE consumes
   ``Lb`` weight-spectrum banks) and applied after reserving the platform
   base (PCIe/controller) and per-CU overheads (point-wise block, buffers).
2. **CU partitioning** — PEs divide evenly over ``num_compute_units``
   (default 3: Table III's measured FPS × latency ≈ 3.0-3.2 pins the
   concurrency at three sequences in flight).
3. **Timing** — :class:`repro.hw.cu.ComputeUnitModel` gives frame cycles;
   latency = cycles × clock period, FPS = ``#CU × f / cycles``.
4. **Power** — utilization-based model of :mod:`repro.hw.power`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.config import AccelSpec, RNNSpec
from repro.core.compression import matrix_inventory
from repro.errors import FitError
from repro.hw.bram import storage_breakdown
from repro.hw.cu import ComputeUnitModel, CUTiming
from repro.hw.pe import ProcessingElement
from repro.hw.platform import FPGAPlatform, ResourceVector, get_platform
from repro.hw.power import energy_efficiency, power_watts

__all__ = [
    "AcceleratorDesign",
    "AcceleratorModel",
    "build_design",
    "pe_capacity",
    "DEFAULT_NUM_CUS",
]

#: Compute units (see module docstring for the Table III derivation).
DEFAULT_NUM_CUS = 3

#: Place-and-route headroom: synthesis cannot use every last cell.
MAX_UTILIZATION = 0.96

#: Host-interface + controller overhead (Fig. 9: PCIE controller, E-RNN
#: controller, data bus) and per-CU overhead (point-wise multiplier-adder
#: block of POINTWISE_LANES DSPs, activation PWL units, double buffers).
PLATFORM_BASE = ResourceVector(dsp=0, bram_blocks=32, lut=30_000, ff=40_000)
PER_CU_BASE = ResourceVector(dsp=128, bram_blocks=8, lut=8_000, ff=10_000)

#: PE-array efficiency of the C-LSTM design relative to E-RNN's optimized
#: PEs (the paper credits its 1.2-1.3× edge at equal block size to "hardware
#: system design, PE optimization, and quantization", Sec. VIII-B2).
CLSTM_PE_EFFICIENCY = 0.82


@dataclass(frozen=True)
class AcceleratorDesign:
    """A sized accelerator with its performance and power figures."""

    spec: RNNSpec
    accel: AccelSpec
    platform: FPGAPlatform
    num_pes: int
    num_cus: int
    pes_per_cu: int
    timing: CUTiming
    resources_used: ResourceVector

    @property
    def frame_cycles(self) -> float:
        return self.timing.frame_cycles

    @property
    def latency_us(self) -> float:
        return self.frame_cycles * self.accel.clock_period_ns / 1000.0

    @property
    def fps(self) -> float:
        return self.num_cus * self.accel.clock_mhz * 1e6 / self.frame_cycles

    @property
    def utilization(self) -> dict[str, float]:
        return self.platform.utilization(self.resources_used)

    @property
    def power_watts(self) -> float:
        return power_watts(self.platform, self.resources_used)

    @property
    def energy_efficiency(self) -> float:
        return energy_efficiency(self.fps, self.power_watts)


class AcceleratorModel:
    """Builds an :class:`AcceleratorDesign` for a circulant RNN.

    .. deprecated::
        Direct use is superseded by the :mod:`repro.api` facade —
        ``Design.lstm(...).on(platform).price()`` — which routes through the
        cached build :class:`repro.api.engine.Engine`.  This class remains as
        a working shim; library internals call :func:`build_design` instead.
    """

    def __init__(
        self,
        spec: RNNSpec,
        accel: AccelSpec,
        pe_efficiency: float = 1.0,
        *,
        _warn: bool = True,
    ):
        if _warn:
            warnings.warn(
                "AcceleratorModel is deprecated; use repro.api.Design"
                " (e.g. Design.lstm(...).on(platform).price()) or"
                " repro.hw.accelerator.build_design()",
                DeprecationWarning,
                stacklevel=2,
            )
        self.spec = spec
        self.accel = accel
        self.platform = get_platform(accel.platform)
        self.pe_efficiency = pe_efficiency
        self.num_cus = (
            accel.num_compute_units
            if accel.num_compute_units is not None
            else DEFAULT_NUM_CUS
        )
        block_sizes = [s.block_size for s in matrix_inventory(spec)]
        self.max_block = max(block_sizes)
        if self.max_block <= 1:
            raise FitError(
                "AcceleratorModel requires a block-circulant spec; dense "
                "models are handled by the ESE baseline model"
            )
        self.pe = ProcessingElement(self.max_block, accel.weight_bits)

    # ------------------------------------------------------------------
    def allocate_pes(self) -> int:
        """Paper's min-rule over DSP/LUT plus the BRAM-bank feed bound."""
        platform = self.platform
        headroom = min(MAX_UTILIZATION, platform.routing_headroom)
        overhead = PLATFORM_BASE + PER_CU_BASE.scale(self.num_cus)
        dsp_budget = platform.dsp * headroom - overhead.dsp
        lut_budget = platform.lut * headroom - overhead.lut
        ff_budget = platform.ff * headroom - overhead.ff
        bram_budget = platform.bram_blocks * headroom - overhead.bram_blocks
        bounds = (
            int(dsp_budget // self.pe.dsp),
            int(lut_budget // self.pe.lut),
            int(ff_budget // self.pe.ff),
            int(bram_budget // self.pe.bram_banks),
        )
        num_pes = min(bounds)
        if num_pes < self.num_cus:
            raise FitError(
                f"{self.platform.name} cannot host one PE per CU for "
                f"{self.spec.describe()} (bounds {bounds})"
            )
        return num_pes

    def _resources_used(self, num_pes: int) -> ResourceVector:
        used = PLATFORM_BASE + PER_CU_BASE.scale(self.num_cus)
        used = used + self.pe.resources().scale(num_pes)
        # Weight storage may exceed the bank-feed blocks for small PE counts.
        capacity_blocks = (
            storage_breakdown(
                self.spec, self.accel.weight_bits, self.num_cus
            ).total
            / (36 * 1024)
        )
        bank_blocks = used.bram_blocks
        if capacity_blocks + PLATFORM_BASE.bram_blocks > bank_blocks:
            used = ResourceVector(
                used.dsp,
                capacity_blocks + PLATFORM_BASE.bram_blocks,
                used.lut,
                used.ff,
            )
        return used

    # ------------------------------------------------------------------
    def build(self) -> AcceleratorDesign:
        num_pes = self.allocate_pes()
        pes_per_cu = num_pes // self.num_cus
        num_pes = pes_per_cu * self.num_cus  # keep CUs symmetric
        cu = ComputeUnitModel(
            self.spec, self.accel, pes_per_cu, pe_efficiency=self.pe_efficiency
        )
        design = AcceleratorDesign(
            spec=self.spec,
            accel=self.accel,
            platform=self.platform,
            num_pes=num_pes,
            num_cus=self.num_cus,
            pes_per_cu=pes_per_cu,
            timing=cu.timing(),
            resources_used=self._resources_used(num_pes),
        )
        if not self.platform.fits(design.resources_used):
            raise FitError(
                f"design exceeds {self.platform.name}: "
                f"{design.utilization}"
            )
        return design


def build_design(
    spec: RNNSpec, accel: AccelSpec, pe_efficiency: float = 1.0
) -> AcceleratorDesign:
    """Size one accelerator — the canonical (non-deprecated) build path.

    :class:`repro.api.engine.Engine` memoizes this call; everything inside
    the library (Phase II, the HLS flow, the experiment tables) goes through
    here so only *external* ``AcceleratorModel`` use triggers the
    deprecation warning.
    """
    return AcceleratorModel(spec, accel, pe_efficiency, _warn=False).build()


def pe_capacity(spec: RNNSpec, accel: AccelSpec) -> int:
    """How many PEs the platform can host for ``spec`` (the paper's min-rule).

    The allocation bound alone — before CU-symmetric rounding or timing —
    as quoted in Table IV's derived rows.  The canonical internal entry
    point; like :func:`build_design` it keeps ``AcceleratorModel`` a shim
    for external callers only.
    """
    return AcceleratorModel(spec, accel, _warn=False).allocate_pes()
