"""Hardware substrate: FPGA platform, PE/CU/accelerator, quantization, power."""

from repro.hw.accelerator import (
    DEFAULT_NUM_CUS,
    AcceleratorDesign,
    AcceleratorModel,
    build_design,
)
from repro.hw.activation import PiecewiseLinearActivation, pwl_sigmoid, pwl_tanh
from repro.hw.asic import TSMC28_LIKE, ASICProcess, ASICProjection, project_to_asic
from repro.hw.bram import (
    StorageBreakdown,
    fits_bram,
    min_block_size_for_bram,
    storage_breakdown,
    weight_storage_bits,
)
from repro.hw.cu import (
    GRU_TDM_SPEEDUP,
    POINTWISE_LANES,
    STAGE_OVERHEAD_CYCLES,
    ComputeUnitModel,
    CUTiming,
    matrix_block_grid,
)
from repro.hw.emulator import CUEmulator, SpectralWeights
from repro.hw.fft_fixed import FixedPointFFT, fixed_point_circulant_matvec
from repro.hw.fft_unit import FFTUnit
from repro.hw.fixed_point import FixedPointFormat, quantization_snr_db
from repro.hw.pe import ProcessingElement
from repro.hw.platform import (
    ADM_PCIE_7V3,
    PLATFORMS,
    XCKU060,
    FPGAPlatform,
    ResourceVector,
    get_platform,
)
from repro.hw.power import OFFCHIP_SUBSYSTEM_WATTS, energy_efficiency, power_watts
from repro.hw.quantize import (
    apply_pwl_activations,
    quantization_sweep,
    quantize_features,
    quantize_state,
    quantized_copy,
    quantized_dataset,
)
from repro.hw.report import ImplementationReport, format_table

__all__ = [
    "DEFAULT_NUM_CUS",
    "AcceleratorDesign",
    "AcceleratorModel",
    "build_design",
    "PiecewiseLinearActivation",
    "pwl_sigmoid",
    "pwl_tanh",
    "TSMC28_LIKE",
    "ASICProcess",
    "ASICProjection",
    "project_to_asic",
    "StorageBreakdown",
    "fits_bram",
    "min_block_size_for_bram",
    "storage_breakdown",
    "weight_storage_bits",
    "GRU_TDM_SPEEDUP",
    "POINTWISE_LANES",
    "STAGE_OVERHEAD_CYCLES",
    "ComputeUnitModel",
    "CUTiming",
    "matrix_block_grid",
    "FFTUnit",
    "CUEmulator",
    "SpectralWeights",
    "FixedPointFFT",
    "fixed_point_circulant_matvec",
    "FixedPointFormat",
    "quantization_snr_db",
    "ProcessingElement",
    "ADM_PCIE_7V3",
    "PLATFORMS",
    "XCKU060",
    "FPGAPlatform",
    "ResourceVector",
    "get_platform",
    "OFFCHIP_SUBSYSTEM_WATTS",
    "energy_efficiency",
    "power_watts",
    "apply_pwl_activations",
    "quantization_sweep",
    "quantize_features",
    "quantize_state",
    "quantized_copy",
    "quantized_dataset",
    "ImplementationReport",
    "format_table",
]
