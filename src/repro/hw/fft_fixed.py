"""Bit-accurate fixed-point radix-2 FFT (the PE's actual datapath).

The float FFT in :mod:`repro.core.circulant` computes *what* the hardware
computes; this module computes it *how* the hardware computes it: quantized
twiddle factors, fixed-point multiplies, and a per-stage right-shift (the
``log2 N`` shift registers of Fig. 10) that prevents overflow at the cost of
one LSB of noise per stage.  RNNs are "very sensitive to accumulation of
imprecisions" (paper Sec. I); this model lets the reproduction measure that
accumulation instead of assuming it.

Used by the quantization ablation to validate the paper's 12-bit choice at
the datapath level, not just at the weight-storage level.

Hot-path note: the twiddle table, the bit-reversal permutation, and the
per-stage twiddle gathers depend only on ``(size, bits, twiddle_bits)`` —
the hardware bakes them into ROMs once.  :class:`FFTPlan` mirrors that:
plans are memoized process-wide so repeated ``forward()`` calls (the
emulator's and the ablation sweeps' common case) pay for table construction
exactly once.  Planned and cold transforms are byte-identical by
construction — a plan only caches arrays the unplanned code would rebuild.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

import math
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.config import is_power_of_two
from repro.errors import QuantizationError
from repro.hw.fixed_point import FixedPointFormat, fit_frac_bits_from_stats

__all__ = [
    "FixedPointFFT",
    "FFTPlan",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "fixed_point_circulant_matvec",
]


@dataclass(frozen=True)
class FFTPlan:
    """Precomputed constants for one ``(size, bits, twiddle_bits)`` datapath.

    Everything here is input-independent: the quantized twiddle ROM, the
    bit-reversal index vector, and the per-stage twiddle gathers the
    butterfly network wires up.
    """

    size: int
    bits: int
    twiddle_bits: int
    twiddles: np.ndarray  # (size // 2,) complex, quantized
    bit_reversal: np.ndarray  # (size,) int
    stage_twiddles: tuple[np.ndarray, ...] = field(repr=False)

    @property
    def stages(self) -> int:
        return int(math.log2(self.size))


_PLAN_CACHE: dict[tuple[int, int, int], FFTPlan] = {}
_PLAN_LOCK = threading.Lock()
_PLAN_STATS = {"hits": 0, "misses": 0}


def _build_plan(size: int, bits: int, twiddle_bits: int) -> FFTPlan:
    stages = int(math.log2(size))
    # Twiddles live in [-1, 1]; give every bit beyond the sign to fraction.
    fmt = FixedPointFormat(twiddle_bits, twiddle_bits - 2)
    k = np.arange(size // 2, dtype=np.int64)
    exact = np.exp(-2j * np.pi * k / size)
    twiddles = fmt.quantize(exact.real) + 1j * fmt.quantize(exact.imag)
    twiddles.setflags(write=False)

    indices = np.arange(size, dtype=np.int64)
    reversed_indices = np.zeros(size, dtype=np.int64)
    for bit in range(stages):
        reversed_indices |= ((indices >> bit) & 1) << (stages - 1 - bit)
    reversed_indices.setflags(write=False)

    stage_twiddles = []
    half = 1
    for _stage in range(stages):
        stride = half * 2
        w = twiddles[np.arange(half, dtype=np.int64) * (size // stride)]
        w.setflags(write=False)
        stage_twiddles.append(w)
        half = stride
    return FFTPlan(
        size=size,
        bits=bits,
        twiddle_bits=twiddle_bits,
        twiddles=twiddles,
        bit_reversal=reversed_indices,
        stage_twiddles=tuple(stage_twiddles),
    )


def get_plan(size: int, bits: int, twiddle_bits: int | None = None) -> FFTPlan:
    """The memoized plan for one datapath configuration (thread-safe)."""
    key = (size, bits, twiddle_bits if twiddle_bits is not None else bits)
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_STATS["hits"] += 1
            return plan
        _PLAN_STATS["misses"] += 1
    # Build outside the lock: plans are deterministic, so a rare duplicate
    # build is wasted work, never an inconsistency.
    plan = _build_plan(size, key[1], key[2])
    with _PLAN_LOCK:
        return _PLAN_CACHE.setdefault(key, plan)


def clear_plan_cache() -> None:
    """Drop every memoized plan (benchmarks use this to time cold builds)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _PLAN_STATS["hits"] = 0
        _PLAN_STATS["misses"] = 0


def plan_cache_info() -> dict[str, int]:
    """Cache counters: ``{"plans": ..., "hits": ..., "misses": ...}``."""
    with _PLAN_LOCK:
        return {"plans": len(_PLAN_CACHE), **_PLAN_STATS}


@dataclass(frozen=True)
class FixedPointFFT:
    """Radix-2 DIT FFT of ``size`` points at ``bits``-bit fixed point.

    ``twiddle_bits`` defaults to the data width.  Each butterfly stage scales
    by 1/2 (right shift) so the result is ``FFT(x) / size``; the IFFT stage
    compensates, matching how streaming FPGA FFTs manage dynamic range.
    """

    size: int
    bits: int = 12
    twiddle_bits: int | None = None

    def __post_init__(self) -> None:
        if self.size < 2 or not is_power_of_two(self.size):
            raise QuantizationError(f"FFT size must be a power of 2: {self.size}")
        if not 4 <= self.bits <= 32:
            raise QuantizationError(f"unsupported data width {self.bits}")

    @property
    def stages(self) -> int:
        return int(math.log2(self.size))

    @property
    def plan(self) -> FFTPlan:
        return get_plan(self.size, self.bits, self.twiddle_bits)

    def _twiddle_format(self) -> FixedPointFormat:
        bits = self.twiddle_bits if self.twiddle_bits is not None else self.bits
        return FixedPointFormat(bits, bits - 2)

    def _twiddles(self) -> np.ndarray:
        """Quantized W_N^k for k in [0, N/2) (from the plan ROM)."""
        return self.plan.twiddles

    def _data_format(self, peak: float) -> FixedPointFormat:
        peak = max(peak, 1e-12)
        return FixedPointFormat(
            self.bits, fit_frac_bits_from_stats(peak, peak, self.bits)
        )

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point FFT; returns complex spectrum scaled by 1/size.

        The input is quantized to the data format, then each stage performs
        quantized butterflies followed by the overflow-preventing 1/2 scale.
        Accepts any batch shape ``(..., size)``; each trailing vector is
        transformed under one shared data format fit to the whole batch.

        The per-register quantization runs as fused clip-round-scale passes
        over the complex data viewed as interleaved floats — byte-identical
        to projecting real and imaginary parts through
        :meth:`FixedPointFormat.quantize` separately, without the int64
        round-trips and temporaries.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.size:
            raise QuantizationError(
                f"expected last dim {self.size}, got {x.shape}"
            )
        fmt = self._data_format(float(np.max(np.abs(x))) if x.size else 1.0)
        plan = self.plan
        scale, min_int, max_int = fmt.scale, fmt.min_int, fmt.max_int

        def requantize(values: np.ndarray) -> np.ndarray:
            """In-place grid projection of a fresh contiguous complex array."""
            parts = values.view(np.float64)
            parts *= scale
            np.rint(parts, out=parts)
            np.clip(parts, min_int, max_int, out=parts)
            parts /= scale
            return values

        data = np.empty(x.shape, dtype=np.float64)
        np.multiply(x, scale, out=data)
        np.rint(data, out=data)
        np.clip(data, min_int, max_int, out=data)
        data /= scale
        data = data[..., plan.bit_reversal].astype(np.complex128)
        half = 1
        for w in plan.stage_twiddles:
            stride = half * 2
            data = data.reshape(*data.shape[:-1], self.size // stride, stride)
            top = data[..., :half]
            # Quantize the product (the multiplier output register)...
            bottom = requantize(data[..., half:] * w)
            # ...butterfly, then the 1/2 right-shift (Fig. 10's shifters).
            data = requantize(
                np.concatenate([top + bottom, top - bottom], axis=-1) * 0.5
            )
            data = data.reshape(*data.shape[:-2], self.size)
            half = stride
        return data

    # ------------------------------------------------------------------
    def max_error_vs_float(self, trials: int = 50, seed: int = 0) -> float:
        """Worst observed spectrum error against the float FFT (scaled).

        Runs every trial through one batched :meth:`forward` (the trial
        vectors share a data format, as a streaming batch would on the
        hardware) instead of a Python loop over per-trial transforms.
        """
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, size=(trials, self.size))
        exact = np.fft.fft(x, axis=-1) / self.size
        measured = self.forward(x)
        return float(np.max(np.abs(exact - measured)))


#: Memoized quantized weight spectra — the BRAM image of Sec. V-A1: the
#: hardware transforms each defining vector once at load time, so repeat
#: products against one weight vector should not re-run its forward FFT.
_SPECTRUM_CACHE: dict[tuple, np.ndarray] = {}
_SPECTRUM_CACHE_MAX = 256


def _weight_spectrum(fft: FixedPointFFT, weight_vector: np.ndarray) -> np.ndarray:
    key = (
        fft.size,
        fft.bits,
        fft.twiddle_bits,
        weight_vector.shape,
        weight_vector.tobytes(),
    )
    with _PLAN_LOCK:
        spectrum = _SPECTRUM_CACHE.get(key)
    if spectrum is None:
        spectrum = fft.forward(weight_vector)
        spectrum.setflags(write=False)
        with _PLAN_LOCK:
            while len(_SPECTRUM_CACHE) >= _SPECTRUM_CACHE_MAX:
                _SPECTRUM_CACHE.pop(next(iter(_SPECTRUM_CACHE)))
            _SPECTRUM_CACHE.setdefault(key, spectrum)
    return spectrum


def fixed_point_circulant_matvec(
    weight_vector: np.ndarray,
    x: np.ndarray,
    bits: int = 12,
) -> np.ndarray:
    """Circulant product through the fixed-point datapath (Eqn. 4 in HW).

    ``IFFT(FFT(w) ∘ FFT(x))`` with both transforms and the element-wise
    product quantized.  The forward FFT's 1/size scaling and the product's
    extra 1/size cancel against the inverse transform computed as
    ``conj(FFT(conj(·)))`` — the PE's conjugation trick (Fig. 10).  Repeat
    calls reuse the memoized :class:`FFTPlan` *and* the quantized weight
    spectrum (the hardware transforms weights once into BRAM; see
    ``_weight_spectrum``) — cached and cold calls are byte-identical.
    """
    weight_vector = np.asarray(weight_vector, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    size = weight_vector.shape[-1]
    fft = FixedPointFFT(size, bits)
    w_spec = _weight_spectrum(fft, weight_vector)  # FFT(w)/N
    x_spec = fft.forward(x)  # FFT(x)/N
    product = w_spec * x_spec  # FFT(w)FFT(x)/N^2
    parts = product.view(np.float64)
    fmt = FixedPointFormat(
        bits,
        fit_frac_bits_from_stats(
            float(np.max(np.abs(parts))) if parts.size else 0.0, 0.0, bits
        ),
    )
    parts *= fmt.scale
    np.rint(parts, out=parts)
    np.clip(parts, fmt.min_int, fmt.max_int, out=parts)
    parts /= fmt.scale
    # IFFT via conjugation: ifft(y) = conj(fft(conj(y)))/N; our fft already
    # divides by N, so the result is conj(fft(conj(y))) x N^0 ... combined
    # with the two 1/N factors above this recovers circ(w) @ x exactly.
    inverse = np.conj(_fixed_fft_complex(np.conj(product), fft))
    return inverse.real * size * size


def _fixed_fft_complex(values: np.ndarray, fft: FixedPointFFT) -> np.ndarray:
    """Apply the fixed-point FFT to complex input (real and imag datapaths)."""
    real_part = fft.forward(values.real)
    imag_part = fft.forward(values.imag)
    return real_part + 1j * imag_part
