"""Bit-accurate fixed-point radix-2 FFT (the PE's actual datapath).

The float FFT in :mod:`repro.core.circulant` computes *what* the hardware
computes; this module computes it *how* the hardware computes it: quantized
twiddle factors, fixed-point multiplies, and a per-stage right-shift (the
``log2 N`` shift registers of Fig. 10) that prevents overflow at the cost of
one LSB of noise per stage.  RNNs are "very sensitive to accumulation of
imprecisions" (paper Sec. I); this model lets the reproduction measure that
accumulation instead of assuming it.

Used by the quantization ablation to validate the paper's 12-bit choice at
the datapath level, not just at the weight-storage level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import is_power_of_two
from repro.errors import QuantizationError
from repro.hw.fixed_point import FixedPointFormat

__all__ = ["FixedPointFFT", "fixed_point_circulant_matvec"]


@dataclass(frozen=True)
class FixedPointFFT:
    """Radix-2 DIT FFT of ``size`` points at ``bits``-bit fixed point.

    ``twiddle_bits`` defaults to the data width.  Each butterfly stage scales
    by 1/2 (right shift) so the result is ``FFT(x) / size``; the IFFT stage
    compensates, matching how streaming FPGA FFTs manage dynamic range.
    """

    size: int
    bits: int = 12
    twiddle_bits: int | None = None

    def __post_init__(self) -> None:
        if self.size < 2 or not is_power_of_two(self.size):
            raise QuantizationError(f"FFT size must be a power of 2: {self.size}")
        if not 4 <= self.bits <= 32:
            raise QuantizationError(f"unsupported data width {self.bits}")

    @property
    def stages(self) -> int:
        return int(math.log2(self.size))

    def _twiddle_format(self) -> FixedPointFormat:
        bits = self.twiddle_bits if self.twiddle_bits is not None else self.bits
        # Twiddles live in [-1, 1]; give every bit beyond the sign to fraction.
        return FixedPointFormat(bits, bits - 2)

    def _twiddles(self) -> np.ndarray:
        """Quantized W_N^k for k in [0, N/2)."""
        k = np.arange(self.size // 2)
        exact = np.exp(-2j * np.pi * k / self.size)
        fmt = self._twiddle_format()
        return fmt.quantize(exact.real) + 1j * fmt.quantize(exact.imag)

    def _data_format(self, peak: float) -> FixedPointFormat:
        return FixedPointFormat.fit(np.array([max(peak, 1e-12)]), self.bits)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point FFT; returns complex spectrum scaled by 1/size.

        The input is quantized to the data format, then each stage performs
        quantized butterflies followed by the overflow-preventing 1/2 scale.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.size:
            raise QuantizationError(
                f"expected last dim {self.size}, got {x.shape}"
            )
        fmt = self._data_format(float(np.max(np.abs(x))) if x.size else 1.0)
        twiddles = self._twiddles()

        # Bit-reversal permutation.
        indices = np.arange(self.size)
        reversed_indices = np.zeros(self.size, dtype=int)
        for bit in range(self.stages):
            reversed_indices |= ((indices >> bit) & 1) << (self.stages - 1 - bit)
        data = fmt.quantize(x)[..., reversed_indices].astype(np.complex128)

        half = 1
        for _stage in range(self.stages):
            stride = half * 2
            k = np.arange(half) * (self.size // stride)
            w = twiddles[k]
            data = data.reshape(*data.shape[:-1], self.size // stride, stride)
            top = data[..., :half]
            bottom = data[..., half:] * w
            # Quantize the product (the multiplier output register)...
            bottom = self._requantize(bottom, fmt)
            # ...butterfly, then the 1/2 right-shift (Fig. 10's shifters).
            data = np.concatenate([top + bottom, top - bottom], axis=-1) * 0.5
            data = self._requantize(data, fmt)
            data = data.reshape(*data.shape[:-2], self.size)
            half = stride
        return data

    def _requantize(self, values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
        return fmt.quantize(values.real) + 1j * fmt.quantize(values.imag)

    # ------------------------------------------------------------------
    def max_error_vs_float(self, trials: int = 50, seed: int = 0) -> float:
        """Worst observed spectrum error against the float FFT (scaled)."""
        rng = np.random.default_rng(seed)
        worst = 0.0
        for _ in range(trials):
            x = rng.uniform(-1, 1, size=self.size)
            exact = np.fft.fft(x) / self.size
            measured = self.forward(x)
            worst = max(worst, float(np.max(np.abs(exact - measured))))
        return worst


def fixed_point_circulant_matvec(
    weight_vector: np.ndarray,
    x: np.ndarray,
    bits: int = 12,
) -> np.ndarray:
    """Circulant product through the fixed-point datapath (Eqn. 4 in HW).

    ``IFFT(FFT(w) ∘ FFT(x))`` with both transforms and the element-wise
    product quantized.  The forward FFT's 1/size scaling and the product's
    extra 1/size cancel against the inverse transform computed as
    ``conj(FFT(conj(·)))`` — the PE's conjugation trick (Fig. 10).
    """
    weight_vector = np.asarray(weight_vector, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    size = weight_vector.shape[-1]
    fft = FixedPointFFT(size, bits)
    w_spec = fft.forward(weight_vector)  # FFT(w)/N
    x_spec = fft.forward(x)  # FFT(x)/N
    product = w_spec * x_spec  # FFT(w)FFT(x)/N^2
    product_fmt = FixedPointFormat.fit(
        np.concatenate([np.abs(product.real).ravel(), np.abs(product.imag).ravel()]),
        bits,
    )
    product = product_fmt.quantize(product.real) + 1j * product_fmt.quantize(
        product.imag
    )
    # IFFT via conjugation: ifft(y) = conj(fft(conj(y)))/N; our fft already
    # divides by N, so the result is conj(fft(conj(y))) x N^0 ... combined
    # with the two 1/N factors above this recovers circ(w) @ x exactly.
    inverse = np.conj(_fixed_fft_complex(np.conj(product), fft))
    return inverse.real * size * size


def _fixed_fft_complex(values: np.ndarray, fft: FixedPointFFT) -> np.ndarray:
    """Apply the fixed-point FFT to complex input (real and imag datapaths)."""
    real_part = fft.forward(values.real)
    imag_part = fft.forward(values.imag)
    return real_part + 1j * imag_part
