"""Command-line interface: a thin argparse skin over :mod:`repro.api`.

Every spec-taking subcommand builds one fluent :class:`repro.api.Design`
from the flags and calls the matching facade verb, so the CLI, the
examples, and programmatic callers share a single implementation (and the
``price``/``codegen`` paths share the process-wide build cache).

Subcommands map onto the paper's workflow:

* ``fit-check``  — Phase I Step One: BRAM sanity check for a spec/platform.
* ``bounds``     — Phase I block-size bounds (BRAM lower, Fig. 8 upper).
* ``price``      — Phase II hardware sizing: latency / FPS / power report.
* ``codegen``    — run the HLS flow and write the generated C source.
* ``explore``    — parallel design-space sweep with Pareto/top-k reports.
* ``bench``      — run the performance suites, emit ``BENCH_*.json``.
* ``table3``     — regenerate the paper's headline comparison table.
* ``fig8``       — print the multiplication-count curves.
* ``lint``       — static analysis of the project invariants (REP001-REP006).

Examples::

    repro price --cell lstm --layers 1024 --block 8 \\
        --projection 512 --peephole --platform XCKU060
    repro codegen --cell gru --layers 1024 --block 16 -o cu.c
    repro explore --layers 1024 --peephole --projection 512 \\
        --sweep-blocks 4 8 16 --sweep-bits 8 12 16 --mode thread
"""

from __future__ import annotations

import argparse
import sys

from repro.api import CELL_REGISTRY, Design
from repro.errors import ReproError

__all__ = ["build_parser", "main"]


def _design_from_args(args: argparse.Namespace) -> Design:
    design = Design.cell(args.cell, *args.layers)
    if args.block is not None:
        design = design.blocks(args.block)
    return (
        design.io(args.input_size, args.output_size)
        .io_block(args.io_block)
        .peephole(args.peephole)
        .project(args.projection)
        .on(args.platform)
        .bits(args.bits)
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cell", choices=CELL_REGISTRY.names(), default="lstm",
        help="registered RNN cell type (default: lstm)",
    )
    parser.add_argument(
        "--layers", type=int, nargs="+", default=[1024],
        help="hidden sizes, one per layer (default: 1024)",
    )
    parser.add_argument("--block", type=int, default=None,
                        help="uniform circulant block size (default: dense)")
    parser.add_argument("--io-block", type=int, default=None,
                        help="coarser block size for input/output matrices")
    parser.add_argument("--input-size", type=int, default=153)
    parser.add_argument("--output-size", type=int, default=39)
    parser.add_argument("--projection", type=int, default=None)
    parser.add_argument("--peephole", action="store_true")
    parser.add_argument(
        "--platform", default="XCKU060",
        help="registered FPGA platform or alias (default: XCKU060)",
    )
    parser.add_argument("--bits", type=int, default=12)


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.runtime import BACKEND_REGISTRY

    parser.add_argument(
        "--backend", choices=BACKEND_REGISTRY.names(), default="fixed",
        help="inference backend (default: fixed — the CU emulation)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="saved model checkpoint to compile; default: a "
             "deterministically-initialized model from the spec flags",
    )
    parser.add_argument("--frames", type=int, default=64,
                        help="frames per stream (default: 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="feature-synthesis seed (default: 0)")


def _cmd_fit_check(args: argparse.Namespace) -> int:
    report = _design_from_args(args).fit_check()
    print(report.describe())
    return 0 if report.fits else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    report = _design_from_args(args).bounds()
    if not report.feasible:
        print(report.describe(), file=sys.stderr)
        return 1
    print(report.describe())
    return 0


def _cmd_price(args: argparse.Namespace) -> int:
    design = _design_from_args(args)
    priced = design.price()
    utilization = ", ".join(
        f"{k.upper()} {100 * v:.1f}%" for k, v in priced.utilization.items()
    )
    print(f"{priced.spec.describe()} on {args.platform} "
          f"@ {priced.accel.clock_mhz:.0f} MHz:")
    print(f"  {priced.num_pes} PEs in {priced.num_cus} CUs "
          f"({priced.pes_per_cu} per CU)")
    print(f"  latency {priced.latency_us:.2f} us/frame, {priced.fps:,.0f} FPS")
    print(f"  power {priced.power_watts:.1f} W "
          f"({priced.energy_efficiency:,.0f} FPS/W)")
    print(f"  utilization: {utilization}")
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    result = _design_from_args(args).codegen(args.output)
    summary = result.summary()
    print(f"wrote {args.output} ({summary['code_lines']:.0f} lines)")
    print(f"  {summary['num_ops']:.0f} ops in {summary['num_stages']:.0f} "
          f"CGPipe stages, {summary['frame_cycles']:.0f} cycles/frame "
          f"({summary['latency_us']:.2f} us)")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.api import PLATFORM_REGISTRY, DiskCache, Engine, Sweep

    base = _design_from_args(args)
    platforms = args.sweep_platforms or list(PLATFORM_REGISTRY.names())
    sweep = Sweep(base).over(
        blocks=args.sweep_blocks,
        bits=args.sweep_bits,
        platform=platforms,
    )
    if args.random is not None:
        sweep = sweep.random(args.random, seed=args.seed)

    engine = None
    if not args.no_cache:
        # Engine itself honours the REPRO_NO_CACHE kill switch.
        engine = Engine(disk=DiskCache(root=args.cache_dir, namespace="engine"))
    result = sweep.run(mode=args.mode, workers=args.workers, engine=engine)

    if args.format == "json":
        text = result.to_json()
    elif args.format == "csv":
        text = result.to_csv()
    else:
        objectives = [o for o in args.objectives.split(",") if o]
        text = result.describe(args.top, stats=True)
        if objectives != ["per_proxy", "latency_us"]:
            front = result.pareto(objectives)
            if front:
                text += (
                    f"\n  Pareto frontier ({' vs '.join(objectives)}): "
                    + ", ".join(f"[{p.index}] {p.label()}" for p in front)
                )
    if args.output:
        from pathlib import Path

        if not text.endswith("\n"):
            text += "\n"
        Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(result)} candidates)")
    else:
        print(text)
    return 0 if result.ok() else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import benchmark_names, run_benchmarks, write_result

    if args.compare:
        from repro.bench.compare import compare_files

        old_path, new_path = args.compare
        thresholds = ({} if args.threshold is None
                      else {"timing_threshold": args.threshold})
        report = compare_files(old_path, new_path, **thresholds)
        print(report.format())
        return 0 if report.ok else 1
    if args.list:
        for name in benchmark_names():
            print(name)
        return 0
    results = run_benchmarks(args.only or None, quick=args.quick)
    for result in results:
        print(result.describe())
        if not args.no_json:
            path = write_result(result, args.out_dir)
            print(f"  wrote {path}")
    return 0


def _compiled_from_args(args: argparse.Namespace):
    """Build a :class:`repro.runtime.CompiledModel` from run/serve flags."""
    from repro import runtime

    if args.checkpoint:
        from pathlib import Path

        from repro.errors import ConfigError
        from repro.nn.serialization import load_model

        if not Path(args.checkpoint).is_file():
            raise ConfigError(f"checkpoint {args.checkpoint} does not exist")
        source = load_model(args.checkpoint)
    else:
        source = _design_from_args(args)
    return runtime.compile(source, backend=args.backend, weight_bits=args.bits)


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    compiled = _compiled_from_args(args)
    print(compiled.describe())
    rng = np.random.default_rng(args.seed)
    features = rng.standard_normal(
        (args.frames, args.batch, compiled.input_size)
    )
    start = time.perf_counter()
    if args.stream:
        session = compiled.session(batch_size=args.batch)
        logits = np.stack([session.push(frame) for frame in features])
        mode = "streamed (frame-by-frame session)"
    else:
        logits = compiled.run(features)
        mode = "batched run"
    elapsed = time.perf_counter() - start
    total = args.frames * args.batch
    print(
        f"{mode}: {args.frames} frames x batch {args.batch} -> "
        f"logits {logits.shape}"
    )
    print(
        f"  {elapsed * 1e3:.2f} ms total, "
        f"{elapsed / args.frames * 1e3:.3f} ms/frame, "
        f"{total / elapsed:,.0f} frames/s"
    )
    print(f"  logits checksum {float(np.sum(logits)):+.6e}")
    return 0


def _selftest_expected(compiled, streams):
    """Conformance check + per-stream standalone baselines, or None on failure.

    A conformance violation is a serving-blocker, so it must exit nonzero
    with a message that says what is broken and what to do about it — not
    a generic traceback-shaped error.
    """
    import sys

    import numpy as np

    from repro.runtime import ConformanceError, check_conformance

    try:
        check_conformance(
            compiled.executor(),
            np.ascontiguousarray(streams.transpose(1, 0, 2)),
        )
    except ConformanceError as error:
        print(
            f"SELFTEST FAILED: backend {compiled.backend!r} violates the "
            f"serving conformance contract: {error}\n"
            "  this artifact must not be served; fix the backend's "
            "step/step_rows/run implementation (see docs/runtime.md, 'The "
            "conformance contract') and re-run repro serve --selftest",
            file=sys.stderr,
        )
        return None
    return [compiled.run(s[:, None, :])[:, 0] for s in streams]


def _lm_fixture_artifact(backend: str, bits: int):
    """The built-in selftest char-LM: trained on the demo corpus, seeded.

    Every ``--lm`` selftest re-derives this artifact deterministically, so
    the wire byte-gate has a known-good in-process baseline without any
    checkpoint file.  Returns ``(compiled, vocab)``.
    """
    from repro import runtime
    from repro.lm import (
        DEMO_TEXT,
        CharVocab,
        LMTrainConfig,
        build_char_lm,
        train_char_lm,
    )

    vocab = CharVocab.from_text(DEMO_TEXT)
    model = build_char_lm(
        vocab.size, layer_sizes=(32,), cell_type="gru",
        block_sizes=(4,), seed=0,
    )
    train_char_lm(model, vocab.encode(DEMO_TEXT), LMTrainConfig(epochs=2))
    compiled = runtime.compile(
        model, backend=backend, weight_bits=bits,
        workload="lm", vocab=vocab,
    )
    return compiled, vocab


def _lm_selftest_soak(host, port, compiled, vocab, args, disrupt=None):
    """Drive seeded generation + scoring sessions over the wire.

    Each client runs generate → score → generate on ONE session, so the
    second generation continues from state the first two ops built; the
    baseline is the same op sequence on an in-process session.  ``disrupt``
    (kill a backend, drain a node) fires once every client has finished
    its first two ops, so the final generation always crosses the fault.
    Returns ``(mismatched, recoveries, errors, elapsed)``.
    """
    import threading
    import time

    from repro.lm import DEMO_TEXT
    from repro.runtime import ConformanceError, Session, check_conformance
    from repro.runtime.net import Client

    import numpy as np

    try:
        probe = np.eye(compiled.input_size)[: min(8, compiled.input_size)]
        check_conformance(
            compiled.executor(),
            np.ascontiguousarray(probe[:, None, :]),
            workload=compiled.workload_info,
        )
    except ConformanceError as error:
        print(
            f"SELFTEST FAILED: backend {compiled.backend!r} violates the "
            f"serving conformance contract: {error}",
            file=sys.stderr,
        )
        return None, None, [str(error)], 0.0

    corpus = vocab.encode(DEMO_TEXT)
    steps = max(4, args.frames // 2)
    plans = []
    for index in range(args.sessions):
        offset = (3 * index) % max(1, corpus.size - 4)
        plans.append({
            "prompt": [int(t) for t in corpus[offset:offset + 4]],
            "score": [int(t) for t in corpus[:24]],
            "seeds": (101 + index, 257 + index),
        })

    def run_ops(session, plan):
        first = session.generate(
            plan["prompt"], steps=steps,
            temperature=0.8, top_k=5, seed=plan["seeds"][0],
        )
        logprobs = session.score(plan["score"])
        second = session.generate(
            [first[-1]], steps=steps,
            temperature=0.8, top_k=5, seed=plan["seeds"][1],
        )
        return (tuple(first), logprobs.tobytes(), tuple(second))

    expected = [run_ops(Session(compiled), plan) for plan in plans]

    outputs = [None] * args.sessions
    recoveries = [0] * args.sessions
    errors: list = []
    # every client finishes generate+score before the disruption fires,
    # so the second generation always rides through the fault window
    midpoint = threading.Barrier(args.sessions + 1, timeout=120)

    def client_thread(index: int) -> None:
        plan = plans[index]
        try:
            with Client(host, port, protocol=args.wire,
                        timeout=120) as client:
                session = client.session(f"lm-selftest-{index}",
                                         reattach=True)
                first = session.generate(
                    plan["prompt"], steps=steps,
                    temperature=0.8, top_k=5, seed=plan["seeds"][0],
                )
                logprobs = session.score(plan["score"])
                midpoint.wait()
                second = session.generate(
                    [first[-1]], steps=steps,
                    temperature=0.8, top_k=5, seed=plan["seeds"][1],
                )
                outputs[index] = (
                    tuple(first), logprobs.tobytes(), tuple(second)
                )
                recoveries[index] = session.recoveries
                session.close()
        except Exception as error:  # noqa: BLE001 — reported below
            errors.append(f"lm session {index}: {error}")
            try:
                midpoint.abort()
            except Exception:  # repro: ignore[REP005] barrier may already be broken; the error above is the story
                pass

    threads = [
        threading.Thread(target=client_thread, args=(index,))
        for index in range(args.sessions)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    try:
        midpoint.wait()
    except threading.BrokenBarrierError:
        pass
    if disrupt is not None and not errors:
        disrupt()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    mismatched = [
        index for index in range(args.sessions)
        if outputs[index] != expected[index]
    ]
    return mismatched, recoveries, errors, elapsed


def _cmd_serve_net(args: argparse.Namespace) -> int:
    """Network serving mode: repro serve --port ... [--selftest]."""
    import threading
    import time

    import numpy as np

    from repro.runtime.net import Client, NetServer

    if args.chaos and not args.selftest:
        print("--chaos only makes sense with --selftest", file=sys.stderr)
        return 2
    if args.lm and not args.selftest:
        print("--lm is a selftest mode (add --selftest)", file=sys.stderr)
        return 2
    faults = list(args.fault or [])
    if args.chaos and not faults:
        # Default chaos: every worker SIGKILLs itself once, staggered so
        # the restarts do not all land in the same instant.
        faults = [
            f"kill:worker={index},after={4 + 3 * index}"
            for index in range(args.workers)
        ]
    vocab = None
    if args.lm:
        compiled, vocab = _lm_fixture_artifact(args.backend, args.bits)
    else:
        compiled = _compiled_from_args(args)
    print(compiled.describe())
    server = NetServer(
        compiled,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay_s=args.delay_ms / 1e3,
        queue_limit=args.queue_limit,
        transport=args.transport,
        max_protocol=args.wire,
        spawn_timeout_s=args.spawn_timeout,
        restart_budget=args.restart_budget,
        heartbeat_timeout_s=args.heartbeat_timeout or None,
        session_ttl_s=args.session_ttl,
        session_cap=args.session_cap,
        faults=faults or None,
        fault_log=args.fault_log,
    )
    server.start()
    host, port = server.address
    print(
        f"serving on {host}:{port} with {args.workers} worker process(es) "
        f"(max_batch {args.max_batch}, queue_limit {args.queue_limit}, "
        f"transport {server.transport}, wire <= v{server.max_protocol})"
    )
    if faults:
        print(f"fault injection armed: {', '.join(faults)}")

    if not args.selftest:
        print("press Ctrl-C (or send SIGTERM) to drain and stop")
        try:
            server.serve_forever()
        finally:
            server.close()
        print("drained; bye")
        return 0

    try:
        if args.lm:
            mismatched, recoveries, errors, elapsed = _lm_selftest_soak(
                host, port, compiled, vocab, args
            )
            if errors:
                print(
                    "SELFTEST FAILED: client error(s): " + "; ".join(errors),
                    file=sys.stderr,
                )
                return 1
            if mismatched:
                print(
                    "SELFTEST FAILED: generation served over the wire "
                    f"differs from in-process sessions on {mismatched}",
                    file=sys.stderr,
                )
                return 1
            print(
                f"lm selftest: {args.sessions} generation sessions "
                f"(generate → score → generate) byte-identical over the "
                f"wire in {elapsed * 1e3:.1f} ms (wire v{args.wire}, "
                f"transport {server.transport})"
            )
            if args.chaos:
                with Client(host, port) as client:
                    health = client.health()
                kills = [event for event in server.events
                         if event["event"] == "worker_down"]
                if not kills or not health["restarts_total"]:
                    print(
                        "SELFTEST FAILED: chaos was armed but no worker "
                        "death and supervised restart were observed — the "
                        "faults never fired (lower after=)",
                        file=sys.stderr,
                    )
                    return 1
                if health["degraded"]:
                    print(
                        "SELFTEST FAILED: worker(s) degraded under chaos "
                        f"({health['degraded']})",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"chaos: {len(kills)} worker death(s), "
                    f"{health['restarts_total']} restart(s), "
                    f"{sum(recoveries)} session recovery(ies) — seeded "
                    "generation reproduced byte-identically through the "
                    "journal replay"
                )
            return 0
        rng = np.random.default_rng(args.seed)
        streams = rng.standard_normal(
            (args.sessions, args.frames, compiled.input_size)
        )
        expected = _selftest_expected(compiled, streams)
        if expected is None:
            return 1

        outputs: list = [None] * args.sessions
        recoveries = [0] * args.sessions
        errors: list = []

        def client_thread(index: int) -> None:
            try:
                with Client(host, port, protocol=args.wire) as client:
                    session = client.session(f"selftest-{index}")
                    outputs[index] = session.run(streams[index], window=8)
                    recoveries[index] = session.recoveries
            except Exception as error:  # noqa: BLE001 — reported below
                errors.append(f"stream {index}: {error}")

        threads = [
            threading.Thread(target=client_thread, args=(index,))
            for index in range(args.sessions)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        if errors:
            print(
                "SELFTEST FAILED: client error(s): " + "; ".join(errors),
                file=sys.stderr,
            )
            return 1
        mismatched = [
            index
            for index in range(args.sessions)
            if not np.array_equal(outputs[index], expected[index])
        ]
        if mismatched:
            print(
                f"SELFTEST FAILED: logits served over the wire differ from "
                f"standalone sessions on stream(s) {mismatched}",
                file=sys.stderr,
            )
            return 1
        total = args.sessions * args.frames
        print(
            f"served {total} frames to {args.sessions} net clients across "
            f"{args.workers} workers in {elapsed * 1e3:.1f} ms "
            f"({total / elapsed:,.0f} frames/s; wire v{args.wire}, "
            f"transport {server.transport})"
        )
        with Client(host, port) as client:
            for entry in client.stats():
                if not entry.get("ok", True):
                    print(f"  worker {entry.get('worker')}: "
                          f"{entry.get('error')}")
                    continue
                stats = entry["stats"]
                print(
                    f"  worker {entry['worker']}: {stats['frames']} frames "
                    f"in {stats['batches']} batches "
                    f"(mean {stats['mean_coalesced']:.2f} rows)"
                )
            health = client.health()
        if args.chaos:
            kills = [event for event in server.events
                     if event["event"] == "worker_down"]
            print(
                f"chaos: {len(kills)} worker death(s), "
                f"{health['restarts_total']} restart(s), "
                f"{sum(recoveries)} client recovery(ies), "
                f"degraded workers: {health['degraded'] or 'none'}"
            )
            if not kills or not health["restarts_total"]:
                print(
                    "SELFTEST FAILED: chaos was armed but no worker death "
                    "and supervised restart were observed — the faults "
                    "never fired (raise --frames or lower after=)",
                    file=sys.stderr,
                )
                return 1
            if health["degraded"]:
                print(
                    "SELFTEST FAILED: worker(s) degraded under chaos "
                    f"({health['degraded']}); the restart budget was "
                    "exhausted instead of the fleet healing",
                    file=sys.stderr,
                )
                return 1
            print(
                "chaos selftest ok: every stream byte-identical through "
                "worker deaths, supervised restarts, and client reattach"
            )
            return 0
        print(
            "selftest ok: every stream served over the wire byte-identical "
            "to its standalone session"
        )
        return 0
    finally:
        server.close()


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Cluster tier: front N NetServer backends behind one endpoint."""
    import threading
    import time

    import numpy as np

    from repro.runtime.cluster import BackendFleet, Gateway
    from repro.runtime.net import Client

    if (args.chaos or args.drain) and not args.selftest:
        print("--chaos/--drain only make sense with --selftest",
              file=sys.stderr)
        return 2
    if args.lm and not args.selftest:
        print("--lm is a selftest mode (add --selftest)", file=sys.stderr)
        return 2
    if args.backends and (args.selftest or args.chaos or args.drain):
        print(
            "--selftest needs locally spawned backends (drop --backends): "
            "the byte-identity baseline comes from the local model, and "
            "chaos kills local processes",
            file=sys.stderr,
        )
        return 2
    if args.chaos and args.drain and args.count < 3:
        print("--chaos with --drain removes two backends; use --count >= 3",
              file=sys.stderr)
        return 2

    fleet = None
    if args.backends:
        backend_keys = [part.strip() for part in args.backends.split(",")
                        if part.strip()]
    else:
        vocab = None
        if args.lm:
            compiled, vocab = _lm_fixture_artifact(args.backend, args.bits)
        else:
            compiled = _compiled_from_args(args)
        print(compiled.describe())
        fleet = BackendFleet(
            compiled,
            count=args.count,
            workers=args.workers,
            queue_limit=args.queue_limit,
            max_protocol=args.wire,
        )
        fleet.start()
        backend_keys = fleet.keys
        print(f"spawned {args.count} local backend(s): "
              + ", ".join(backend_keys))

    gateway = Gateway(
        backend_keys,
        host=args.host,
        port=args.port or 0,
        probe_interval_s=args.probe_interval,
        down_after=args.down_after,
    )
    try:
        gateway.start()
        host, port = gateway.address
        print(
            f"gateway on {host}:{port} fronting {len(backend_keys)} "
            f"backend(s) (consistent-hash ring, probe every "
            f"{args.probe_interval:g}s, down after {args.down_after} misses)"
        )

        if not args.selftest:
            print("press Ctrl-C (or send SIGTERM) to stop the gateway")
            gateway.serve_forever()
            print("gateway stopped; bye")
            return 0

        if args.lm:
            admin = Client(host, port, timeout=120)
            killed = drained = None

            def disrupt() -> None:
                nonlocal killed, drained
                if args.chaos:
                    killed = backend_keys[0]
                    fleet.kill(0)
                    print(f"chaos: SIGKILLed backend {killed} mid-soak")
                if args.drain:
                    drained = backend_keys[-1]
                    reply = admin.cluster_drain(drained, force=True,
                                                wait_s=60)
                    print(f"drain: rolled {drained} out mid-soak "
                          f"(drained={reply['drained']})")

            mismatched, recoveries, errors, elapsed = _lm_selftest_soak(
                host, port, compiled, vocab, args,
                disrupt=disrupt if (args.chaos or args.drain) else None,
            )
            if errors:
                print(
                    "SELFTEST FAILED: client error(s): " + "; ".join(errors),
                    file=sys.stderr,
                )
                return 1
            if mismatched:
                print(
                    "SELFTEST FAILED: generation served through the gateway "
                    f"differs from in-process sessions on {mismatched}",
                    file=sys.stderr,
                )
                return 1
            health = admin.cluster_health()
            print(
                f"lm selftest: {args.sessions} generation sessions "
                f"(generate → score → generate) byte-identical through the "
                f"gateway in {elapsed * 1e3:.1f} ms (wire v{args.wire})"
            )
            for entry in health["backends"]:
                print(f"  backend {entry['backend']}: state "
                      f"{entry['state']}, {entry['sessions_placed']} "
                      "session(s) placed")
            events = [event["event"] for event in gateway.events]
            if args.chaos:
                states = {b["backend"]: b["state"]
                          for b in health["backends"]}
                if ("backend_down" not in events
                        or states.get(killed) != "down"):
                    print(
                        "SELFTEST FAILED: chaos was armed but the gateway "
                        f"never marked {killed} down (events: {events})",
                        file=sys.stderr,
                    )
                    return 1
                if not sum(recoveries):
                    print(
                        "SELFTEST FAILED: a backend died but no generation "
                        "session failed over — the kill landed after the "
                        "soak finished (raise --frames)",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"chaos ok: {sum(recoveries)} session failover(s) — "
                    "seeded generation replayed byte-identically onto the "
                    "surviving backend"
                )
            if args.drain:
                ring = health["ring"]["nodes"]
                if "backend_removed" not in events or drained in ring:
                    print(
                        f"SELFTEST FAILED: drain of {drained} never "
                        f"completed (ring: {ring}, events: {events})",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"drain ok: {drained} left the ring mid-soak, every "
                    "generation byte-identical"
                )
            admin.close()
            print(
                "gateway lm selftest ok: seeded generation and scoring "
                "served through the cluster tier byte-identical to "
                "in-process sessions"
            )
            return 0

        rng = np.random.default_rng(args.seed)
        streams = rng.standard_normal(
            (args.sessions, args.frames, compiled.input_size)
        )
        expected = _selftest_expected(compiled, streams)
        if expected is None:
            return 1

        half = args.frames // 2
        outputs: list = [None] * args.sessions
        recoveries = [0] * args.sessions
        errors: list = []
        # every client reaches `half` frames before the disruption fires,
        # so a kill/drain always lands mid-stream, never before or after
        midpoint = threading.Barrier(args.sessions + 1, timeout=120)

        def client_thread(index: int) -> None:
            try:
                with Client(host, port, protocol=args.wire,
                            timeout=120) as client:
                    session = client.session(f"gw-selftest-{index}",
                                             reattach=True)
                    rows = []
                    for t in range(half):
                        rows.append(session.push(streams[index][t]))
                    midpoint.wait()
                    for t in range(half, args.frames):
                        rows.append(session.push(streams[index][t]))
                    outputs[index] = np.stack(rows)
                    recoveries[index] = session.recoveries
                    session.close()
            except Exception as error:  # noqa: BLE001 — reported below
                errors.append(f"stream {index}: {error}")
                try:
                    midpoint.abort()
                except Exception:  # repro: ignore[REP005] barrier may already be broken; the error above is the story
                    pass

        threads = [
            threading.Thread(target=client_thread, args=(index,))
            for index in range(args.sessions)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        midpoint.wait()

        admin = Client(host, port, timeout=120)
        killed = drained = None
        if args.chaos:
            killed = backend_keys[0]
            fleet.kill(0)
            print(f"chaos: SIGKILLed backend {killed} mid-soak")
        if args.drain:
            drained = backend_keys[-1]
            reply = admin.cluster_drain(drained, force=True, wait_s=60)
            print(f"drain: rolled {drained} out mid-soak "
                  f"(drained={reply['drained']})")

        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        if errors:
            print("SELFTEST FAILED: client error(s): " + "; ".join(errors),
                  file=sys.stderr)
            return 1
        mismatched = [
            index for index in range(args.sessions)
            if not np.array_equal(outputs[index], expected[index])
        ]
        if mismatched:
            print(
                "SELFTEST FAILED: logits served through the gateway differ "
                f"from standalone sessions on stream(s) {mismatched}",
                file=sys.stderr,
            )
            return 1

        total = args.sessions * args.frames
        health = admin.cluster_health()
        print(
            f"served {total} frames to {args.sessions} net clients through "
            f"the gateway in {elapsed * 1e3:.1f} ms "
            f"({total / elapsed:,.0f} frames/s; wire v{args.wire})"
        )
        for entry in health["backends"]:
            print(f"  backend {entry['backend']}: state {entry['state']}, "
                  f"{entry['sessions_placed']} session(s) placed")
        admin.close()

        events = [event["event"] for event in gateway.events]
        if args.chaos:
            states = {b["backend"]: b["state"] for b in health["backends"]}
            if "backend_down" not in events or states.get(killed) != "down":
                print(
                    "SELFTEST FAILED: chaos was armed but the gateway never "
                    f"marked {killed} down (events: {events})",
                    file=sys.stderr,
                )
                return 1
            if not sum(recoveries):
                print(
                    "SELFTEST FAILED: a backend died but no client session "
                    "recovered — the kill landed after the soak finished "
                    "(raise --frames)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"chaos ok: {sum(recoveries)} session recovery(ies) across "
                "the killed backend, every stream byte-identical"
            )
        if args.drain:
            ring = health["ring"]["nodes"]
            if "backend_removed" not in events or drained in ring:
                print(
                    f"SELFTEST FAILED: drain of {drained} never completed "
                    f"(ring: {ring}, events: {events})",
                    file=sys.stderr,
                )
                return 1
            print(
                f"drain ok: {drained} left the ring mid-soak, every stream "
                "byte-identical"
            )
        print(
            "gateway selftest ok: every stream served through the cluster "
            "tier byte-identical to its standalone session"
        )
        return 0
    finally:
        gateway.close()
        if fleet is not None:
            fleet.close()


def _cmd_generate(args: argparse.Namespace) -> int:
    """Sample seeded text from a char-LM: train locally or dial a server."""
    from repro.errors import ReproError
    from repro.lm import CharVocab

    if args.steps < 1:
        print("--steps must be at least 1", file=sys.stderr)
        return 2

    if args.connect:
        from repro.runtime.net import Client

        host, sep, port_text = args.connect.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            print(f"--connect wants HOST:PORT, got {args.connect!r}",
                  file=sys.stderr)
            return 2
        try:
            with Client(host, int(port_text)) as client:
                if client.workload != "lm":
                    print(
                        f"server at {args.connect} serves workload "
                        f"{client.workload!r}, not a language model",
                        file=sys.stderr,
                    )
                    return 1
                if client.vocab_chars is None:
                    print(
                        f"server at {args.connect} has no vocabulary in its "
                        "hello; it cannot decode text prompts",
                        file=sys.stderr,
                    )
                    return 1
                vocab = CharVocab(client.vocab_chars)
                prompt_text = args.prompt or vocab.chars[0]
                prompt = vocab.encode(prompt_text)
                session = client.session(f"cli-generate-{args.seed}")
                tokens = session.generate(
                    prompt.tolist(), steps=args.steps,
                    temperature=args.temperature, top_k=args.top_k,
                    seed=args.seed,
                )
                session.close()
        except ReproError as error:
            print(f"generate failed: {error}", file=sys.stderr)
            return 1
        print(f"# {len(tokens)} tokens from {args.connect} "
              f"(seed {args.seed}, temperature {args.temperature:g}, "
              f"top_k {args.top_k})")
        print(prompt_text + vocab.decode(tokens))
        return 0

    from pathlib import Path

    from repro import runtime
    from repro.lm import DEMO_TEXT, LMTrainConfig, build_char_lm, train_char_lm

    if args.corpus:
        corpus_path = Path(args.corpus)
        if not corpus_path.is_file():
            print(f"corpus {args.corpus} does not exist", file=sys.stderr)
            return 2
        text = corpus_path.read_text(encoding="utf-8")
    else:
        text = DEMO_TEXT
    try:
        vocab = CharVocab.from_text(text)
        model = build_char_lm(
            vocab.size,
            layer_sizes=tuple(args.layers),
            cell_type=args.cell,
            block_sizes=(args.block,) * len(args.layers) if args.block else (),
            seed=args.train_seed,
        )
        history = train_char_lm(
            model, vocab.encode(text),
            LMTrainConfig(epochs=args.epochs, seed=args.train_seed),
        )
        compiled = runtime.compile(
            model, backend=args.backend, weight_bits=args.bits,
            workload="lm", vocab=vocab,
        )
        print(compiled.describe())
        print(
            f"trained {args.epochs} epoch(s) on {len(text)} chars "
            f"(vocab {vocab.size}): final loss {history.final_loss:.4f}, "
            f"{history.tokens_per_sec:,.0f} tokens/s"
        )
        prompt_text = args.prompt or text[:4]
        prompt = vocab.encode(prompt_text)
        tokens = runtime.Session(compiled).generate(
            prompt.tolist(), steps=args.steps,
            temperature=args.temperature, top_k=args.top_k, seed=args.seed,
        )
        print(f"# {len(tokens)} tokens (seed {args.seed}, temperature "
              f"{args.temperature:g}, top_k {args.top_k})")
        print(prompt_text + vocab.decode(tokens))
        if args.perplexity:
            perplexity = runtime.evaluate_perplexity(
                compiled, vocab.encode(text)
            )
            print(f"corpus perplexity: {perplexity:.4f} "
                  f"(backend {compiled.backend})")
    except ReproError as error:
        print(f"generate failed: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading
    import time

    import numpy as np

    if args.port is not None:
        return _cmd_serve_net(args)
    if args.lm:
        print("--lm needs network serving: add --port (and --selftest)",
              file=sys.stderr)
        return 2

    compiled = _compiled_from_args(args)
    print(compiled.describe())
    rng = np.random.default_rng(args.seed)
    streams = rng.standard_normal(
        (args.sessions, args.frames, compiled.input_size)
    )

    expected = None
    if args.selftest:
        # The row-isolation contract, end to end: a served stream must be
        # byte-identical to the same frames through a standalone session
        # (checked per stream below) *and* to the batched run.
        expected = _selftest_expected(compiled, streams)
        if expected is None:
            return 1

    outputs: list = [None] * args.sessions
    server = compiled.serve(
        max_batch=args.max_batch, max_delay_s=args.delay_ms / 1e3
    )

    def client(index: int) -> None:
        with server.session() as session:
            outputs[index] = np.stack(
                [session.push(frame) for frame in streams[index]]
            )

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(args.sessions)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    stats = server.stats()
    server.close()

    total = args.sessions * args.frames
    print(
        f"served {total} frames to {args.sessions} concurrent sessions in "
        f"{elapsed * 1e3:.1f} ms ({total / elapsed:,.0f} frames/s)"
    )
    print(f"  {stats.describe()}")

    if args.selftest:
        mismatched = [
            index
            for index in range(args.sessions)
            if not np.array_equal(outputs[index], expected[index])
        ]
        if mismatched:
            print(
                f"SELFTEST FAILED: served bytes differ on stream(s) "
                f"{mismatched}",
                file=sys.stderr,
            )
            return 1
        print(
            "selftest ok: every served stream byte-identical to its "
            "standalone batched run"
        )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table3 import format_comparison, run_table3

    print(format_comparison(run_table3()))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.experiments.fig8 import format_fig8, run_fig8

    print(format_fig8(run_fig8()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-RNN reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit-check", help="Phase-I BRAM sanity check")
    _add_spec_arguments(fit)
    fit.set_defaults(handler=_cmd_fit_check)

    bounds = sub.add_parser("bounds", help="Phase-I block-size bounds")
    _add_spec_arguments(bounds)
    bounds.set_defaults(handler=_cmd_bounds)

    price = sub.add_parser("price", help="Phase-II hardware sizing")
    _add_spec_arguments(price)
    price.set_defaults(handler=_cmd_price)

    codegen = sub.add_parser("codegen", help="run the HLS flow, emit C")
    _add_spec_arguments(codegen)
    codegen.add_argument("-o", "--output", default="ernn_cu.c")
    codegen.set_defaults(handler=_cmd_codegen)

    explore = sub.add_parser(
        "explore",
        help="parallel design-space sweep (Pareto frontier, top-k, reports)",
    )
    _add_spec_arguments(explore)
    explore.add_argument(
        "--sweep-blocks", type=int, nargs="+", default=[2, 4, 8, 16, 32],
        help="block-size axis (default: 2 4 8 16 32)",
    )
    explore.add_argument(
        "--sweep-bits", type=int, nargs="+", default=[8, 12, 16],
        help="fixed-point width axis (default: 8 12 16)",
    )
    explore.add_argument(
        "--sweep-platforms", nargs="+", default=None,
        help="platform axis (default: every registered platform)",
    )
    explore.add_argument(
        "--random", type=int, default=None, metavar="N",
        help="randomly subsample the grid to N candidates",
    )
    explore.add_argument("--seed", type=int, default=0,
                         help="seed for --random sampling (default: 0)")
    explore.add_argument(
        "--mode", choices=("serial", "thread", "process"), default="thread",
        help="evaluation strategy (default: thread)",
    )
    explore.add_argument("--workers", type=int, default=None,
                         help="pool size for thread/process modes")
    explore.add_argument(
        "--top", type=int, default=5, help="top-k rows in the text report"
    )
    explore.add_argument(
        "--objectives", default="per_proxy,latency_us",
        help="comma-separated Pareto objectives; prefix one with - to "
             "maximize it (default: per_proxy,latency_us)",
    )
    explore.add_argument(
        "--format", choices=("text", "csv", "json"), default="text",
    )
    explore.add_argument("-o", "--output", default=None,
                         help="write the report to a file instead of stdout")
    explore.add_argument(
        "--cache-dir", default=None,
        help="disk-cache root (default: REPRO_CACHE_DIR or ~/.cache/repro-ernn)",
    )
    explore.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent disk cache for this run",
    )
    explore.set_defaults(handler=_cmd_explore)

    run = sub.add_parser(
        "run",
        help="compile a model and run inference (batched or streaming)",
    )
    _add_spec_arguments(run)
    _add_runtime_arguments(run)
    run.add_argument(
        "--stream", action="store_true",
        help="push frames through a stateful session instead of one "
             "batched run (outputs are byte-identical either way)",
    )
    run.add_argument("--batch", type=int, default=1,
                     help="stream width B (default: 1)")
    # The fixed backend needs circulant weights: default run/serve demos to
    # the paper's block size instead of a dense spec.
    run.set_defaults(handler=_cmd_run, block=8)

    serve = sub.add_parser(
        "serve",
        help="serve a model: in-process demo, or over TCP with --port",
    )
    _add_spec_arguments(serve)
    _add_runtime_arguments(serve)
    serve.add_argument("--sessions", type=int, default=8,
                       help="concurrent client sessions (default: 8)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="rows coalesced per backend call (default: 16)")
    serve.add_argument(
        "--delay-ms", type=float, default=2.0,
        help="micro-batching window in milliseconds (default: 2.0)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for network serving (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="serve over TCP on this port (0 = ephemeral); without --port "
             "the command runs the in-process thread demo",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for network serving (default: 2)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=32,
        help="per-connection in-flight bound before busy replies "
             "(default: 32)",
    )
    serve.add_argument(
        "--transport", choices=("shm", "pipe"), default="shm",
        help="parent<->worker payload path for network serving: shared-"
             "memory rings (default) or pickled pipes",
    )
    serve.add_argument(
        "--wire", type=int, choices=(1, 2), default=2,
        help="highest wire protocol the server offers (and the selftest "
             "clients request): 2 = negotiated binary payload frames "
             "(default), 1 = NDJSON only",
    )
    serve.add_argument(
        "--spawn-timeout", type=float, default=120.0, metavar="SECONDS",
        help="how long each worker may take to load the artifact and "
             "report ready — initial spawns and supervised respawns alike "
             "(default: 120)",
    )
    serve.add_argument(
        "--restart-budget", type=int, default=3, metavar="N",
        help="supervised worker restarts allowed per worker per 60s "
             "window before the worker degrades and its shard answers "
             "errors (default: 3)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=10.0, metavar="SECONDS",
        help="a worker silent this long is presumed wedged, killed, and "
             "restarted; 0 disables the heartbeat (default: 10)",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=None, metavar="SECONDS",
        help="evict sessions idle at least this long (default: no TTL)",
    )
    serve.add_argument(
        "--session-cap", type=int, default=None, metavar="N",
        help="per-worker session-table bound; a new open at the cap sheds "
             "the least-recently-used idle session (default: unbounded)",
    )
    serve.add_argument(
        "--fault", action="append", default=None, metavar="SPEC",
        help="arm a deterministic fault, e.g. kill:worker=1,after=5 or "
             "corrupt_slot:after=4 (repeatable; kinds: kill, stall, "
             "delay_publish, drop_publish, corrupt_slot)",
    )
    serve.add_argument(
        "--fault-log", default=None, metavar="PATH",
        help="append every supervision event (worker deaths, restarts, "
             "degradations) to this JSONL file",
    )
    serve.add_argument(
        "--selftest", action="store_true",
        help="verify backend conformance and that every served stream is "
             "byte-identical to its standalone run — over the wire when "
             "--port is given; non-zero exit on mismatch (used by CI)",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="with --selftest: SIGKILL-grade faults are armed (defaults "
             "injected if no --fault is given) and the selftest asserts "
             "the streams survive worker deaths byte-identically via "
             "supervised restart + client reattach",
    )
    serve.add_argument(
        "--lm", action="store_true",
        help="with --port --selftest: serve the built-in fixture char-LM "
             "instead of the ASR spec and byte-gate seeded generation + "
             "scoring over the wire (composes with --chaos)",
    )
    serve.set_defaults(handler=_cmd_serve, block=8)

    gateway = sub.add_parser(
        "gateway",
        help="front a fleet of NetServer backends behind one consistent-"
             "hash endpoint (cluster tier)",
    )
    _add_spec_arguments(gateway)
    _add_runtime_arguments(gateway)
    gateway.add_argument(
        "--backends", default=None, metavar="HOST:PORT,...",
        help="comma-separated already-running backends to front; without "
             "this the command spawns --count local backends from the "
             "model flags",
    )
    gateway.add_argument(
        "--count", type=int, default=2,
        help="local backends to spawn when --backends is absent "
             "(default: 2)",
    )
    gateway.add_argument(
        "--host", default="127.0.0.1",
        help="gateway bind address (default: 127.0.0.1)",
    )
    gateway.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="gateway listen port (default: 0 = ephemeral)",
    )
    gateway.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per spawned backend (default: 1)",
    )
    gateway.add_argument(
        "--queue-limit", type=int, default=32,
        help="per-connection in-flight bound on spawned backends "
             "(default: 32)",
    )
    gateway.add_argument(
        "--wire", type=int, choices=(1, 2), default=2,
        help="highest wire protocol the fleet offers (default: 2)",
    )
    gateway.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="SECONDS",
        help="health-probe period per backend (default: 0.5)",
    )
    gateway.add_argument(
        "--down-after", type=int, default=3, metavar="N",
        help="consecutive probe misses before a backend is marked down "
             "and its sessions fail over (default: 3)",
    )
    gateway.add_argument(
        "--sessions", type=int, default=8,
        help="concurrent selftest client sessions (default: 8)",
    )
    gateway.add_argument(
        "--selftest", action="store_true",
        help="serve --sessions streams through the gateway and verify "
             "each is byte-identical to its standalone session; non-zero "
             "exit on mismatch (used by CI)",
    )
    gateway.add_argument(
        "--chaos", action="store_true",
        help="with --selftest: SIGKILL one whole backend mid-soak and "
             "assert every stream fails over byte-identically",
    )
    gateway.add_argument(
        "--drain", action="store_true",
        help="with --selftest: force-drain one backend mid-soak (rolling "
             "maintenance drill) and assert byte-identical migration",
    )
    gateway.add_argument(
        "--lm", action="store_true",
        help="with --selftest: front the built-in fixture char-LM and "
             "byte-gate seeded generation sessions through the cluster "
             "tier (composes with --chaos/--drain failover replay)",
    )
    gateway.set_defaults(handler=_cmd_gateway, block=8)

    generate = sub.add_parser(
        "generate",
        help="train (or connect to) a char-LM and sample seeded text",
    )
    generate.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="UTF-8 text file to train on (default: the built-in demo "
             "corpus)",
    )
    generate.add_argument(
        "--prompt", default=None,
        help="seed text; every character must occur in the corpus "
             "(default: the corpus' first 4 characters)",
    )
    generate.add_argument("--steps", type=int, default=120,
                          help="tokens to sample (default: 120)")
    generate.add_argument(
        "--temperature", type=float, default=0.8,
        help="softmax temperature; <= 0 means greedy argmax (default: 0.8)",
    )
    generate.add_argument(
        "--top-k", type=int, default=5,
        help="sample only among the k most likely tokens; 0 = full "
             "distribution (default: 5)",
    )
    generate.add_argument("--seed", type=int, default=0,
                          help="sampling seed (default: 0)")
    generate.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="generate against a running LM server or gateway instead of "
             "training locally (the vocabulary comes from the hello)",
    )
    generate.add_argument(
        "--backend", default="fixed",
        help="inference backend for local generation (default: fixed)",
    )
    generate.add_argument("--bits", type=int, default=12)
    generate.add_argument(
        "--layers", type=int, nargs="+", default=[64],
        help="hidden sizes, one per layer (default: 64)",
    )
    generate.add_argument(
        "--cell", default="gru",
        help="registered RNN cell type (default: gru)",
    )
    generate.add_argument(
        "--block", type=int, default=4,
        help="circulant block size; 0 = dense (default: 4)",
    )
    generate.add_argument("--epochs", type=int, default=4,
                          help="training epochs (default: 4)")
    generate.add_argument("--train-seed", type=int, default=0,
                          help="init + batch-order seed (default: 0)")
    generate.add_argument(
        "--perplexity", action="store_true",
        help="also report the model's perplexity on its training corpus "
             "(local mode only)",
    )
    generate.set_defaults(handler=_cmd_generate)

    bench = sub.add_parser(
        "bench",
        help="run the performance suites and write BENCH_<name>.json artifacts",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smoke-test sizes (seconds; CI uses this — timings are "
             "recorded but not asserted)",
    )
    bench.add_argument(
        "--only", nargs="+", default=None, metavar="NAME",
        help="run only the named suites (see --list)",
    )
    bench.add_argument("--list", action="store_true",
                       help="list registered suites and exit")
    bench.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<name>.json artifacts (default: cwd)",
    )
    bench.add_argument("--no-json", action="store_true",
                       help="print results without writing artifacts")
    bench.add_argument(
        "--compare", nargs=2, metavar=("OLD.json", "NEW.json"), default=None,
        help="noise-aware diff of two BENCH_<name>.json artifacts instead "
             "of running suites; exits 1 on regression (timings are only "
             "judged when quick flags and CPU counts match — otherwise "
             "structural checks still apply)",
    )
    bench.add_argument(
        "--threshold", type=float, default=None,
        help="with --compare: relative timing slowdown allowed before the "
             "gate fails (default 0.30)",
    )
    bench.set_defaults(handler=_cmd_bench)

    table3 = sub.add_parser("table3", help="regenerate the Table III comparison")
    table3.set_defaults(handler=_cmd_table3)

    fig8 = sub.add_parser("fig8", help="print the Fig. 8 curves")
    fig8.set_defaults(handler=_cmd_fig8)

    from repro.analysis.cli import add_lint_parser, run_lint

    lint = add_lint_parser(sub)
    lint.set_defaults(handler=run_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
