"""Command-line interface: the library's main flows as one `repro` tool.

Subcommands map onto the paper's workflow:

* ``fit-check``  — Phase I Step One: BRAM sanity check for a spec/platform.
* ``bounds``     — Phase I block-size bounds (BRAM lower, Fig. 8 upper).
* ``price``      — Phase II hardware sizing: latency / FPS / power report.
* ``codegen``    — run the HLS flow and write the generated C source.
* ``table3``     — regenerate the paper's headline comparison table.
* ``fig8``       — print the multiplication-count curves.

Examples::

    python -m repro.cli price --cell lstm --layers 1024 --block 8 \\
        --projection 512 --peephole --platform XCKU060
    python -m repro.cli codegen --cell gru --layers 1024 --block 16 -o cu.c
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config import AccelSpec, RNNSpec
from repro.errors import ReproError

__all__ = ["build_parser", "main"]


def _spec_from_args(args: argparse.Namespace) -> RNNSpec:
    layers = tuple(args.layers)
    blocks: tuple[int, ...] = ()
    if args.block is not None:
        blocks = tuple(args.block for _ in layers)
    return RNNSpec(
        cell_type=args.cell,
        input_size=args.input_size,
        layer_sizes=layers,
        output_size=args.output_size,
        block_sizes=blocks,
        peephole=args.peephole,
        projection_size=args.projection,
        io_block_size=args.io_block,
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cell", choices=("lstm", "gru"), default="lstm")
    parser.add_argument(
        "--layers", type=int, nargs="+", default=[1024],
        help="hidden sizes, one per layer (default: 1024)",
    )
    parser.add_argument("--block", type=int, default=None,
                        help="uniform circulant block size (default: dense)")
    parser.add_argument("--io-block", type=int, default=None,
                        help="coarser block size for input/output matrices")
    parser.add_argument("--input-size", type=int, default=153)
    parser.add_argument("--output-size", type=int, default=39)
    parser.add_argument("--projection", type=int, default=None)
    parser.add_argument("--peephole", action="store_true")
    parser.add_argument(
        "--platform", default="XCKU060",
        help="ADM-PCIE-7V3 or XCKU060 (default)",
    )
    parser.add_argument("--bits", type=int, default=12)


def _cmd_fit_check(args: argparse.Namespace) -> int:
    from repro.hw.bram import fits_bram, storage_breakdown
    from repro.hw.platform import get_platform

    spec = _spec_from_args(args)
    platform = get_platform(args.platform)
    breakdown = storage_breakdown(spec, args.bits)
    fits = fits_bram(spec, platform, args.bits)
    print(f"{spec.describe()} on {platform.name}:")
    print(f"  weights {breakdown.weights / 8e6:.2f} MB, "
          f"vectors {breakdown.vectors / 8e6:.3f} MB, "
          f"buffers {breakdown.buffers / 8e6:.3f} MB")
    print(f"  BRAM capacity {platform.bram_bytes / 1e6:.2f} MB "
          f"-> {'FITS' if fits else 'DOES NOT FIT'}")
    return 0 if fits else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.cost_model import recommended_block_upper_bound
    from repro.hw.bram import min_block_size_for_bram
    from repro.hw.platform import get_platform

    spec = _spec_from_args(args)
    dense = spec.with_block_sizes(())
    lower = min_block_size_for_bram(dense, get_platform(args.platform), args.bits)
    upper = recommended_block_upper_bound(max(spec.layer_sizes))
    print(f"Phase-I block-size search range for {dense.describe()}:")
    print(f"  lower bound (BRAM fit, {args.platform}): {lower}")
    print(f"  upper bound (Fig. 8 convergence): {upper}")
    import math

    trials = max(0, int(math.log2(upper) - math.log2(lower)) + 1) if upper >= lower else 0
    print(f"  power-of-2 sweep: at most {trials} training trials")
    return 0


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.hw.accelerator import AcceleratorModel

    spec = _spec_from_args(args)
    accel = AccelSpec(args.platform, weight_bits=args.bits, input_bits=args.bits)
    design = AcceleratorModel(spec, accel).build()
    utilization = ", ".join(
        f"{k.upper()} {100 * v:.1f}%" for k, v in design.utilization.items()
    )
    print(f"{spec.describe()} on {args.platform} @ {accel.clock_mhz:.0f} MHz:")
    print(f"  {design.num_pes} PEs in {design.num_cus} CUs "
          f"({design.pes_per_cu} per CU)")
    print(f"  latency {design.latency_us:.2f} us/frame, {design.fps:,.0f} FPS")
    print(f"  power {design.power_watts:.1f} W "
          f"({design.energy_efficiency:,.0f} FPS/W)")
    print(f"  utilization: {utilization}")
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.hls.framework import HLSFramework

    spec = _spec_from_args(args)
    accel = AccelSpec(args.platform, weight_bits=args.bits, input_bits=args.bits)
    result = HLSFramework(spec, accel).build()
    output = Path(args.output)
    output.write_text(result.code)
    summary = result.summary()
    print(f"wrote {output} ({summary['code_lines']:.0f} lines)")
    print(f"  {summary['num_ops']:.0f} ops in {summary['num_stages']:.0f} "
          f"CGPipe stages, {summary['frame_cycles']:.0f} cycles/frame "
          f"({summary['latency_us']:.2f} us)")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table3 import format_comparison, run_table3

    print(format_comparison(run_table3()))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.experiments.fig8 import format_fig8, run_fig8

    print(format_fig8(run_fig8()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-RNN reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit-check", help="Phase-I BRAM sanity check")
    _add_spec_arguments(fit)
    fit.set_defaults(handler=_cmd_fit_check)

    bounds = sub.add_parser("bounds", help="Phase-I block-size bounds")
    _add_spec_arguments(bounds)
    bounds.set_defaults(handler=_cmd_bounds)

    price = sub.add_parser("price", help="Phase-II hardware sizing")
    _add_spec_arguments(price)
    price.set_defaults(handler=_cmd_price)

    codegen = sub.add_parser("codegen", help="run the HLS flow, emit C")
    _add_spec_arguments(codegen)
    codegen.add_argument("-o", "--output", default="ernn_cu.c")
    codegen.set_defaults(handler=_cmd_codegen)

    table3 = sub.add_parser("table3", help="regenerate the Table III comparison")
    table3.set_defaults(handler=_cmd_table3)

    fig8 = sub.add_parser("fig8", help="print the Fig. 8 curves")
    fig8.set_defaults(handler=_cmd_fig8)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
