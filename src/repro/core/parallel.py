"""Shared executor machinery for the repo's parallel hot paths.

One helper, three consumers: the design-space :class:`repro.api.explorer.Sweep`
(its serial/thread paths), batch PER evaluation in :mod:`repro.asr.pipeline`,
and the speculative Phase-I training trials of :mod:`repro.core.phase1`.
Centralizing the pattern keeps the determinism contract in one place:
**results always come back in submission order**, so a parallel run and a
serial run of the same jobs produce identical downstream bytes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError

__all__ = ["EXECUTION_MODES", "map_ordered", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

EXECUTION_MODES = ("serial", "thread", "process")


def resolve_workers(workers: int | None, jobs: int, default: int = 4) -> int:
    """Pool size: explicit ``workers`` wins, else ``min(default, jobs)``."""
    if workers is not None:
        if workers < 1:
            raise ConfigError(f"workers must be positive, got {workers}")
        return workers
    return max(1, min(default, jobs))


def map_ordered(
    fn: Callable[[T], R],
    items: Iterable[T],
    mode: str = "serial",
    workers: int | None = None,
    mp_context: Any = None,
) -> list[R]:
    """Apply ``fn`` to every item, returning results in item order.

    ``mode`` is ``"serial"``, ``"thread"``, or ``"process"`` (the process
    path requires a picklable ``fn``/items).  Exceptions propagate — a
    failing job fails the map, exactly like the serial loop would.  Single
    jobs and serial mode share one code path so there is no pool overhead
    when parallelism cannot help.
    """
    if mode not in EXECUTION_MODES:
        raise ConfigError(
            f"mode must be one of {', '.join(EXECUTION_MODES)}, got {mode!r}"
        )
    jobs: Sequence[T] = list(items)
    if mode == "serial" or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    if mode == "thread":
        with ThreadPoolExecutor(
            max_workers=resolve_workers(workers, len(jobs))
        ) as pool:
            return list(pool.map(fn, jobs))
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=mp_context
    ) as pool:
        return list(pool.map(fn, jobs))
