"""Phase II: hardware-oriented optimization given the RNN model (Sec. VII).

Given the Phase-I spec, Phase II determines the implementation: number of
PEs (the ``min(DSP/ΔDSP, LUT/ΔLUT)`` allocation inside
:class:`repro.hw.accelerator.AcceleratorModel`), the fixed-point bit width
(smallest width whose PER cost stays inside the quantization budget —
Sec. VII-D's conclusion is 12 bits), and the piecewise-linear activation
table size (smallest power-of-two segment count meeting a worst-case error
bound).  The result is an :class:`ImplementationReport` — one Table III
column.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.config import AccelSpec, RNNSpec
from repro.core.compression import compression_ratio, layer_matrix_params
from repro.errors import ConfigError
from repro.hw.accelerator import AcceleratorDesign, build_design
from repro.hw.activation import pwl_sigmoid, pwl_tanh
from repro.hw.report import ImplementationReport

__all__ = ["PhaseIIConfig", "PhaseIIResult", "PhaseIIOptimizer", "select_pwl_segments"]

QuantEval = Callable[[int], float]


@dataclass(frozen=True)
class PhaseIIConfig:
    """Hardware search parameters."""

    platform: str = "XCKU060"
    candidate_bits: tuple[int, ...] = (16, 14, 12, 10, 8)
    quantization_budget: float = 0.1  # extra PER allowed (Sec. VII-D: <0.1%)
    pwl_error_budget: float = 1e-3
    num_compute_units: int | None = None
    pe_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not self.candidate_bits:
            raise ConfigError("need at least one candidate bit width")
        if self.quantization_budget < 0:
            raise ConfigError("quantization_budget must be non-negative")


@dataclass(frozen=True)
class PhaseIIResult:
    """Selected implementation and its report."""

    accel: AccelSpec
    design: AcceleratorDesign
    report: ImplementationReport
    pwl_segments: int
    quantization_curve: dict[int, float] | None

    def describe(self) -> str:
        d = self.design
        return (
            f"Phase II: {d.spec.describe()} on {d.platform.name}\n"
            f"  {d.num_pes} PEs in {d.num_cus} CUs, "
            f"{self.accel.weight_bits}-bit fixed point, "
            f"{self.pwl_segments}-segment PWL activations\n"
            f"  latency {d.latency_us:.1f} us, {d.fps:,.0f} FPS, "
            f"{d.power_watts:.1f} W, {d.energy_efficiency:,.0f} FPS/W"
        )


def select_pwl_segments(
    error_budget: float,
    candidates: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
) -> int:
    """Smallest table meeting the worst-case error bound for σ *and* tanh."""
    sigmoid_ref = lambda x: 1.0 / (1.0 + np.exp(-x))  # noqa: E731
    for segments in sorted(candidates):
        sig_err = pwl_sigmoid(segments).max_error(sigmoid_ref)
        tanh_err = pwl_tanh(segments).max_error(np.tanh)
        if max(sig_err, tanh_err) <= error_budget:
            return segments
    return max(candidates)


class PhaseIIOptimizer:
    """Sizes the hardware for a Phase-I spec."""

    def __init__(
        self,
        spec: RNNSpec,
        config: PhaseIIConfig | None = None,
        quant_eval: QuantEval | None = None,
        float_per: float | None = None,
    ):
        if not spec.is_block_circulant:
            raise ConfigError("Phase II consumes the circulant spec from Phase I")
        if quant_eval is not None and float_per is None:
            raise ConfigError("float_per is required when quant_eval is given")
        self.spec = spec
        self.config = config if config is not None else PhaseIIConfig()
        self.quant_eval = quant_eval
        self.float_per = float_per

    # ------------------------------------------------------------------
    def select_bits(self) -> tuple[int, dict[int, float] | None]:
        """Smallest candidate bit width within the quantization budget.

        Without a quantization evaluator, returns the paper's validated
        default of 12 bits ("12-bit weight quantization is in general a safe
        design").
        """
        if self.quant_eval is None:
            default = 12 if 12 in self.config.candidate_bits else max(
                self.config.candidate_bits
            )
            return default, None
        curve: dict[int, float] = {}
        feasible: list[int] = []
        assert self.float_per is not None
        for bits in sorted(self.config.candidate_bits, reverse=True):
            per = self.quant_eval(bits)
            curve[bits] = per
            if per - self.float_per <= self.config.quantization_budget:
                feasible.append(bits)
        if not feasible:
            raise ConfigError(
                "no candidate bit width meets the quantization budget "
                f"{self.config.quantization_budget}%: {curve}"
            )
        return min(feasible), curve

    # ------------------------------------------------------------------
    def run(self) -> PhaseIIResult:
        bits, curve = self.select_bits()
        segments = select_pwl_segments(self.config.pwl_error_budget)
        accel = AccelSpec(
            platform=self.config.platform,
            weight_bits=bits,
            input_bits=bits,
            pwl_segments=segments,
            num_compute_units=self.config.num_compute_units,
        )
        design = build_design(
            self.spec, accel, pe_efficiency=self.config.pe_efficiency
        )
        report = ImplementationReport(
            label=f"E-RNN FFT{max(self.spec.effective_block_sizes)}",
            cell=self.spec.describe(),
            platform=self.config.platform,
            quant_bits=bits,
            params_top_layer_m=layer_matrix_params(self.spec) / 1e6,
            compression_ratio=compression_ratio(self.spec),
            utilization=design.utilization,
            latency_us=design.latency_us,
            fps=design.fps,
            power_watts=design.power_watts,
        )
        return PhaseIIResult(
            accel=accel,
            design=design,
            report=report,
            pwl_segments=segments,
            quantization_curve=curve,
        )
