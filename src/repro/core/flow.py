"""The canonical E-RNN compression flow (Fig. 6 end to end).

``ernn_compress`` packages the paper's training pipeline as one call:

1. start from a *pretrained dense* model ("initialize from pretrained
   model");
2. run ADMM — SGD/Adam on the task loss plus the proximal term, with a
   projection + dual update each epoch;
3. hard-project the weights onto the block-circulant set (``W ≈ Z`` makes
   this nearly lossless);
4. convert to compressed :class:`CirculantLinear` storage and briefly
   "retrain to obtain the block circulant model" (Fig. 6's final box).

The C-LSTM counterpart — direct structured training from scratch — is
:func:`repro.baselines.clstm.build_clstm_model` plus the same
``train_model`` loop, which is what the ADMM-vs-direct ablation compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asr.pipeline import PreparedDataset, TrainConfig, train_model
from repro.config import RNNSpec
from repro.core.admm import ADMMConfig, ADMMTrainer
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier, convert_to_circulant

__all__ = ["CompressionResult", "ernn_compress"]


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of the ADMM compression flow."""

    model: StackedRNNClassifier
    final_residual: float
    admm_residuals: tuple[float, ...]

    @property
    def converged_to(self) -> float:
        return self.final_residual


def ernn_compress(
    dense_model: StackedRNNClassifier,
    target_spec: RNNSpec,
    dataset: PreparedDataset,
    admm_config: ADMMConfig | None = None,
    admm_train: TrainConfig | None = None,
    retrain: TrainConfig | None = None,
    rng: np.random.Generator | None = None,
) -> CompressionResult:
    """Compress a pretrained dense model to ``target_spec``'s block sizes.

    ``target_spec`` must match the dense model's architecture except for its
    block sizes.  Default hyper-parameters implement the recipe validated in
    the reproduction's ablations: ρ = 0.05 growing 1.4× per epoch, ten ADMM
    epochs, then a structured retrain.
    """
    dense_spec = dense_model.spec
    if target_spec.with_block_sizes(()).with_io_block_size(None) != (
        dense_spec.with_block_sizes(()).with_io_block_size(None)
    ):
        raise ConfigError(
            "target_spec must differ from the dense spec only in block sizes"
        )
    if not target_spec.is_block_circulant:
        raise ConfigError("target_spec carries no block sizes to compress to")

    admm_config = admm_config if admm_config is not None else ADMMConfig(
        rho=0.05, rho_growth=1.4
    )
    admm_train = admm_train if admm_train is not None else TrainConfig(
        epochs=10, learning_rate=2e-3, admm_update_every=1
    )
    retrain = retrain if retrain is not None else TrainConfig(
        epochs=12, learning_rate=2e-3, lr_decay=0.92
    )

    # Dense model re-tagged with the target block sizes (the spec records
    # which matrices ADMM must drive into circulant form).
    working = StackedRNNClassifier(target_spec, structured=False, rng=rng)
    working.load_state_dict(dense_model.state_dict())

    trainer = ADMMTrainer(working.structured_targets(), admm_config)
    history = train_model(working, dataset, admm_train, admm=trainer)
    trainer.finalize()

    structured = convert_to_circulant(working, rng=rng)
    train_model(structured, dataset, retrain)
    residuals = tuple(history.admm_residuals)
    return CompressionResult(
        model=structured,
        final_residual=residuals[-1] if residuals else float("nan"),
        admm_residuals=residuals,
    )
