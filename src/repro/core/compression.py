"""Parameter and compression-ratio accounting (Table III rows 2-4).

Reproduces the paper's counting conventions exactly:

* Block-circulant compression divides a matrix's parameter count by ``Lb``
  (the paper reports 3.25M → 0.41M for LSTM-1024/projection-512 at block 8).
* ESE's pruned model stores ~1/9 of the weights but needs "at least one index
  per weight", so its *effective* ratio is ~4.5:1 (Table III footnote a).

The reference workload dimensions (input 153, LSTM-1024 with projection 512 —
the ESE/Google LSTM of [22, 23]) live in :data:`PAPER_INPUT_DIM` etc. so the
Table III benchmark and tests share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RNNSpec
from repro.errors import ConfigError

__all__ = [
    "MatrixShape",
    "matrix_inventory",
    "layer_matrix_params",
    "total_matrix_params",
    "compression_ratio",
    "ese_effective_compression",
    "PAPER_INPUT_DIM",
]

#: Input feature dimension of the ESE/C-LSTM TIMIT workload (fbank+deltas).
PAPER_INPUT_DIM = 153


@dataclass(frozen=True)
class MatrixShape:
    """One large weight matrix of the model, with its compression block size."""

    name: str
    rows: int
    cols: int
    block_size: int
    role: str
    layer_index: int

    @property
    def dense_params(self) -> int:
        return self.rows * self.cols

    def compressed_params(self, pad: bool = False) -> int:
        """Parameter count after block-circulant compression.

        ``pad=False`` (default) follows the paper's accounting — simply divide
        by the block size.  ``pad=True`` counts the vectors of the physically
        padded matrix, which is what the FPGA actually stores.
        """
        if self.block_size <= 1:
            return self.dense_params
        if not pad:
            # Round like the paper: fractional blocks still cost whole vectors.
            return -(-self.dense_params // self.block_size)
        p = -(-self.rows // self.block_size)
        q = -(-self.cols // self.block_size)
        return p * q * self.block_size


def _io_block(spec: RNNSpec, layer_index: int) -> int:
    if spec.io_block_size is not None:
        return spec.io_block_size
    return spec.effective_block_sizes[layer_index]


def matrix_inventory(spec: RNNSpec, include_classifier: bool = False) -> list[MatrixShape]:
    """Enumerate every large weight matrix of a stacked RNN spec.

    Mirrors the physical layers built by
    :class:`repro.nn.rnn.StackedRNNClassifier`; peepholes and biases are
    vectors and are excluded (paper Sec. III-A stores them uncompressed).
    """
    shapes: list[MatrixShape] = []
    in_size = spec.input_size
    for layer_index, hidden in enumerate(spec.layer_sizes):
        base_block = spec.effective_block_sizes[layer_index]
        io_block = _io_block(spec, layer_index)
        if spec.cell_type == "lstm":
            out_size = (
                spec.projection_size
                if spec.projection_size is not None
                else hidden
            )
            shapes.append(
                MatrixShape(
                    f"cell{layer_index}.w_x", 4 * hidden, in_size,
                    io_block, "input", layer_index,
                )
            )
            shapes.append(
                MatrixShape(
                    f"cell{layer_index}.w_r", 4 * hidden, out_size,
                    base_block, "recurrent", layer_index,
                )
            )
            if spec.projection_size is not None:
                shapes.append(
                    MatrixShape(
                        f"cell{layer_index}.w_ym", spec.projection_size, hidden,
                        io_block, "output", layer_index,
                    )
                )
            in_size = out_size
        elif spec.cell_type == "gru":
            shapes.append(
                MatrixShape(
                    f"cell{layer_index}.w_zr_x", 2 * hidden, in_size,
                    io_block, "input", layer_index,
                )
            )
            shapes.append(
                MatrixShape(
                    f"cell{layer_index}.w_zr_c", 2 * hidden, hidden,
                    base_block, "recurrent", layer_index,
                )
            )
            shapes.append(
                MatrixShape(
                    f"cell{layer_index}.w_cx", hidden, in_size,
                    io_block, "input", layer_index,
                )
            )
            shapes.append(
                MatrixShape(
                    f"cell{layer_index}.w_cc", hidden, hidden,
                    base_block, "recurrent", layer_index,
                )
            )
            in_size = hidden
        else:  # pragma: no cover - RNNSpec validates cell types
            raise ConfigError(f"unknown cell type {spec.cell_type}")
    if include_classifier:
        shapes.append(
            MatrixShape(
                "classifier", spec.output_size, in_size, 1, "classifier",
                len(spec.layer_sizes),
            )
        )
    return shapes


def layer_matrix_params(
    spec: RNNSpec, layer_index: int = 0, compressed: bool = True
) -> int:
    """Matrix parameters of one layer (Table III's "#Params of top layer")."""
    shapes = [
        s for s in matrix_inventory(spec) if s.layer_index == layer_index
    ]
    if not shapes:
        raise ConfigError(f"layer {layer_index} out of range for {spec}")
    if compressed:
        return sum(s.compressed_params() for s in shapes)
    return sum(s.dense_params for s in shapes)


def total_matrix_params(spec: RNNSpec, compressed: bool = True) -> int:
    """Matrix parameters of the whole stack."""
    shapes = matrix_inventory(spec)
    if compressed:
        return sum(s.compressed_params() for s in shapes)
    return sum(s.dense_params for s in shapes)


def compression_ratio(spec: RNNSpec) -> float:
    """Dense over compressed matrix parameters (Table III row 4)."""
    dense = total_matrix_params(spec, compressed=False)
    compressed = total_matrix_params(spec, compressed=True)
    return dense / compressed


def ese_effective_compression(
    prune_ratio: float = 9.0,
    weight_bits: int = 12,
    index_bits: int = 12,
) -> float:
    """ESE's compression once indices are charged (Table III footnote a).

    ESE prunes to ``1/prune_ratio`` of the weights but stores one index per
    surviving weight; with equal-width indices the 9× pruning collapses to
    4.5:1.
    """
    if prune_ratio <= 0:
        raise ConfigError("prune_ratio must be positive")
    bits_per_weight = weight_bits + index_bits
    return prune_ratio * weight_bits / bits_per_weight
