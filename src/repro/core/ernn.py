"""The E-RNN framework: Phase I + Phase II end to end.

``ERNNFramework`` is the library's top-level entry point — the programmatic
equivalent of the paper's overall flow: start from a dense LSTM baseline and
an accuracy budget, derive the compressed model (Phase I), then size its
FPGA implementation (Phase II).

>>> framework = ERNNFramework(baseline_spec, trainer)
>>> result = framework.optimize(baseline_per=20.01)
>>> result.phase1.final_spec          # the chosen RNN model
>>> result.phase2.design.latency_us   # its hardware implementation
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RNNSpec
from repro.core.phase1 import PhaseIConfig, PhaseIOptimizer, PhaseIResult, Trainer
from repro.core.phase2 import PhaseIIConfig, PhaseIIOptimizer, PhaseIIResult, QuantEval

__all__ = ["ERNNResult", "ERNNFramework"]


@dataclass(frozen=True)
class ERNNResult:
    """Combined outcome of both phases."""

    phase1: PhaseIResult
    phase2: PhaseIIResult

    def describe(self) -> str:
        return "\n".join([self.phase1.describe(), self.phase2.describe()])


class ERNNFramework:
    """End-to-end design optimization under an accuracy requirement."""

    def __init__(
        self,
        baseline_spec: RNNSpec,
        trainer: Trainer,
        phase1_config: PhaseIConfig | None = None,
        phase2_config: PhaseIIConfig | None = None,
        quant_eval_factory=None,
    ):
        """``quant_eval_factory(spec) -> (quant_eval, float_per)`` optionally
        provides the Phase-II bit-width search with a measured quantized PER;
        without it Phase II uses the paper's validated 12-bit default."""
        self.baseline_spec = baseline_spec
        self.trainer = trainer
        self.phase1_config = (
            phase1_config if phase1_config is not None else PhaseIConfig()
        )
        self.phase2_config = phase2_config
        self.quant_eval_factory = quant_eval_factory

    def optimize(self, baseline_per: float | None = None) -> ERNNResult:
        phase1 = PhaseIOptimizer(
            self.baseline_spec, self.trainer, self.phase1_config
        ).run(baseline_per=baseline_per)

        phase2_config = self.phase2_config
        if phase2_config is None:
            phase2_config = PhaseIIConfig(platform=self.phase1_config.platform)

        quant_eval: QuantEval | None = None
        float_per: float | None = None
        if self.quant_eval_factory is not None:
            quant_eval, float_per = self.quant_eval_factory(phase1.final_spec)

        phase2 = PhaseIIOptimizer(
            phase1.final_spec,
            phase2_config,
            quant_eval=quant_eval,
            float_per=float_per,
        ).run()
        return ERNNResult(phase1=phase1, phase2=phase2)
