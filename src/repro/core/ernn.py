"""The E-RNN framework: Phase I + Phase II end to end.

:func:`run_two_phase_flow` is the canonical entry point — the programmatic
equivalent of the paper's overall flow: start from a dense LSTM baseline and
an accuracy budget, derive the compressed model (Phase I), then size its
FPGA implementation (Phase II).  The fluent facade exposes it as
``repro.api.Design(...).optimize(trainer, ...)``:

>>> result = run_two_phase_flow(baseline_spec, trainer, baseline_per=20.01)
>>> result.phase1.final_spec          # the chosen RNN model
>>> result.phase2.design.latency_us   # its hardware implementation

``ERNNFramework`` is the deprecated class-shaped shim around the same flow.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.config import RNNSpec
from repro.core.phase1 import PhaseIConfig, PhaseIOptimizer, PhaseIResult, Trainer
from repro.core.phase2 import PhaseIIConfig, PhaseIIOptimizer, PhaseIIResult, QuantEval

__all__ = ["ERNNResult", "ERNNFramework", "run_two_phase_flow"]


@dataclass(frozen=True)
class ERNNResult:
    """Combined outcome of both phases."""

    phase1: PhaseIResult
    phase2: PhaseIIResult

    def describe(self) -> str:
        return "\n".join([self.phase1.describe(), self.phase2.describe()])


def run_two_phase_flow(
    baseline_spec: RNNSpec,
    trainer: Trainer,
    baseline_per: float | None = None,
    phase1_config: PhaseIConfig | None = None,
    phase2_config: PhaseIIConfig | None = None,
    quant_eval_factory=None,
) -> ERNNResult:
    """End-to-end design optimization under an accuracy requirement.

    ``quant_eval_factory(spec) -> (quant_eval, float_per)`` optionally
    provides the Phase-II bit-width search with a measured quantized PER;
    without it Phase II uses the paper's validated 12-bit default.
    """
    phase1_config = phase1_config if phase1_config is not None else PhaseIConfig()
    phase1 = PhaseIOptimizer(baseline_spec, trainer, phase1_config).run(
        baseline_per=baseline_per
    )

    if phase2_config is None:
        phase2_config = PhaseIIConfig(platform=phase1_config.platform)

    quant_eval: QuantEval | None = None
    float_per: float | None = None
    if quant_eval_factory is not None:
        quant_eval, float_per = quant_eval_factory(phase1.final_spec)

    phase2 = PhaseIIOptimizer(
        phase1.final_spec,
        phase2_config,
        quant_eval=quant_eval,
        float_per=float_per,
    ).run()
    return ERNNResult(phase1=phase1, phase2=phase2)


class ERNNFramework:
    """Class-shaped shim over :func:`run_two_phase_flow`.

    .. deprecated::
        Use ``repro.api.Design(...).optimize(trainer, ...)`` or call
        :func:`run_two_phase_flow` directly.
    """

    def __init__(
        self,
        baseline_spec: RNNSpec,
        trainer: Trainer,
        phase1_config: PhaseIConfig | None = None,
        phase2_config: PhaseIIConfig | None = None,
        quant_eval_factory=None,
        *,
        _warn: bool = True,
    ):
        if _warn:
            warnings.warn(
                "ERNNFramework is deprecated; use repro.api.Design(...)"
                ".optimize(trainer, ...) or repro.core.ernn.run_two_phase_flow()",
                DeprecationWarning,
                stacklevel=2,
            )
        self.baseline_spec = baseline_spec
        self.trainer = trainer
        self.phase1_config = (
            phase1_config if phase1_config is not None else PhaseIConfig()
        )
        self.phase2_config = phase2_config
        self.quant_eval_factory = quant_eval_factory

    def optimize(self, baseline_per: float | None = None) -> ERNNResult:
        return run_two_phase_flow(
            self.baseline_spec,
            self.trainer,
            baseline_per=baseline_per,
            phase1_config=self.phase1_config,
            phase2_config=self.phase2_config,
            quant_eval_factory=self.quant_eval_factory,
        )
