"""Phase I: deriving the RNN model (paper Sec. VI-B, Fig. 2).

Chooses model type, layer size and block size under an accuracy budget while
keeping the number of RNN training trials near five, using the two design
explorations:

* **Step One — sanity check.**  The BRAM model gives the smallest block size
  whose model fits on-chip (the *lower* bound of the search).
* **Step Two — block-size optimization.**  The computation model (Fig. 8)
  gives the *upper* bound (where multiplication counts stop improving).
  Within the bounds, find the largest power-of-two block size that satisfies
  the accuracy constraint, walking down from the upper bound.
* **Step Three — fine tuning.**  (a) switch LSTM→GRU with the block size
  fixed (one trial; keep if accuracy holds — less computation and storage);
  (b) raise the block size of the non-recurrent input/output matrices to the
  next power of two (one trial; keep if accuracy holds).

The trainer is injected as a callable ``spec -> PER%`` so the same optimizer
drives real ADMM training runs (benchmarks), cached runs (experiments), and
synthetic oracles (tests).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.config import RNNSpec
from repro.core.cost_model import recommended_block_upper_bound
from repro.errors import ConfigError, FitError
from repro.hw.bram import min_block_size_for_bram
from repro.hw.platform import get_platform

__all__ = ["TrainingTrial", "PhaseIConfig", "PhaseIResult", "PhaseIOptimizer"]

Trainer = Callable[[RNNSpec], float]


@dataclass(frozen=True)
class TrainingTrial:
    """One RNN training run performed during the search."""

    step: str
    spec: RNNSpec
    per: float

    def describe(self) -> str:
        return f"[{self.step}] {self.spec.describe()} -> PER {self.per:.2f}%"


@dataclass(frozen=True)
class PhaseIConfig:
    """Search parameters: accuracy budget and target platform.

    ``speculative_workers`` > 1 trains the Step-Two block-sweep candidates
    concurrently (thread pool; the injected trainer must be thread-safe)
    instead of walking down one block size at a time.  The result and the
    recorded trial log are identical to the serial walk — speculative runs
    below the first accepted block size are discarded, trading extra
    training work for wall-clock latency.
    """

    accuracy_budget: float = 0.3  # allowed PER degradation, percent points
    platform: str = "XCKU060"
    weight_bits: int = 12
    try_gru: bool = True
    try_io_block: bool = True
    max_block: int = 256
    speculative_workers: int | None = None

    def __post_init__(self) -> None:
        if self.accuracy_budget < 0:
            raise ConfigError("accuracy_budget must be non-negative")
        if self.speculative_workers is not None and self.speculative_workers < 1:
            raise ConfigError("speculative_workers must be positive")


@dataclass(frozen=True)
class PhaseIResult:
    """Outcome: the selected model plus the full trial log."""

    final_spec: RNNSpec
    baseline_per: float
    final_per: float
    lower_bound: int
    upper_bound: int
    trials: tuple[TrainingTrial, ...] = field(default_factory=tuple)

    @property
    def num_training_trials(self) -> int:
        return len(self.trials)

    @property
    def degradation(self) -> float:
        return self.final_per - self.baseline_per

    def describe(self) -> str:
        lines = [
            f"Phase I: {self.final_spec.describe()}",
            f"  baseline PER {self.baseline_per:.2f}%, final PER "
            f"{self.final_per:.2f}% (degradation {self.degradation:+.2f})",
            f"  block-size bounds [{self.lower_bound}, {self.upper_bound}], "
            f"{self.num_training_trials} training trials:",
        ]
        lines.extend(f"    {trial.describe()}" for trial in self.trials)
        return "\n".join(lines)


class PhaseIOptimizer:
    """Implements the Fig. 2 flow over an injected trainer."""

    def __init__(
        self,
        baseline_spec: RNNSpec,
        trainer: Trainer,
        config: PhaseIConfig | None = None,
    ):
        if baseline_spec.is_block_circulant:
            raise ConfigError("Phase I starts from the dense LSTM baseline")
        if baseline_spec.cell_type != "lstm":
            raise ConfigError(
                "Phase I starts from LSTM 'due to its high reliability' "
                "(Sec. VI-B); the GRU switch happens in Step Three"
            )
        self.baseline_spec = baseline_spec
        self.trainer = trainer
        self.config = config if config is not None else PhaseIConfig()
        self._trials: list[TrainingTrial] = []

    # ------------------------------------------------------------------
    def _train(self, step: str, spec: RNNSpec) -> float:
        per = self.trainer(spec)
        self._trials.append(TrainingTrial(step, spec, per))
        return per

    def _block_bounds(self) -> tuple[int, int]:
        platform = get_platform(self.config.platform)
        lower = min_block_size_for_bram(
            self.baseline_spec, platform, self.config.weight_bits,
            max_block=self.config.max_block,
        )
        upper = recommended_block_upper_bound(max(self.baseline_spec.layer_sizes))
        upper = min(upper, self.config.max_block)
        if upper < lower:
            raise FitError(
                f"block-size bounds are empty: BRAM needs >= {lower} but "
                f"computation stops improving at {upper}"
            )
        # Respect divisibility of every layer size.
        while lower <= upper and any(
            size % lower for size in self.baseline_spec.layer_sizes
        ):
            lower *= 2
        return lower, upper

    def _uniform(self, spec: RNNSpec, block: int) -> RNNSpec:
        return spec.with_block_sizes(tuple(block for _ in spec.layer_sizes))

    def _block_sweep(
        self, lower: int, upper: int, target_per: float
    ) -> tuple[RNNSpec | None, float]:
        """Step Two: largest block size meeting the accuracy budget.

        Serial by default (stops training at the first success, the paper's
        flow); with ``speculative_workers`` the candidate ladder trains
        concurrently and the walk-down happens over finished results.  Only
        trials the serial walk would have run are recorded, so the trial
        log — and therefore the whole :class:`PhaseIResult` — is identical
        across both strategies.
        """
        candidates = []
        block = upper
        while block >= lower:
            candidates.append(self._uniform(self.baseline_spec, block))
            block //= 2

        workers = self.config.speculative_workers
        if workers is not None and workers > 1:
            from repro.core.parallel import map_ordered

            def attempt(candidate: RNNSpec):
                # Capture failures instead of letting one speculative rung
                # abort the map: a candidate the serial walk never reaches
                # must not be able to fail the run.
                try:
                    return self.trainer(candidate), None
                except Exception as exc:  # noqa: BLE001 — re-raised in order
                    return None, exc

            outcomes = map_ordered(
                attempt, candidates, mode="thread", workers=workers
            )
            for candidate, (per, error) in zip(candidates, outcomes):
                if error is not None:
                    raise error  # the serial walk would have hit this rung
                self._trials.append(TrainingTrial("block-sweep", candidate, per))
                if per <= target_per:
                    return candidate, per
            return None, float("inf")

        for candidate in candidates:
            per = self._train("block-sweep", candidate)
            if per <= target_per:
                return candidate, per
        return None, float("inf")

    # ------------------------------------------------------------------
    def run(self, baseline_per: float | None = None) -> PhaseIResult:
        """Execute Steps One-Three; returns the selected spec and trial log.

        ``baseline_per`` short-circuits the baseline training when the dense
        model's accuracy is already known (the common case — it is the
        published reference the budget is measured against).
        """
        budget = self.config.accuracy_budget
        if baseline_per is None:
            baseline_per = self._train("baseline", self.baseline_spec)
        target_per = baseline_per + budget

        lower, upper = self._block_bounds()

        # Step Two: largest feasible block size, walking down from the upper
        # bound.  The bounds plus power-of-2 stepping keep this to a few
        # trials (Sec. VI-B: "at most 3 or 4 training trials").
        chosen_spec, chosen_per = self._block_sweep(lower, upper, target_per)
        if chosen_spec is None:
            raise FitError(
                f"no block size in [{lower}, {upper}] meets PER <= "
                f"{target_per:.2f}% (budget {budget}%)"
            )

        # Step Three (a): LSTM -> GRU with the block size fixed.
        if self.config.try_gru:
            gru_spec = self._uniform(
                self.baseline_spec.with_cell_type("gru"),
                chosen_spec.effective_block_sizes[0],
            )
            per = self._train("gru-switch", gru_spec)
            if per <= target_per:
                chosen_spec, chosen_per = gru_spec, per

        # Step Three (b): coarser blocks for the non-recurrent io matrices.
        if self.config.try_io_block:
            io_block = 2 * chosen_spec.effective_block_sizes[0]
            if io_block <= self.config.max_block:
                io_spec = chosen_spec.with_io_block_size(io_block)
                per = self._train("io-fine-tune", io_spec)
                if per <= target_per:
                    chosen_spec, chosen_per = io_spec, per

        return PhaseIResult(
            final_spec=chosen_spec,
            baseline_per=baseline_per,
            final_per=chosen_per,
            lower_bound=lower,
            upper_bound=upper,
            trials=tuple(self._trials),
        )
