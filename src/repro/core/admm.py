"""ADMM training for block-circulant RNNs (paper Sec. III-B, Figs. 5-6).

The structured-training problem ``min f({W_l}) s.t. W_l block-circulant`` is
split into two subproblems solved alternately:

1. **Proximal SGD step** — minimize ``f({W}) + Σ_l ρ_l/2 ||W_l − Z_l + U_l||²``
   with any stochastic optimizer (the paper stresses ADAM compatibility).
   :meth:`ADMMTrainer.penalty` returns the quadratic term as an autograd
   tensor to be added to the task loss.
2. **Projection step** — ``Z_l ← Π(W_l + U_l)`` where ``Π`` is the closed-form
   Euclidean projection of Eqn. (6), then the dual update
   ``U_l ← U_l + W_l − Z_l``.

Convergence is declared when every ``||W_l − Z_l||_F / ||W_l||_F`` falls below
a tolerance ("Z converge? & W ≈ Z?" in Fig. 6), after which
:meth:`ADMMTrainer.finalize` hard-projects the weights so the model is
*exactly* block-circulant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.nn.autograd import Tensor
from repro.nn.rnn import StructuredTarget
from repro.core.projection import project_to_block_circulant

__all__ = ["ADMMConfig", "ADMMTrainer"]


@dataclass(frozen=True)
class ADMMConfig:
    """Hyper-parameters of the ADMM loop.

    ``rho`` is the augmented-Lagrangian penalty ρ_l (shared across layers by
    default, overridable per target via ``rho_overrides`` keyed by target
    name).  ``relative_tolerance`` is the ``W ≈ Z`` convergence threshold.
    """

    rho: float = 1e-2
    relative_tolerance: float = 1e-2
    rho_overrides: dict[str, float] = field(default_factory=dict)
    #: Multiplicative ρ increase applied at every dual update.  A gentle
    #: ramp (1.2-1.6) lets early iterations follow the task loss and late
    #: iterations enforce the structure — standard practice for ADMM-based
    #: compression when the training budget is small.
    rho_growth: float = 1.0

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise TrainingError(f"rho must be positive, got {self.rho}")
        if self.relative_tolerance <= 0:
            raise TrainingError("relative_tolerance must be positive")
        if self.rho_growth < 1.0:
            raise TrainingError("rho_growth must be >= 1")

    def rho_for(self, name: str) -> float:
        return self.rho_overrides.get(name, self.rho)


class ADMMTrainer:
    """Holds the (Z, U) auxiliary/dual state for a set of structured targets.

    The caller owns the optimizer and the data loop; the trainer contributes
    the penalty term, the projection/dual update, and convergence tracking:

    .. code-block:: python

        trainer = ADMMTrainer(model.structured_targets(), ADMMConfig())
        for admm_iteration in range(K):
            for batch in data:                     # subproblem 1
                loss = task_loss(batch) + trainer.penalty()
                loss.backward(); optimizer.step()
            trainer.dual_update()                  # subproblem 2
        trainer.finalize()
    """

    def __init__(self, targets: list[StructuredTarget], config: ADMMConfig):
        if not targets:
            raise TrainingError("ADMMTrainer requires at least one target")
        self.targets = list(targets)
        self.config = config
        # Z initialized to the projection of the (pretrained) weights, U to 0
        # — "initialize from pretrained model" (Fig. 6).
        self._aux: dict[str, np.ndarray] = {}
        self._dual: dict[str, np.ndarray] = {}
        for target in self.targets:
            self._aux[target.name] = project_to_block_circulant(
                target.parameter.data, target.block_size
            )
            self._dual[target.name] = np.zeros_like(target.parameter.data)
        self.iteration = 0
        self._rho_scale = 1.0

    # ------------------------------------------------------------------
    # Subproblem 1: penalty term for the SGD/Adam loss
    # ------------------------------------------------------------------
    def penalty(self) -> Tensor:
        """``Σ_l ρ_l/2 · ||W_l − Z_l + U_l||²_F`` as an autograd scalar."""
        total: Tensor | None = None
        for target in self.targets:
            anchor = self._aux[target.name] - self._dual[target.name]
            diff = target.parameter - Tensor(anchor)
            rho = self.config.rho_for(target.name) * self._rho_scale
            term = (diff * diff).sum() * (0.5 * rho)
            total = term if total is None else total + term
        assert total is not None
        return total

    # ------------------------------------------------------------------
    # Subproblem 2: projection + dual ascent
    # ------------------------------------------------------------------
    def dual_update(self) -> dict[str, float]:
        """``Z ← Π(W + U)``, ``U ← U + W − Z``; returns per-target residuals."""
        residuals: dict[str, float] = {}
        for target in self.targets:
            weight = target.parameter.data
            self._aux[target.name] = project_to_block_circulant(
                weight + self._dual[target.name], target.block_size
            )
            self._dual[target.name] += weight - self._aux[target.name]
            residuals[target.name] = self._relative_residual(target)
        self.iteration += 1
        self._rho_scale *= self.config.rho_growth
        return residuals

    def _relative_residual(self, target: StructuredTarget) -> float:
        weight = target.parameter.data
        gap = np.linalg.norm(weight - self._aux[target.name])
        norm = np.linalg.norm(weight)
        return float(gap / norm) if norm > 0 else float(gap)

    def residuals(self) -> dict[str, float]:
        return {t.name: self._relative_residual(t) for t in self.targets}

    def converged(self) -> bool:
        """Fig. 6 exit test: every weight is close to its circulant projection."""
        return all(
            residual <= self.config.relative_tolerance
            for residual in self.residuals().values()
        )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Hard-project every target so the weights are exactly circulant.

        After convergence the projection moves each weight by at most the
        tolerance; the model can then be converted to compressed storage via
        :func:`repro.nn.rnn.convert_to_circulant` with zero further loss.
        """
        for target in self.targets:
            target.parameter.data = project_to_block_circulant(
                target.parameter.data, target.block_size
            )

    def auxiliary(self, name: str) -> np.ndarray:
        """Current Z_l for a target (read-only view for diagnostics/tests)."""
        return self._aux[name]

    def dual(self, name: str) -> np.ndarray:
        """Current U_l for a target."""
        return self._dual[name]
