"""BlockCirculantMatrix: a compressed weight matrix as a first-class value.

Wraps the ``(p, q, Lb)`` defining vectors with the operations the rest of the
library needs: FFT matvec (Eqn. 4), dense materialization (Fig. 1), storage
accounting, and construction by projection from a dense matrix (Eqn. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import validate_block_size
from repro.errors import ShapeError
from repro.core.circulant import circulant_from_first_column

__all__ = ["BlockCirculantMatrix"]


@dataclass(frozen=True)
class BlockCirculantMatrix:
    """An ``(p·Lb) × (q·Lb)`` matrix stored as ``p × q`` circulant blocks.

    ``vectors[i, j]`` is the first column of block ``(i, j)``.  Instances are
    immutable values; all operations return new arrays.
    """

    vectors: np.ndarray

    def __post_init__(self) -> None:
        vectors = np.asarray(self.vectors, dtype=np.float64)
        if vectors.ndim != 3:
            raise ShapeError(f"vectors must be (p, q, Lb), got {vectors.shape}")
        validate_block_size(vectors.shape[2])
        object.__setattr__(self, "vectors", vectors)

    # ------------------------------------------------------------------
    # Shape & storage
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        return self.vectors.shape[2]

    @property
    def block_grid(self) -> tuple[int, int]:
        return self.vectors.shape[0], self.vectors.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        p, q = self.block_grid
        return (p * self.block_size, q * self.block_size)

    @property
    def num_parameters(self) -> int:
        """Stored scalars: ``p·q·Lb`` (the O(n) storage of Fig. 1)."""
        return int(self.vectors.size)

    @property
    def dense_parameters(self) -> int:
        rows, cols = self.shape
        return rows * cols

    @property
    def compression_ratio(self) -> float:
        """Dense over compressed parameter count — exactly ``Lb``."""
        return self.dense_parameters / self.num_parameters

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, matrix: np.ndarray, block_size: int
    ) -> "BlockCirculantMatrix":
        """Euclidean projection of a dense matrix (Eqn. 6 per block)."""
        from repro.core.projection import project_to_block_circulant_vectors

        return cls(project_to_block_circulant_vectors(matrix, block_size))

    def to_dense(self) -> np.ndarray:
        """Materialize the full matrix (test oracle / small sizes only)."""
        p, q = self.block_grid
        size = self.block_size
        dense = np.zeros(self.shape)
        for i in range(p):
            for j in range(q):
                dense[i * size : (i + 1) * size, j * size : (j + 1) * size] = (
                    circulant_from_first_column(self.vectors[i, j])
                )
        return dense

    def transpose(self) -> "BlockCirculantMatrix":
        """Transpose stays block-circulant: swap the grid, reverse each vector."""
        size = self.block_size
        reversed_vectors = self.vectors[..., (-np.arange(size)) % size]
        return BlockCirculantMatrix(reversed_vectors.transpose(1, 0, 2))

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``W @ x`` via FFT (Eqn. 4); ``x`` may carry batch dims in front."""
        x = np.asarray(x, dtype=np.float64)
        rows, cols = self.shape
        if x.shape[-1] != cols:
            raise ShapeError(f"expected last dim {cols}, got {x.shape}")
        batch_shape = x.shape[:-1]
        p, q = self.block_grid
        size = self.block_size
        x_blocks = x.reshape(-1, q, size)
        weights_f = np.fft.rfft(self.vectors, axis=-1)
        x_f = np.fft.rfft(x_blocks, axis=-1)
        y_f = np.einsum("ijf,bjf->bif", weights_f, x_f)
        y = np.fft.irfft(y_f, n=size, axis=-1).reshape(batch_shape + (rows,))
        return y

    def matvec_direct(self, x: np.ndarray) -> np.ndarray:
        """``W @ x`` through the dense matrix — O(n²) oracle for tests."""
        return np.asarray(x) @ self.to_dense().T

    def frobenius_norm(self) -> float:
        """||W||_F computed without materializing: each vector entry appears
        exactly ``Lb`` times in its block."""
        return float(np.sqrt(self.block_size * np.sum(self.vectors**2)))
