"""Core package: block-circulant algebra, ADMM training, design optimization."""

from repro.core.admm import ADMMConfig, ADMMTrainer
from repro.core.block_matrix import BlockCirculantMatrix
from repro.core.ernn import ERNNFramework, ERNNResult, run_two_phase_flow
from repro.core.phase1 import (
    PhaseIConfig,
    PhaseIOptimizer,
    PhaseIResult,
    TrainingTrial,
)
from repro.core.phase2 import (
    PhaseIIConfig,
    PhaseIIOptimizer,
    PhaseIIResult,
    select_pwl_segments,
)
from repro.core.circulant import (
    circulant_from_first_column,
    circulant_from_first_row,
    circulant_matvec,
    circulant_matvec_direct,
    is_circulant,
    reverse_index,
    transpose_vector,
)
from repro.core.compression import (
    PAPER_INPUT_DIM,
    MatrixShape,
    compression_ratio,
    ese_effective_compression,
    layer_matrix_params,
    matrix_inventory,
    total_matrix_params,
)
from repro.core.cost_model import (
    ComputationBreakdown,
    decoupling_counts,
    elementwise_real_mults,
    fft_complex_mults,
    fig8_curve,
    layer_multiplications,
    normalized_multiplications,
    recommended_block_upper_bound,
)
from repro.core.projection import (
    circulant_distance,
    project_block_to_circulant_vector,
    project_to_block_circulant,
    project_to_block_circulant_vectors,
)

__all__ = [
    "ADMMConfig",
    "ADMMTrainer",
    "BlockCirculantMatrix",
    "ERNNFramework",
    "ERNNResult",
    "run_two_phase_flow",
    "PhaseIConfig",
    "PhaseIOptimizer",
    "PhaseIResult",
    "TrainingTrial",
    "PhaseIIConfig",
    "PhaseIIOptimizer",
    "PhaseIIResult",
    "select_pwl_segments",
    "circulant_from_first_column",
    "circulant_from_first_row",
    "circulant_matvec",
    "circulant_matvec_direct",
    "is_circulant",
    "reverse_index",
    "transpose_vector",
    "PAPER_INPUT_DIM",
    "MatrixShape",
    "compression_ratio",
    "ese_effective_compression",
    "layer_matrix_params",
    "matrix_inventory",
    "total_matrix_params",
    "ComputationBreakdown",
    "decoupling_counts",
    "elementwise_real_mults",
    "fft_complex_mults",
    "fig8_curve",
    "layer_multiplications",
    "normalized_multiplications",
    "recommended_block_upper_bound",
    "circulant_distance",
    "project_block_to_circulant_vector",
    "project_to_block_circulant",
    "project_to_block_circulant_vectors",
]
