"""Euclidean projection onto the block-circulant set (paper Eqn. 6, Fig. 5).

This is the closed-form solution of the second ADMM subproblem: for each
``Lb × Lb`` block, every circulant diagonal of the projected block is set to
the *mean* of the corresponding entries of the source block.  The paper
proves this diagonal averaging is the optimal (closest in Frobenius norm)
circulant approximation; the property tests in
``tests/core/test_projection.py`` re-verify optimality numerically.
"""

from __future__ import annotations

import numpy as np

from repro.config import validate_block_size
from repro.errors import ShapeError

__all__ = [
    "project_block_to_circulant_vector",
    "project_to_block_circulant_vectors",
    "project_to_block_circulant",
    "circulant_distance",
]


def _as_blocks(matrix: np.ndarray, block_size: int) -> np.ndarray:
    """Reshape (m, n) into (p, q, Lb, Lb) blocks, zero-padding if needed."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rows, cols = matrix.shape
    pad_rows = (-rows) % block_size
    pad_cols = (-cols) % block_size
    if pad_rows or pad_cols:
        matrix = np.pad(matrix, ((0, pad_rows), (0, pad_cols)))
    p = matrix.shape[0] // block_size
    q = matrix.shape[1] // block_size
    return (
        matrix.reshape(p, block_size, q, block_size).transpose(0, 2, 1, 3),
        (rows, cols),
    )


def project_block_to_circulant_vector(block: np.ndarray) -> np.ndarray:
    """Optimal circulant defining vector (first-column convention) of a block.

    Entry ``k`` of the result is the mean of the circulant diagonal
    ``{(i, j) : (i - j) mod Lb == k}`` — exactly Eqn. (6) applied to every
    diagonal, not just the main one.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ShapeError(f"block must be square, got {block.shape}")
    size = block.shape[0]
    offsets = (np.arange(size)[:, None] - np.arange(size)[None, :]) % size
    sums = np.zeros(size)
    np.add.at(sums, offsets.reshape(-1), block.reshape(-1))
    return sums / size


def project_to_block_circulant_vectors(
    matrix: np.ndarray, block_size: int
) -> np.ndarray:
    """Project a dense matrix; return the ``(p, q, Lb)`` defining vectors.

    Vectorized over all blocks: diagonal ``k`` of every block is averaged in
    one pass.  Rectangular matrices whose dimensions are not multiples of the
    block size are zero-padded first (matching the layer padding in
    :class:`repro.nn.circulant_layer.CirculantLinear`).
    """
    validate_block_size(block_size)
    blocks, _ = _as_blocks(matrix, block_size)
    size = block_size
    offsets = (np.arange(size)[:, None] - np.arange(size)[None, :]) % size
    vectors = np.zeros(blocks.shape[:2] + (size,))
    for k in range(size):
        mask = offsets == k
        vectors[:, :, k] = blocks[:, :, mask].mean(axis=-1)
    return vectors


def project_to_block_circulant(matrix: np.ndarray, block_size: int) -> np.ndarray:
    """Project a dense matrix and return the dense projected matrix ``Z``.

    This is the exact operation the ADMM trainer applies each iteration
    (Fig. 6, Step 2).  The output has the same shape as the input (padding
    introduced for partial blocks is cropped away).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    vectors = project_to_block_circulant_vectors(matrix, block_size)
    p, q, size = vectors.shape
    indices = (np.arange(size)[:, None] - np.arange(size)[None, :]) % size
    dense_blocks = vectors[:, :, indices]  # (p, q, Lb, Lb)
    full = dense_blocks.transpose(0, 2, 1, 3).reshape(p * size, q * size)
    rows, cols = matrix.shape
    return full[:rows, :cols]


def circulant_distance(matrix: np.ndarray, block_size: int) -> float:
    """Frobenius distance between a matrix and its block-circulant projection.

    The ADMM trainer uses this as its convergence residual (``W ≈ Z``).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    return float(
        np.linalg.norm(matrix - project_to_block_circulant(matrix, block_size))
    )
