"""Multiplication-count cost model for block-circulant layers (Sec. V, Fig. 8).

Counts *real* multiplications for computing ``W @ x`` with a block-circulant
``W`` through the "FFT → element-wise multiplication → IFFT" procedure,
accounting for the paper's three reduction techniques:

1. **FFT-IFFT decoupling** (Sec. V-A1, Fig. 7): ``FFT(x_j)`` is computed once
   per input block (``q`` FFTs instead of ``p·q``) and the IFFT is moved past
   the accumulation (``p`` IFFTs instead of ``p·q``).
2. **Real-valued FFT symmetry** (Sec. V-A2): a real input's spectrum is
   Hermitian, so only ``Lb/2 + 1`` bins are unique, two of which (DC and
   Nyquist) are purely real — element-wise products cost ``2·Lb − 2`` real
   multiplications per block instead of ``4·Lb``; the last FFT stage and the
   first IFFT stage are halved.
3. **Trivial twiddle factors**: radix-2 stages 1-2 multiply only by
   ``±1, ±i``; stage ``s ≥ 3`` has ``Lb/2 − 2·Lb/2^s`` butterflies with
   non-trivial twiddles (this matches the paper's "only half of butterfly
   units in the third level").

The headline observation this model must reproduce: the normalized count
starts at 0.5 for block size 2, *converges around block size 32-64*, and can
rise again for larger blocks — which is how the paper derives the upper bound
of the Phase-I block-size search range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import is_power_of_two
from repro.errors import BlockSizeError

__all__ = [
    "fft_complex_mults",
    "elementwise_real_mults",
    "ComputationBreakdown",
    "layer_multiplications",
    "normalized_multiplications",
    "fig8_curve",
    "decoupling_counts",
    "recommended_block_upper_bound",
    "per_degradation_proxy",
    "per_proxy",
    "PER_PROXY_BASELINE",
]

#: Real multiplications per complex multiplication (4-mult/2-add scheme; the
#: 3-mult Karatsuba variant trades multiplies for adds and is not used by the
#: paper's DSP-oriented PEs).
REAL_MULTS_PER_COMPLEX = 4


def _check_block(block_size: int) -> None:
    if block_size < 1 or not is_power_of_two(block_size):
        raise BlockSizeError(f"block size must be a power of two, got {block_size}")


def fft_complex_mults(
    block_size: int,
    twiddle_savings: bool = True,
    halve_boundary_stage: bool = True,
) -> float:
    """Complex multiplications of one radix-2 FFT of size ``Lb``.

    With ``twiddle_savings`` stages 1-2 are free and stage ``s`` costs
    ``Lb/2 − 2·Lb/2^s`` complex multiplications.  ``halve_boundary_stage``
    applies the real-input symmetry: the final FFT stage (equivalently the
    first IFFT stage) does half the work.
    """
    _check_block(block_size)
    if block_size < 4:
        return 0.0  # sizes 1 and 2 need no twiddle multiplications at all
    stages = int(math.log2(block_size))
    if not twiddle_savings:
        total = stages * (block_size / 2)
        if halve_boundary_stage:
            total -= 0.5 * (block_size / 2)
        return total
    total = 0.0
    last_stage_cost = 0.0
    for stage in range(3, stages + 1):
        cost = block_size / 2 - 2 * block_size / (2**stage)
        total += cost
        last_stage_cost = cost
    if halve_boundary_stage:
        total -= 0.5 * last_stage_cost
    return total


def elementwise_real_mults(block_size: int, real_symmetry: bool = True) -> float:
    """Real multiplications for one ``FFT(w) ∘ FFT(x)`` block product.

    With Hermitian symmetry: DC and Nyquist bins are real (1 mult each), the
    remaining ``Lb/2 − 1`` bins are complex (4 mults each) → ``2·Lb − 2``.
    Without symmetry all ``Lb`` bins are complex → ``4·Lb``.
    """
    _check_block(block_size)
    if block_size == 1:
        return 1.0
    if not real_symmetry:
        return REAL_MULTS_PER_COMPLEX * block_size
    if block_size == 2:
        return 2.0  # both bins of a size-2 real FFT are purely real
    unique_complex = block_size / 2 - 1
    return 2.0 + REAL_MULTS_PER_COMPLEX * unique_complex


@dataclass(frozen=True)
class ComputationBreakdown:
    """Real-multiplication counts for one ``m × n`` block-circulant layer."""

    block_size: int
    fft_mults: float
    ifft_mults: float
    elementwise_mults: float

    @property
    def total(self) -> float:
        return self.fft_mults + self.ifft_mults + self.elementwise_mults


def layer_multiplications(
    rows: int,
    cols: int,
    block_size: int,
    decoupling: bool = True,
    real_symmetry: bool = True,
    twiddle_savings: bool = True,
) -> ComputationBreakdown:
    """Real multiplications for ``W @ x``, ``W ∈ R^{rows×cols}``, block ``Lb``.

    Weight spectra ``FFT(w_ij)`` are precomputed and stored in BRAM (Sec.
    V-A1), so they cost nothing at inference.  Block size 1 degenerates to
    the dense matrix-vector product (``rows·cols`` multiplications), which is
    the normalization baseline of Fig. 8.
    """
    _check_block(block_size)
    if rows % block_size or cols % block_size:
        raise BlockSizeError(
            f"block size {block_size} must divide matrix dims {rows}x{cols}"
        )
    if block_size == 1:
        return ComputationBreakdown(1, 0.0, 0.0, float(rows * cols))
    p = rows // block_size
    q = cols // block_size
    per_fft = REAL_MULTS_PER_COMPLEX * fft_complex_mults(
        block_size,
        twiddle_savings=twiddle_savings,
        halve_boundary_stage=real_symmetry,
    )
    num_ffts, num_iffts = decoupling_counts(p, q) if decoupling else (p * q, p * q)
    elementwise = p * q * elementwise_real_mults(block_size, real_symmetry)
    return ComputationBreakdown(
        block_size,
        fft_mults=num_ffts * per_fft,
        ifft_mults=num_iffts * per_fft,
        elementwise_mults=elementwise,
    )


def decoupling_counts(p: int, q: int) -> tuple[int, int]:
    """(#FFT, #IFFT) with the Fig. 7 decoupling: ``p·q → q`` and ``p·q → p``."""
    return q, p


def normalized_multiplications(
    layer_size: int,
    block_size: int,
    **kwargs,
) -> float:
    """Fig. 8 y-axis: layer multiplications normalized by the dense count."""
    breakdown = layer_multiplications(layer_size, layer_size, block_size, **kwargs)
    return breakdown.total / float(layer_size * layer_size)


def fig8_curve(
    layer_size: int,
    block_sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
    **kwargs,
) -> dict[int, float]:
    """The full Fig. 8 series for one layer size."""
    return {
        block: normalized_multiplications(layer_size, block, **kwargs)
        for block in block_sizes
    }


def recommended_block_upper_bound(
    layer_size: int,
    block_sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
    improvement_threshold: float = 0.025,
) -> int:
    """Phase-I upper bound: the block size where computation stops improving.

    Walk the Fig. 8 curve (normalized so the dense count is 1.0) and stop when
    doubling the block size buys less than ``improvement_threshold`` of the
    dense baseline — the "computation reduction will converge" point of Sec.
    V-B.  Each doubling past that point halves the parameter count (hurting
    accuracy) for negligible compute gain, so it bounds the Phase-I search.
    For the paper's layer sizes this returns 32 (512) and 64 (1024).
    """
    feasible = tuple(b for b in block_sizes if layer_size % b == 0)
    if not feasible:
        raise BlockSizeError(
            f"no candidate block size divides layer size {layer_size}"
        )
    curve = fig8_curve(layer_size, feasible)
    blocks = sorted(curve)
    for previous, current in zip(blocks, blocks[1:]):
        drop = curve[previous] - curve[current]
        if drop < improvement_threshold:
            return previous
    return blocks[-1]


# ----------------------------------------------------------------------
# Accuracy proxy for design-space exploration (Tables I-II trend model).
# ----------------------------------------------------------------------

#: Dense TIMIT LSTM baseline PER of Table I, percent.
PER_PROXY_BASELINE = 20.01

#: Modeled PER degradation (percent points) per halving of the parameter
#: count, i.e. per octave of block size.  Table I's E-RNN rows degrade
#: roughly linearly in log2(block): ~+0.24 at block 8, ~+0.32 at block 16.
OCTAVE_DEGRADATION = 0.08

#: Modeled PER degradation per bit of quantization below the paper's
#: 12-bit operating point (Sec. VII-D finds 12 bits accuracy-neutral).
QUANTIZATION_DEGRADATION = 0.25

#: Bit width below which quantization is modeled as costing accuracy.
NEUTRAL_WEIGHT_BITS = 12


def per_degradation_proxy(
    block_sizes: tuple[int, ...],
    weight_bits: int = NEUTRAL_WEIGHT_BITS,
    octave_cost: float = OCTAVE_DEGRADATION,
    quant_cost: float = QUANTIZATION_DEGRADATION,
) -> float:
    """Modeled PER degradation (percent points) for a compressed design.

    A deterministic *ordering proxy*, not a prediction: it reproduces the
    two monotone trends the paper's accuracy tables establish — degradation
    grows with block size (each octave halves the parameter count) and with
    quantization below 12 bits — so the explorer can rank candidates without
    training.  Real PERs come from the Phase-I trainer.

    Dense layers (block size 1, or an empty tuple) contribute nothing.
    """
    if weight_bits < 1:
        raise ValueError(f"weight_bits must be positive, got {weight_bits}")
    for block in block_sizes:
        _check_block(block)
    if block_sizes:
        octaves = sum(math.log2(block) for block in block_sizes) / len(block_sizes)
    else:
        octaves = 0.0
    quant_bits_lost = max(0, NEUTRAL_WEIGHT_BITS - weight_bits)
    return octave_cost * octaves + quant_cost * quant_bits_lost


def per_proxy(
    spec,
    weight_bits: int = NEUTRAL_WEIGHT_BITS,
    baseline_per: float = PER_PROXY_BASELINE,
) -> float:
    """Absolute PER proxy for an :class:`repro.config.RNNSpec`-like object.

    ``baseline_per`` anchors the dense model; the spec's effective block
    sizes and the quantization width add the modeled degradation.
    """
    return baseline_per + per_degradation_proxy(
        tuple(spec.effective_block_sizes), weight_bits
    )
