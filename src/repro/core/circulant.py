"""Circulant-matrix algebra: the mathematical core of the paper (Sec. III-A).

Conventions
-----------
A circulant matrix is determined by a single length-``L`` vector.  Two
conventions exist:

* **first-column** — ``C[i, j] = w[(i - j) mod L]``.  Under this convention
  the circulant convolution theorem reads exactly as the paper's Eqn. (4):
  ``C @ x = IFFT(FFT(w) ∘ FFT(x))``.
* **first-row** — ``C[i, j] = w[(j - i) mod L]``; this is what the paper's
  Fig. 4 drawing uses ("w_ij is the first row vector of W_ij").

The two are related by index reversal: ``first_row(w) == first_column(w̃)``
with ``w̃[k] = w[(-k) mod L]``.  This module implements both and uses the
first-column convention internally so the FFT identity is literal.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "circulant_from_first_column",
    "circulant_from_first_row",
    "reverse_index",
    "circulant_matvec",
    "circulant_matvec_direct",
    "is_circulant",
    "transpose_vector",
]


def _check_vector(vector: np.ndarray) -> np.ndarray:
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1 or vector.size == 0:
        raise ShapeError(f"defining vector must be 1-D non-empty, got {vector.shape}")
    return vector


def circulant_from_first_column(vector: np.ndarray) -> np.ndarray:
    """Dense circulant matrix with ``C[i, j] = w[(i - j) mod L]``."""
    vector = _check_vector(vector)
    size = vector.size
    indices = (np.arange(size)[:, None] - np.arange(size)[None, :]) % size
    return vector[indices]


def circulant_from_first_row(vector: np.ndarray) -> np.ndarray:
    """Dense circulant matrix with first row ``w`` (the paper's Fig. 4 view)."""
    vector = _check_vector(vector)
    size = vector.size
    indices = (np.arange(size)[None, :] - np.arange(size)[:, None]) % size
    return vector[indices]


def reverse_index(vector: np.ndarray) -> np.ndarray:
    """Map between conventions: ``w̃[k] = w[(-k) mod L]``."""
    vector = _check_vector(vector)
    return vector[(-np.arange(vector.size)) % vector.size]


def transpose_vector(vector: np.ndarray) -> np.ndarray:
    """Defining vector of ``C.T`` under the first-column convention.

    ``circulant_from_first_column(w).T == circulant_from_first_column(w̃)``.
    Used by the autograd backward pass (transposed circulant = correlation).
    """
    return reverse_index(vector)


def circulant_matvec(vector: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``C @ x`` via the FFT identity of Eqn. (4) — O(L log L).

    ``vector`` defines ``C`` in the first-column convention; ``x`` may carry
    leading batch dimensions.
    """
    vector = _check_vector(vector)
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] != vector.size:
        raise ShapeError(
            f"vector length {vector.size} != input length {x.shape[-1]}"
        )
    spectrum = np.fft.rfft(vector) * np.fft.rfft(x, axis=-1)
    return np.fft.irfft(spectrum, n=vector.size, axis=-1)


def circulant_matvec_direct(vector: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``C @ x`` by materializing the dense matrix — O(L²); test oracle."""
    return x @ circulant_from_first_column(vector).T


def is_circulant(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """True when ``matrix`` is square circulant (first-column convention)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return np.allclose(
        matrix, circulant_from_first_column(matrix[:, 0]), atol=atol
    )
